#!/usr/bin/env python
"""Quickstart: build a small fully-distributed VoD system and serve a flash crowd.

The script walks through the paper's pipeline end to end:

1. describe the system with the Table 1 parameters (n boxes, upload u,
   storage d, c stripes per video, swarm growth µ);
2. place the catalog with a *random permutation allocation* (k replicas of
   every stripe);
3. run the round-based simulator against a flash crowd growing at the
   maximal rate µ, with the preloading request strategy and the per-round
   max-flow connection matching;
4. print the metrics: every round feasible, start-up delay of 3 rounds.

Run with:  python examples/quickstart.py
"""

from repro import (
    Catalog,
    FlashCrowdWorkload,
    VodSystem,
    design_homogeneous,
    homogeneous_population,
)
from repro.analysis.report import print_table


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. System parameters (Table 1)
    # ----------------------------------------------------------------- #
    n = 80          # number of boxes
    u = 2.0         # normalized upload capacity (video bitrate = 1)
    d = 4.0         # storage per box, in videos
    mu = 1.5        # maximal swarm growth per round
    c = 5           # stripes per video
    k = 4           # replicas per stripe (empirical; see note below)
    m = 40          # catalog size (videos)
    duration = 40   # video duration T, in rounds

    # The replication prescribed by Theorem 1 carries worst-case proof
    # constants; print it for comparison with the empirical k we simulate.
    design = design_homogeneous(n=n, u=u, d=d, mu=mu)
    print(
        f"Theorem 1 prescription for (n={n}, u={u}, d={d}, mu={mu}): "
        f"c={design.c}, k={design.k} (catalog guarantee {design.catalog_size}); "
        f"simulating with the much smaller empirical k={k}, m={m}."
    )

    # ----------------------------------------------------------------- #
    # 2. Population, catalog, random allocation
    # ----------------------------------------------------------------- #
    population = homogeneous_population(n, u=u, d=d)
    catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
    system = VodSystem(catalog=catalog, population=population, mu=mu)
    allocation = system.allocate("permutation", replicas_per_stripe=k, seed=42)
    print_table([allocation.describe()], title="Random permutation allocation")

    # ----------------------------------------------------------------- #
    # 3. Simulate a flash crowd at maximal growth µ
    # ----------------------------------------------------------------- #
    workload = FlashCrowdWorkload(mu=mu, target_videos=(0, 7), random_state=42)
    result = system.run(workload, num_rounds=12)

    # ----------------------------------------------------------------- #
    # 4. Report
    # ----------------------------------------------------------------- #
    print_table([result.metrics.describe()], title="Simulation metrics")
    print(f"All rounds feasible: {result.feasible}")
    print(f"Start-up delay (max): {result.metrics.max_startup_delay} rounds "
          f"(the preloading strategy guarantees 3)")
    print(f"Swarm growth violations: {result.metrics.swarm_growth_violations}")


if __name__ == "__main__":
    main()
