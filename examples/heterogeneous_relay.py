#!/usr/bin/env python
"""Heterogeneous systems: upload compensation and relaying (Theorem 2).

A population mixing *rich* boxes (fibre) and *poor* boxes (slow DSL, upload
below the video bitrate) cannot let poor boxes swarm among themselves.  The
paper's solution reserves upload on a rich relay ``r(b)`` for every poor
box ``b`` and routes the poor box's preloading and postponed requests
through it.

This example:

1. builds a two-class population and checks the u*-balance conditions
   (storage balance + upload compensation, Section 4);
2. computes the compensation plan (which rich box backs which poor box and
   how much upload is reserved);
3. runs the relayed request strategy through the simulator under a Zipf
   workload in which poor boxes participate like everyone else;
4. contrasts with the same population *without* relaying, where a cold
   flash crowd of poor boxes overwhelms the system.

Run with:  python examples/heterogeneous_relay.py
"""

import numpy as np

from repro import (
    Catalog,
    FlashCrowdWorkload,
    RelayedPreloadingScheduler,
    VodSystem,
    ZipfDemandWorkload,
    compute_compensation_plan,
    is_balanced,
    random_permutation_allocation,
    two_class_population,
)
from repro.analysis.report import print_table
from repro.core.thresholds import design_heterogeneous


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. A rich/poor population
    # ----------------------------------------------------------------- #
    n = 40
    u_star = 1.5
    population = two_class_population(
        n, rich_fraction=0.5, u_rich=4.0, u_poor=0.5, d_rich=10.0, d_poor=1.25
    )
    print(
        f"Population: n={n}, average upload u={population.average_upload:.2f}, "
        f"upload deficit Δ(1)={population.upload_deficit(1.0):.1f}, "
        f"Δ(u*)={population.upload_deficit(u_star):.1f}"
    )
    print(f"Scalability condition u > 1 + Δ(1)/n: {population.satisfies_scalability_condition()}")
    print(f"u*-balanced (storage-balanced + compensable): {is_balanced(population, u_star)}")

    design = design_heterogeneous(n=n, u_star=u_star, d=population.average_storage, mu=1.1)
    print(
        f"Theorem 2 prescription: c={design.c}, k={design.k} "
        f"(worst-case constants; the simulation below uses c=8, k=4)."
    )

    # ----------------------------------------------------------------- #
    # 2. Compensation plan
    # ----------------------------------------------------------------- #
    plan = compute_compensation_plan(population, u_star=u_star)
    reserved = plan.reserved_upload
    rows = []
    for a in np.flatnonzero(reserved > 0)[:6]:
        rows.append(
            {
                "relay box": int(a),
                "upload": float(population.uploads[a]),
                "reserved upload": float(reserved[a]),
                "poor boxes backed": len(plan.backed_boxes(int(a))),
            }
        )
    print_table(rows, title="Compensation plan (first relays)")

    # ----------------------------------------------------------------- #
    # 3. Relayed strategy under a mixed Zipf workload
    # ----------------------------------------------------------------- #
    c, k, m = 8, 4, 12
    catalog = Catalog(num_videos=m, num_stripes=c, duration=40)
    allocation = random_permutation_allocation(catalog, population, k, random_state=1)
    scheduler = RelayedPreloadingScheduler(catalog, population, plan, mu=1.1)
    simulator = VodSystem.for_allocation(allocation, mu=1.1).build_simulator(
        scheduler=scheduler, compensation_plan=plan
    )
    result = simulator.run(ZipfDemandWorkload(arrival_rate=3, random_state=1), num_rounds=16)
    print_table([result.metrics.describe()], title="Relayed strategy (Theorem 2) metrics")
    print(f"Relayed run feasible: {result.feasible}")

    # ----------------------------------------------------------------- #
    # 4. The same crowd without relaying
    # ----------------------------------------------------------------- #
    poor_heavy = two_class_population(
        32, rich_fraction=0.0625, u_rich=4.0, u_poor=0.5, d_rich=10.0, d_poor=1.25
    )
    catalog2 = Catalog(num_videos=10, num_stripes=4, duration=40)
    allocation2 = random_permutation_allocation(catalog2, poor_heavy, 2, random_state=2)
    plain = VodSystem.for_allocation(allocation2, mu=2.0).build_simulator(
        stop_on_infeasible=True
    )
    crowd = FlashCrowdWorkload(mu=2.0, target_videos=(0,), random_state=2)
    result2 = plain.run(crowd, num_rounds=10)
    print(
        "Poor-dominated population without compensation, flash crowd on one video: "
        f"feasible = {result2.feasible} (expected False — poor boxes cannot "
        "replicate the stream among themselves)"
    )


if __name__ == "__main__":
    main()
