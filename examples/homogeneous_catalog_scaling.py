#!/usr/bin/env python
"""Catalog scalability of a homogeneous system around the u = 1 threshold.

Reproduces the paper's headline claim on a laptop-scale system:

* **below the threshold** (u < 1) the missing-video adversary defeats any
  allocation whose catalog exceeds the constant cap ``d_max/ℓ``;
* **above the threshold** (u > 1) a random permutation allocation serves
  adversarial demand with a catalog proportional to ``n``.

The script sweeps the normalized upload u and, for each value, measures the
largest catalog (as a fraction of the storage bound d·n/k) that survives an
adversarial workload, alongside the analytic Theorem 1 guarantees.

Run with:  python examples/homogeneous_catalog_scaling.py
"""

from repro import (
    Catalog,
    MissingVideoAdversary,
    VodSystem,
    homogeneous_population,
    random_permutation_allocation,
)
from repro.analysis.bounds import catalog_bound_vs_upload
from repro.analysis.report import print_table
from repro.baselines.full_replication import max_catalog_full_replication
from repro.core.negative import build_negative_witness


def survives_adversary(n, u, d, m, c, k, mu, rounds=8, seed=0) -> bool:
    """Whether a random allocation with catalog m survives the adversary."""
    population = homogeneous_population(n, u=u, d=d)
    catalog = Catalog(num_videos=m, num_stripes=c, duration=30)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    simulator = VodSystem.for_allocation(allocation, mu=mu).build_simulator(
        stop_on_infeasible=True
    )
    adversary = MissingVideoAdversary(
        respect_growth=(u > 1.0), mu=mu, max_demands_per_round=max(n // 4, 4),
        random_state=seed,
    )
    return simulator.run(adversary, num_rounds=rounds).feasible


def max_surviving_catalog(n, u, d, c, k, mu) -> int:
    """Largest catalog (by bisection) that survives the adversarial run."""
    lo, hi = 1, int(d * n // k)
    best = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        if survives_adversary(n, u, d, mid, c, k, mu):
            best, lo = mid, mid + 1
        else:
            hi = mid - 1
    return best


def main() -> None:
    n, d, c, k, mu = 48, 2.5, 4, 3, 1.5
    rows = []
    for u in (0.6, 0.8, 0.95, 1.2, 1.5, 2.0, 3.0):
        catalog = max_surviving_catalog(n, u, d, c, k, mu)
        population = homogeneous_population(n, u=u, d=d)
        # The negative-result witness for a big catalog at this u.
        big = Catalog(num_videos=int(d * n // k), num_stripes=c, duration=30)
        witness = build_negative_witness(
            random_permutation_allocation(big, population, k, random_state=0)
        )
        rows.append(
            {
                "u": u,
                "scalable_regime": u > 1.0,
                "max_surviving_catalog": catalog,
                "storage_cap (d*n/k)": int(d * n // k),
                "full_replication_cap (d*c)": max_catalog_full_replication(d, c),
                "adversary_wins_on_full_storage_catalog": witness.infeasible,
            }
        )
    print_table(rows, title=f"Empirical catalog scalability (n={n}, d={d}, c={c}, k={k}, mu={mu})")

    analytic = catalog_bound_vs_upload([1.2, 1.5, 2.0, 3.0], n=10_000, d=4.0, mu=mu)
    print_table(
        [
            {
                "u": float(u),
                "c (Thm 1)": int(cc),
                "k (Thm 1)": int(kk),
                "catalog guarantee": int(m),
            }
            for u, cc, kk, m in zip(
                analytic["u"], analytic["c"], analytic["k"], analytic["catalog"]
            )
        ],
        title="Theorem 1 guarantees at n = 10,000 (worst-case constants)",
    )
    print(
        "Reading: below u = 1 the surviving catalog collapses toward the\n"
        "full-replication cap d*c; above u = 1 it jumps to the storage bound\n"
        "d*n/k, i.e. linear in n — the threshold behaviour of the paper."
    )


if __name__ == "__main__":
    main()
