#!/usr/bin/env python
"""Adversarial stress test: flash crowds, cold starts and the swarming/sourcing gap.

The paper's guarantees are worst-case over any demand sequence respecting
the swarm-growth bound µ.  This example throws the three hardest workloads
the proofs identify at the same random allocation and reports who wins:

* a **maximal-growth flash crowd** on one video (Lemma 2's tight regime);
* a **least-replicated adversary** that targets the weakest videos of the
  concrete allocation;
* a **cold-start adversary** that only ever demands videos with an empty
  swarm, removing all playback-cache (swarming) help.

It then repeats the flash crowd with swarming disabled (sourcing only, the
authors' prior work [3]) to expose the regime where the mix of sourcing
and swarming is exactly what saves the system.

Run with:  python examples/adversarial_flashcrowd.py
"""

from repro import (
    Catalog,
    ColdStartAdversary,
    FlashCrowdWorkload,
    LeastReplicatedAdversary,
    VodSystem,
    homogeneous_population,
    random_permutation_allocation,
)
from repro.analysis.report import print_table
from repro.baselines.sourcing_only import SourcingOnlyPossessionIndex


def run(allocation, workload, mu, rounds=10, sourcing_only=False):
    simulator = VodSystem.for_allocation(allocation, mu=mu).build_simulator()
    if sourcing_only:
        simulator._possession = SourcingOnlyPossessionIndex(
            allocation, cache_window=allocation.catalog.duration
        )
    result = simulator.run(workload, num_rounds=rounds)
    metrics = result.metrics
    return {
        "feasible": result.feasible,
        "demands": metrics.total_demands,
        "requests": metrics.total_requests,
        "infeasible_rounds": metrics.infeasible_rounds,
        "peak_utilization": round(metrics.peak_utilization, 3),
        "max_startup_delay": metrics.max_startup_delay,
    }


def main() -> None:
    n, u, d, c, k, m, mu = 60, 1.5, 2.0, 4, 3, 30, 2.0
    population = homogeneous_population(n, u=u, d=d)
    catalog = Catalog(num_videos=m, num_stripes=c, duration=40)
    allocation = random_permutation_allocation(catalog, population, k, random_state=7)

    rows = []
    rows.append(
        {"workload": "flash crowd (mu=2)", "swarming": True}
        | run(allocation, FlashCrowdWorkload(mu=mu, target_videos=(0,), random_state=7), mu)
    )
    rows.append(
        {"workload": "least-replicated adversary", "swarming": True}
        | run(
            allocation,
            LeastReplicatedAdversary(mu=mu, num_target_videos=2, random_state=7),
            mu,
        )
    )
    rows.append(
        {"workload": "cold-start adversary", "swarming": True}
        | run(allocation, ColdStartAdversary(max_demands_per_round=12, random_state=7), mu)
    )
    rows.append(
        {"workload": "flash crowd (mu=2)", "swarming": False}
        | run(
            allocation,
            FlashCrowdWorkload(mu=mu, target_videos=(0,), random_state=7),
            mu,
            sourcing_only=True,
        )
    )
    print_table(
        rows,
        title=(
            f"Adversarial workloads on one random permutation allocation "
            f"(n={n}, u={u}, d={d}, c={c}, k={k}, m={m})"
        ),
    )
    print(
        "Reading: with swarming enabled (the paper's system) every adversary\n"
        "is absorbed with a 3-round start-up delay; removing the playback-cache\n"
        "help (sourcing only) makes the very same flash crowd infeasible."
    )


if __name__ == "__main__":
    main()
