#!/usr/bin/env python
"""Online serving: mid-run demand injection, checkpoint/resume, live growth.

The batch simulator answers "was this run feasible?"; the session layer
answers the operational questions a live deployment asks:

1. open a :class:`repro.api.VodSession` over a configured system and
   drive rounds one at a time, reading per-round :class:`RoundReport`\\ s;
2. inject demands from *outside* any workload generator (an admission
   front-end), and see typed ``AdmissionError``\\ s for busy boxes;
3. checkpoint the full deterministic state mid-run, keep serving, then
   restore the checkpoint and verify the continuation replays the same
   rounds bit for bit;
4. grow the system live: new boxes join, a new video is published, a
   box's upload is re-provisioned — all between rounds.

Run with:  python examples/online_session.py
"""

from repro.api import AdmissionError, VodSession, VodSystem


def main() -> None:
    # ----------------------------------------------------------------- #
    # 1. Configure -> allocate -> open a session
    # ----------------------------------------------------------------- #
    system = VodSystem.configure(
        catalog={"num_videos": 20, "num_stripes": 4, "duration": 12},
        population=("homogeneous", {"n": 48, "u": 2.0, "d": 3.0}),
        mu=1.5,
    )
    system.allocate("permutation", replicas_per_stripe=4, seed=7)
    session = system.open_session(
        workload=("zipf", {"arrival_rate": 2.0}),  # background traffic
        workload_seed=7,
        horizon=24,
    )
    print(system)

    # ----------------------------------------------------------------- #
    # 2. Drive rounds, injecting demands like an admission front-end
    # ----------------------------------------------------------------- #
    session.submit_demands([(0, 5), (1, 5), (2, 5)])   # a micro flash crowd
    for _ in range(6):
        report = session.step()
        print(
            f"t={report.time:<2d} injected={report.demands_injected} "
            f"active={report.active_requests:<3d} matched={report.matched:<3d} "
            f"feasible={report.feasible} util={report.utilization:.3f}"
        )

    try:  # box 0 is still playing video 5: admission rejects, typed.
        session.submit(0, 1)
    except AdmissionError as exc:
        print(f"admission control: {exc}")

    # ----------------------------------------------------------------- #
    # 3. Checkpoint, keep serving, restore, verify bit-identical replay
    # ----------------------------------------------------------------- #
    checkpoint = session.snapshot()
    print(f"checkpoint taken at round {checkpoint.time}")

    session.step_until(rounds=6)             # the "primary" keeps serving

    replica = VodSession.restore(checkpoint)  # a "standby" catches up
    replica.step_until(rounds=6)
    identical = [r.to_dict() for r in replica.reports] == [
        r.to_dict() for r in session.reports
    ]
    print(f"restored continuation bit-identical: {identical}")

    # ----------------------------------------------------------------- #
    # 4. Live reconfiguration between rounds
    # ----------------------------------------------------------------- #
    joined = session.join_boxes(uploads=[2.0, 2.0], storages=[0.0, 0.0])
    print(f"boxes joined live: {joined}")
    published = session.add_videos(1, random_state=7)
    print(f"video published live: {published}")
    session.set_capacity(joined[0], 4.0)      # re-provision a joiner
    session.submit(joined[0], published[0])   # a new box demands the new video
    report = session.step()
    print(
        f"t={report.time} new box watching new video: "
        f"matched={report.matched}/{report.active_requests} "
        f"(capacity now {report.upload_capacity} slots/round)"
    )

    result = session.result()
    print(
        f"after {result.metrics.rounds} rounds: "
        f"{result.metrics.total_demands} demands, "
        f"infeasible rounds: {result.metrics.infeasible_rounds}, "
        f"max startup delay: {result.metrics.max_startup_delay}"
    )


if __name__ == "__main__":
    main()
