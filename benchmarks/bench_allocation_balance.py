"""E12 — permutation vs independent allocation: storage balance.

Theorem 1 holds for both random allocation schemes, but the paper notes
that the independent scheme can unbalance storage loads, and avoiding
overflow w.h.p. additionally requires c = Ω(log n).  The experiment
measures, per scheme and stripe count c:

* the load imbalance (max/mean replicas per box);
* the probability (over allocations) that some box overflows its storage
  when the storage budget has 20% headroom;
* the deterministic round-robin control.
"""

import numpy as np
import pytest

from repro.analysis.report import print_table
from repro.core.allocation import (
    random_independent_allocation,
    random_permutation_allocation,
    round_robin_allocation,
)
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog

N, U, MU, K = 60, 1.5, 1.2, 3
TRIALS = 30


def balance_statistics(scheme: str, c: int, seed_base: int = 0):
    # Storage sized with 20% headroom over the replicas to be placed.
    m = 20
    storage_slots_needed = m * c * K / N
    d = 1.2 * storage_slots_needed / c
    catalog = Catalog(num_videos=m, num_stripes=c, duration=30)
    population = homogeneous_population(N, u=U, d=d)
    imbalances = []
    overflows = 0
    for trial in range(TRIALS):
        seed = seed_base + trial
        if scheme == "permutation":
            alloc = random_permutation_allocation(catalog, population, K, random_state=seed)
        elif scheme == "independent":
            alloc = random_independent_allocation(
                catalog, population, K, random_state=seed, on_full="ignore"
            )
        else:
            alloc = round_robin_allocation(catalog, population, K, offset=trial)
        imbalances.append(alloc.load_imbalance())
        overflows += 0 if alloc.respects_storage() else 1
    return {
        "scheme": scheme,
        "c": c,
        "mean_load_imbalance": round(float(np.mean(imbalances)), 3),
        "worst_load_imbalance": round(float(np.max(imbalances)), 3),
        "overflow_probability": overflows / TRIALS,
    }


def test_allocation_balance(benchmark, experiment_header):
    rows = []
    for c in (2, 4, 8, 16):
        for scheme in ("permutation", "independent", "round_robin"):
            rows.append(balance_statistics(scheme, c))
    benchmark.pedantic(balance_statistics, args=("independent", 8), rounds=1, iterations=1)
    print_table(
        rows,
        title=f"E12 — storage balance of the allocation schemes (n={N}, k={K}, 20% storage headroom)",
    )
    by_scheme = {}
    for row in rows:
        by_scheme.setdefault(row["scheme"], []).append(row)
    # Permutation and round-robin never overflow (they place into free slots).
    for scheme in ("permutation", "round_robin"):
        assert all(row["overflow_probability"] == 0.0 for row in by_scheme[scheme])
    # Independent allocation is at least as imbalanced as permutation at every c.
    for perm_row, ind_row in zip(by_scheme["permutation"], by_scheme["independent"]):
        assert ind_row["mean_load_imbalance"] >= perm_row["mean_load_imbalance"] - 0.05
    # More stripes (larger c) reduce the independent scheme's overflow rate,
    # the qualitative content of the c = Ω(log n) remark.
    ind_rows = by_scheme["independent"]
    assert ind_rows[-1]["overflow_probability"] <= ind_rows[0]["overflow_probability"]
