"""E4 — Theorem 1: linear catalog scaling above the threshold (simulation).

For fixed (u, d, c, k) and a growing number of boxes n, a random
permutation allocation with catalog m = d·n/k (the storage bound, linear
in n) is exercised against overlapping flash crowds at maximal growth and
the least-replicated adversary.  Every run must stay feasible with a
3-round start-up delay — the empirical counterpart of Theorem 1.  The
timed kernel is the n = 96 adversarial run.
"""

import pytest

from repro.analysis.report import print_table
from repro.sim.engine import VodSimulator
from repro.workloads.adversarial import LeastReplicatedAdversary
from repro.workloads.flashcrowd import StaggeredFlashCrowdWorkload

from conftest import build_homogeneous_system

U, D, C, K, MU = 2.0, 2.5, 4, 3, 1.5
N_VALUES = (24, 48, 96)


def run_point(n: int, seed: int = 0):
    m = int(D * n // K)
    population, catalog, allocation = build_homogeneous_system(
        n=n, u=U, d=D, m=m, c=C, k=K, seed=seed
    )
    simulator = VodSimulator(allocation, mu=MU)
    crowds = StaggeredFlashCrowdWorkload(
        mu=MU,
        target_videos=(0, m // 2, m - 1),
        start_times=(0, 2, 4),
        random_state=seed,
    )
    crowd_result = simulator.run(crowds, num_rounds=10)

    adversary_sim = VodSimulator(allocation, mu=MU)
    adversary = LeastReplicatedAdversary(mu=MU, num_target_videos=2, random_state=seed)
    adversary_result = adversary_sim.run(adversary, num_rounds=10)
    return {
        "n": n,
        "catalog m = d*n/k": m,
        "catalog_per_box": round(m / n, 3),
        "flashcrowd_feasible": crowd_result.feasible,
        "flashcrowd_startup_delay": crowd_result.metrics.max_startup_delay,
        "adversary_feasible": adversary_result.feasible,
        "adversary_startup_delay": adversary_result.metrics.max_startup_delay,
        "peak_utilization": round(
            max(crowd_result.metrics.peak_utilization, adversary_result.metrics.peak_utilization),
            3,
        ),
    }


def test_homogeneous_linear_scaling(benchmark, experiment_header):
    rows = [run_point(n) for n in N_VALUES]
    benchmark.pedantic(run_point, args=(N_VALUES[-1],), rounds=1, iterations=1)
    print_table(
        rows,
        title=f"E4 — Theorem 1 scaling: u={U}, d={D}, c={C}, k={K}, mu={MU}, m = d*n/k",
    )
    for row in rows:
        assert row["flashcrowd_feasible"]
        assert row["adversary_feasible"]
        assert row["flashcrowd_startup_delay"] == 3
    # Catalog per box constant → catalog linear in n.
    per_box = [row["catalog_per_box"] for row in rows]
    assert max(per_box) - min(per_box) <= 0.05
