"""E8 — start-up delay of the preloading strategy.

The preloading strategy guarantees a constant start-up delay of 3 rounds
(preload at t, postponed requests at t+1, playback at t+2) regardless of
the workload, as long as the matching stays feasible.  The experiment
measures the realized delay distribution under four workloads and under
the heterogeneous relayed strategy (whose poor-box delay is 5 rounds).
"""

import pytest

from repro.analysis.report import print_table
from repro.core.heterogeneous import RelayedPreloadingScheduler, compute_compensation_plan
from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import two_class_population
from repro.core.video import Catalog
from repro.sim.engine import VodSimulator
from repro.workloads.adversarial import ColdStartAdversary
from repro.workloads.flashcrowd import FlashCrowdWorkload
from repro.workloads.popularity import UniformDemandWorkload, ZipfDemandWorkload

from conftest import build_homogeneous_system

MU = 1.5


def run_homogeneous(workload_name, workload, rounds=12, seed=0):
    population, catalog, allocation = build_homogeneous_system(
        n=60, u=2.0, d=3.0, m=30, c=4, k=4, seed=seed
    )
    result = VodSimulator(allocation, mu=MU).run(workload, num_rounds=rounds)
    metrics = result.metrics
    return {
        "strategy": "homogeneous preloading",
        "workload": workload_name,
        "feasible": result.feasible,
        "playbacks": len(result.trace.playback_starts()),
        "max_startup_delay": metrics.max_startup_delay,
        "mean_startup_delay": metrics.mean_startup_delay,
    }


def test_startup_delay_across_workloads(benchmark, experiment_header):
    rows = [
        run_homogeneous("flash crowd", FlashCrowdWorkload(mu=MU, random_state=1)),
        run_homogeneous("zipf", ZipfDemandWorkload(arrival_rate=4, random_state=1)),
        run_homogeneous("uniform", UniformDemandWorkload(arrival_rate=4, random_state=1)),
        run_homogeneous("cold start", ColdStartAdversary(max_demands_per_round=10, random_state=1)),
    ]
    benchmark.pedantic(
        run_homogeneous,
        args=("flash crowd", FlashCrowdWorkload(mu=MU, random_state=2)),
        rounds=1,
        iterations=1,
    )
    print_table(rows, title="E8 — start-up delay of the homogeneous preloading strategy")
    for row in rows:
        assert row["feasible"]
        assert row["playbacks"] > 0
        assert row["max_startup_delay"] == 3
        assert row["mean_startup_delay"] == pytest.approx(3.0)


def test_startup_delay_relayed_strategy(benchmark, experiment_header):
    population = two_class_population(
        32, rich_fraction=0.5, u_rich=4.0, u_poor=0.5, d_rich=10.0, d_poor=1.25
    )
    catalog = Catalog(num_videos=10, num_stripes=8, duration=40)
    allocation = random_permutation_allocation(catalog, population, 4, random_state=5)
    plan = compute_compensation_plan(population, u_star=1.5)

    def kernel():
        scheduler = RelayedPreloadingScheduler(catalog, population, plan, mu=1.1)
        simulator = VodSimulator(allocation, mu=1.1, scheduler=scheduler, compensation_plan=plan)
        return simulator.run(ZipfDemandWorkload(arrival_rate=2, random_state=5), num_rounds=14)

    result = kernel()
    benchmark.pedantic(kernel, rounds=1, iterations=1)
    print_table(
        [
            {
                "strategy": "relayed (Theorem 2)",
                "feasible": result.feasible,
                "playbacks": len(result.trace.playback_starts()),
                "max_startup_delay": result.metrics.max_startup_delay,
                "mean_startup_delay": result.metrics.mean_startup_delay,
            }
        ],
        title="E8 — start-up delay of the relayed strategy (poor boxes pay 2 extra rounds)",
    )
    assert result.feasible
    assert result.metrics.max_startup_delay <= 5
