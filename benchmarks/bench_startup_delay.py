"""E8 — start-up delay of the preloading strategy.

The preloading strategy guarantees a constant start-up delay of 3 rounds
(preload at t, postponed requests at t+1, playback at t+2) regardless of
the workload, as long as the matching stays feasible.  The experiment
measures the realized delay distribution under four workloads and under
the heterogeneous relayed strategy (whose poor-box delay is 5 rounds).
"""

import pytest

from repro.analysis.report import print_table
from repro.core.heterogeneous import RelayedPreloadingScheduler, compute_compensation_plan
from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import two_class_population
from repro.core.video import Catalog
from repro.orchestrate import execute_campaign_rows, get_campaign
from repro.orchestrate.campaigns import run_startup_delay
from repro.sim.engine import VodSimulator
from repro.workloads.popularity import ZipfDemandWorkload

MU = 1.5


def test_startup_delay_across_workloads(benchmark, experiment_header):
    # The homogeneous sweep is the registered ``startup_delay`` campaign.
    campaign = get_campaign("startup_delay")
    rows = execute_campaign_rows(campaign)
    benchmark.pedantic(
        run_startup_delay,
        args=(
            dict(
                campaign.base,
                workload_kind="flashcrowd",
                workload_params={},
                workload_label="flash crowd",
                workload_seed=2,
            ),
        ),
        rounds=1,
        iterations=1,
    )
    print_table(rows, title="E8 — start-up delay of the homogeneous preloading strategy")
    for row in rows:
        assert row["feasible"]
        assert row["playbacks"] > 0
        assert row["max_startup_delay"] == 3
        assert row["mean_startup_delay"] == pytest.approx(3.0)


def test_startup_delay_relayed_strategy(benchmark, experiment_header):
    population = two_class_population(
        32, rich_fraction=0.5, u_rich=4.0, u_poor=0.5, d_rich=10.0, d_poor=1.25
    )
    catalog = Catalog(num_videos=10, num_stripes=8, duration=40)
    allocation = random_permutation_allocation(catalog, population, 4, random_state=5)
    plan = compute_compensation_plan(population, u_star=1.5)

    def kernel():
        scheduler = RelayedPreloadingScheduler(catalog, population, plan, mu=1.1)
        simulator = VodSimulator(allocation, mu=1.1, scheduler=scheduler, compensation_plan=plan)
        return simulator.run(ZipfDemandWorkload(arrival_rate=2, random_state=5), num_rounds=14)

    result = kernel()
    benchmark.pedantic(kernel, rounds=1, iterations=1)
    print_table(
        [
            {
                "strategy": "relayed (Theorem 2)",
                "feasible": result.feasible,
                "playbacks": len(result.trace.playback_starts()),
                "max_startup_delay": result.metrics.max_startup_delay,
                "mean_startup_delay": result.metrics.mean_startup_delay,
            }
        ],
        title="E8 — start-up delay of the relayed strategy (poor boxes pay 2 extra rounds)",
    )
    assert result.feasible
    assert result.metrics.max_startup_delay <= 5
