"""E9 — Theorem 2: u*-balanced heterogeneous systems scale with relaying.

Sweeps the fraction of poor boxes in a two-class population and compares
three configurations on the same demand sequence:

* the relayed strategy with upload compensation (the paper's Section 4);
* the plain homogeneous strategy on the same heterogeneous population
  (no relays, no reservations);
* a poor-only crowd (the intuition behind the ``u > 1 + Δ(1)/n`` bound).

The relayed configuration must stay feasible whenever the population is
u*-balanced; the unassisted poor-dominated configurations break down.
"""

import pytest

from repro.analysis.report import print_table
from repro.core.allocation import random_permutation_allocation
from repro.core.heterogeneous import (
    RelayedPreloadingScheduler,
    compute_compensation_plan,
    is_balanced,
)
from repro.core.parameters import two_class_population
from repro.core.video import Catalog
from repro.sim.engine import VodSimulator
from repro.workloads.flashcrowd import FlashCrowdWorkload
from repro.workloads.popularity import ZipfDemandWorkload

N, C, K, M, U_STAR = 40, 8, 4, 12, 1.5
U_RICH, U_POOR = 4.0, 0.5


def run_configuration(rich_fraction: float, use_relays: bool, seed: int = 0):
    population = two_class_population(
        N,
        rich_fraction=rich_fraction,
        u_rich=U_RICH,
        u_poor=U_POOR,
        d_rich=U_RICH * 2.5,
        d_poor=U_POOR * 2.5,
    )
    catalog = Catalog(num_videos=M, num_stripes=C, duration=40)
    allocation = random_permutation_allocation(catalog, population, K, random_state=seed)
    balanced = is_balanced(population, U_STAR)
    scheduler = None
    plan = None
    if use_relays and balanced:
        plan = compute_compensation_plan(population, u_star=U_STAR)
        scheduler = RelayedPreloadingScheduler(catalog, population, plan, mu=1.1)
    simulator = VodSimulator(
        allocation, mu=1.1, scheduler=scheduler, compensation_plan=plan
    )
    result = simulator.run(ZipfDemandWorkload(arrival_rate=3, random_state=seed), num_rounds=14)
    return {
        "rich_fraction": rich_fraction,
        "avg_upload": round(population.average_upload, 2),
        "scalability_condition": population.satisfies_scalability_condition(),
        "u_star_balanced": balanced,
        "relays": use_relays and balanced,
        "feasible": result.feasible,
        "infeasible_rounds": result.metrics.infeasible_rounds,
        "demands": result.metrics.total_demands,
    }


def test_heterogeneous_scaling_with_and_without_relays(benchmark, experiment_header):
    rows = []
    for rich_fraction in (0.75, 0.5, 0.25):
        rows.append(run_configuration(rich_fraction, use_relays=True))
        rows.append(run_configuration(rich_fraction, use_relays=False))
    benchmark.pedantic(run_configuration, args=(0.5, True), rounds=1, iterations=1)
    print_table(
        rows,
        title=f"E9 — Theorem 2: relayed vs unassisted heterogeneous populations (u*={U_STAR})",
    )
    # Relayed, balanced configurations are always feasible.
    for row in rows:
        if row["relays"]:
            assert row["feasible"]


def test_poor_only_crowd_breaks_without_compensation(benchmark, experiment_header):
    """The intuition behind u > 1 + Δ(1)/n: poor boxes alone cannot swarm."""

    def kernel():
        population = two_class_population(
            34, rich_fraction=2 / 34, u_rich=4.0, u_poor=0.5, d_rich=10.0, d_poor=1.25
        )
        catalog = Catalog(num_videos=10, num_stripes=4, duration=40)
        allocation = random_permutation_allocation(catalog, population, 2, random_state=3)
        simulator = VodSimulator(allocation, mu=2.0, stop_on_infeasible=True)
        crowd = FlashCrowdWorkload(mu=2.0, target_videos=(0,), random_state=3)
        return simulator.run(crowd, num_rounds=10)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    result = kernel()
    print_table(
        [
            {
                "configuration": "poor-dominated, no compensation",
                "feasible": result.feasible,
                "infeasible_rounds": result.metrics.infeasible_rounds,
            }
        ],
        title="E9 — poor-dominated flash crowd without compensation",
    )
    assert not result.feasible
