"""E6 — Lemmas 3–4 / Equation 1: obstruction probability vs replication k.

Compares, as a function of the replication factor k:

* the paper's aggregated first-moment bound (proof of Theorem 1);
* the exact Equation 1 double sum (before the majorizations);
* a Monte-Carlo estimate of the cold-start obstruction probability of real
  random allocations (the empirical quantity the bound majorizes).

The union bound is loose at laptop scale — the point of the table is the
*shape*: all three quantities drop steeply with k, and the k prescribed by
Theorem 1 drives the analytic bound to O(1/n).  The sweep is the
registered ``obstruction_probability`` campaign of
:mod:`repro.orchestrate`; the timed kernel is the exact Equation 1
evaluation.
"""

import pytest

from repro.analysis.report import print_table
from repro.core import obstruction as ob
from repro.core import thresholds as th
from repro.orchestrate import execute_campaign_rows, get_campaign

N, U, D, MU, C = 48, 1.5, 3.0, 1.2, 6


def test_obstruction_bound_vs_k(benchmark, experiment_header):
    rows = execute_campaign_rows(get_campaign("obstruction_probability"))

    nu = th.nu_homogeneous(U, C, MU)
    benchmark.pedantic(
        ob.first_moment_bound_exact,
        args=(N, C, 8, 8, th.effective_upload(U, C), nu),
        rounds=3,
        iterations=1,
    )
    print_table(rows, title=f"E6 — obstruction probability vs k (n={N}, u={U}, d={D}, c={C}, mu={MU})")

    paper = [row["paper_bound"] for row in rows]
    exact = [row["exact_eq1_bound"] for row in rows]
    assert paper == sorted(paper, reverse=True)
    assert exact == sorted(exact, reverse=True)
    # The exact Equation 1 sum is never looser than the paper's majorization.
    assert all(e <= p + 1e-9 for e, p in zip(exact, paper))
    # The Monte-Carlo estimate is (statistically) below both bounds whenever
    # the bounds are informative, and decreases with k.
    mc = [row["montecarlo_estimate"] for row in rows if "montecarlo_estimate" in row]
    assert len(mc) == 4
    assert mc == sorted(mc, reverse=True)


def test_theorem_prescription_reaches_target(benchmark, experiment_header):
    """The k prescribed by Theorem 1 drives the bound below 1/n at large n."""
    u, d, mu, n_large = 2.0, 4.0, 1.3, 100_000
    c = th.recommended_stripes_homogeneous(u, mu)
    nu = th.nu_homogeneous(u, c, mu)
    u_prime = th.effective_upload(u, c)
    d_prime = th.d_prime(d, u)
    k_theorem = th.replication_homogeneous(u, d, c, mu)

    def kernel():
        return ob.first_moment_bound_paper(n_large, c, u_prime, d_prime, k_theorem, nu)

    bound = benchmark(kernel)
    k_search = ob.minimum_replication_for_failure_probability(
        n_large, c, u_prime, d_prime, nu, target=1.0 / n_large
    )
    print_table(
        [
            {
                "n": n_large,
                "c (Thm 1)": c,
                "k (Thm 1)": k_theorem,
                "bound at k (Thm 1)": bound,
                "smallest k with bound <= 1/n": k_search,
            }
        ],
        title="E6 — Theorem 1 prescription vs the smallest k achieving P(obstruction) <= 1/n",
    )
    assert bound <= 1.0 / n_large
    assert k_search <= k_theorem
