"""E10 — the Section 5 trade-off between video quality and catalog size.

With the physical upload bandwidth fixed, increasing the video bitrate
decreases the normalized upload u = upload/bitrate, and the Theorem 1
catalog guarantee degrades like (u−1)² log((u+1)/2) ~ (u−1)³ as u → 1,
vanishing entirely below the threshold.  The experiment regenerates that
curve and verifies the cubic shape near the threshold.
"""

import pytest

from repro.analysis.report import print_table
from repro.core import thresholds as th
from repro.orchestrate import execute_campaign_rows, get_campaign


def build_table():
    # The sweep is the registered ``quality_tradeoff`` campaign; this
    # wrapper executes the same cells in-process.
    return execute_campaign_rows(get_campaign("quality_tradeoff"))


def test_quality_tradeoff_table(benchmark, experiment_header):
    rows = benchmark(build_table)
    print_table(
        rows,
        columns=["bitrate", "u", "scalable", "catalog", "asymptotic", "cube_approx"],
        title="E10 — video quality (bitrate) vs catalog size at fixed physical upload",
    )
    # Better quality (higher bitrate) → smaller catalog, collapsing to 0 at u ≤ 1.
    catalogs = [row["catalog"] for row in rows]
    assert catalogs == sorted(catalogs, reverse=True)
    assert all(row["catalog"] == 0 for row in rows if row["u"] <= 1.0)
    assert all(row["catalog"] > 0 for row in rows if row["u"] >= 1.25)


def test_cubic_decay_near_threshold(benchmark, experiment_header):
    """The bound behaves like (u−1)³ (up to constants) as u → 1."""

    def ratios():
        out = []
        for eps in (4e-3, 2e-3, 1e-3):
            b1 = th.catalog_lower_bound_theorem1(10_000, 1 + eps, 4.0, 1.3)
            b2 = th.catalog_lower_bound_theorem1(10_000, 1 + 2 * eps, 4.0, 1.3)
            out.append({"eps": eps, "bound(1+eps)": b1, "bound(1+2eps)": b2, "ratio": b2 / b1})
        return out

    rows = benchmark(ratios)
    print_table(rows, title="E10 — doubling (u−1) multiplies the bound by ≈ 2³ = 8 near the threshold")
    for row in rows:
        assert row["ratio"] == pytest.approx(8.0, rel=0.1)
