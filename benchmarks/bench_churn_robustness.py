"""A2 — robustness extension: feasibility under box churn.

The paper assumes always-on boxes; this extension experiment measures how
much churn the random allocation absorbs *without any repair mechanism*.
For a fixed system (u = 2, k = 4) the per-round failure probability is
swept; offline boxes neither demand nor serve and their replicas are
unavailable until they return.  Replication k and the playback caches of
online viewers provide the slack: feasibility survives moderate churn and
degrades as the offline fraction grows.

The sweep is the registered ``churn_robustness`` campaign of
:mod:`repro.orchestrate`; this module executes the same cells in-process
and times one of them.
"""

import pytest

from repro.analysis.report import print_table
from repro.orchestrate import execute_campaign_rows, get_campaign
from repro.orchestrate.campaigns import run_churn_robustness

N, U, D, C, K = 60, 2.0, 3.0, 4, 4


def test_churn_robustness(benchmark, experiment_header):
    campaign = get_campaign("churn_robustness")
    rows = execute_campaign_rows(campaign)
    benchmark.pedantic(
        run_churn_robustness,
        args=(dict(campaign.base, failure_probability=0.05),),
        rounds=1,
        iterations=1,
    )
    print_table(
        rows,
        title=(
            f"A2 — feasibility under box churn (n={N}, u={U}, d={D}, c={C}, k={K}, "
            f"outage duration 4 rounds, no repair)"
        ),
    )
    # No churn and light churn are absorbed by the replication slack.
    assert rows[0]["feasible"]
    assert rows[1]["feasible"]
    # Unserved requests grow (weakly) with the failure probability.
    unmatched = [row["unmatched_requests"] for row in rows]
    assert unmatched == sorted(unmatched)
    # Heavy churn degrades service: strictly more unserved requests than
    # the churn-free run.
    assert unmatched[-1] > unmatched[0]
