"""A2 — robustness extension: feasibility under box churn.

The paper assumes always-on boxes; this extension experiment measures how
much churn the random allocation absorbs *without any repair mechanism*.
For a fixed system (u = 2, k = 4) the per-round failure probability is
swept; offline boxes neither demand nor serve and their replicas are
unavailable until they return.  Replication k and the playback caches of
online viewers provide the slack: feasibility survives moderate churn and
degrades as the offline fraction grows.
"""

import pytest

from repro.analysis.report import print_table
from repro.sim.churn import random_churn_schedule
from repro.sim.engine import VodSimulator
from repro.workloads.flashcrowd import FlashCrowdWorkload

from conftest import build_homogeneous_system

N, U, D, C, K, M, MU = 60, 2.0, 3.0, 4, 4, 30, 1.5
ROUNDS = 12
FAILURE_PROBABILITIES = (0.0, 0.02, 0.05, 0.15, 0.35)


def run_with_churn(failure_probability: float, seed: int = 0):
    population, catalog, allocation = build_homogeneous_system(
        n=N, u=U, d=D, m=M, c=C, k=K, seed=seed
    )
    churn = random_churn_schedule(
        num_boxes=N,
        horizon=ROUNDS,
        failure_probability=failure_probability,
        outage_duration=4,
        random_state=seed + 100,
    )
    simulator = VodSimulator(allocation, mu=MU, churn=churn)
    result = simulator.run(FlashCrowdWorkload(mu=MU, random_state=seed), num_rounds=ROUNDS)
    return {
        "failure_probability": failure_probability,
        "max_concurrent_offline": churn.max_concurrent_outages(ROUNDS),
        "offline_fraction_peak": round(churn.max_concurrent_outages(ROUNDS) / N, 3),
        "feasible": result.feasible,
        "infeasible_rounds": result.metrics.infeasible_rounds,
        "unmatched_requests": result.metrics.unmatched_requests,
        "demands": result.metrics.total_demands,
    }


def test_churn_robustness(benchmark, experiment_header):
    rows = [run_with_churn(p) for p in FAILURE_PROBABILITIES]
    benchmark.pedantic(run_with_churn, args=(0.05,), rounds=1, iterations=1)
    print_table(
        rows,
        title=(
            f"A2 — feasibility under box churn (n={N}, u={U}, d={D}, c={C}, k={K}, "
            f"outage duration 4 rounds, no repair)"
        ),
    )
    # No churn and light churn are absorbed by the replication slack.
    assert rows[0]["feasible"]
    assert rows[1]["feasible"]
    # Unserved requests grow (weakly) with the failure probability.
    unmatched = [row["unmatched_requests"] for row in rows]
    assert unmatched == sorted(unmatched)
    # Heavy churn degrades service: strictly more unserved requests than
    # the churn-free run.
    assert unmatched[-1] > unmatched[0]
