"""E11 — baseline comparison: random stripe allocation vs the alternatives.

Runs the same flash-crowd demand against four systems built on the same
box population:

* the paper's system (random permutation allocation + swarming);
* the sourcing-only variant (the authors' prior work [3]: same allocation,
  playback-cache help disabled);
* full replication (Push-to-Peer style, Suh et al. [22]) — constant
  catalog capped at d·c, pure sourcing but every box holds data of every
  video;
* a centralized server sized like one box (analytic model).

The table reports achievable catalog and whether the crowd is served —
the qualitative ranking the paper argues for (swarming+sourcing wins the
catalog race at equal feasibility).
"""

import pytest

from repro.analysis.report import print_table
from repro.baselines.central_server import CentralServerModel
from repro.baselines.full_replication import (
    full_replication_allocation,
    max_catalog_full_replication,
)
from repro.baselines.sourcing_only import SourcingOnlyPossessionIndex
from repro.api import VodSystem
from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.workloads.flashcrowd import FlashCrowdWorkload

N, U, D, C, K, MU = 48, 1.5, 2.0, 4, 3, 2.0
DURATION = 40


def run_system(name, allocation, sourcing_only=False, seed=9):
    simulator = VodSystem.for_allocation(allocation, mu=MU).build_simulator()
    if sourcing_only:
        simulator._possession = SourcingOnlyPossessionIndex(allocation, cache_window=DURATION)
    workload = FlashCrowdWorkload(mu=MU, target_videos=(0,), random_state=seed)
    result = simulator.run(workload, num_rounds=9)
    return {
        "system": name,
        "catalog": allocation.catalog_size,
        "catalog_scaling": "Θ(n)" if name.startswith("random") else "O(1)",
        "flash_crowd_served": result.feasible,
        "infeasible_rounds": result.metrics.infeasible_rounds,
        "max_startup_delay": result.metrics.max_startup_delay,
    }


def test_baseline_comparison(benchmark, experiment_header):
    population = homogeneous_population(N, u=U, d=D)

    # Paper's system: catalog = d*n/k (linear in n).
    big_catalog = Catalog(num_videos=int(D * N // K), num_stripes=C, duration=DURATION)
    random_alloc = random_permutation_allocation(big_catalog, population, K, random_state=9)

    # Full replication: catalog capped at d*c (constant).
    small_catalog = Catalog(
        num_videos=max_catalog_full_replication(D, C), num_stripes=C, duration=DURATION
    )
    full_alloc = full_replication_allocation(small_catalog, population)

    rows = [
        run_system("random stripes + swarming (paper)", random_alloc),
        run_system("random stripes, sourcing only [3]", random_alloc, sourcing_only=True),
        run_system("full replication (Push-to-Peer [22])", full_alloc),
    ]
    # A non-assisted server sized like one box: its uplink (U streams) cannot
    # serve the n viewers the flash crowd eventually reaches.
    server = CentralServerModel(upload_capacity=U, storage_capacity=D)
    rows.append(
        {
            "system": "central server sized like one box",
            "catalog": server.catalog_size,
            "catalog_scaling": "O(1)",
            "flash_crowd_served": server.can_serve(N),
            "infeasible_rounds": "n/a",
            "max_startup_delay": "n/a",
        }
    )
    benchmark.pedantic(
        run_system, args=("random stripes + swarming (paper)", random_alloc), rounds=1, iterations=1
    )
    print_table(
        rows,
        title=f"E11 — baseline comparison under a maximal flash crowd (n={N}, u={U}, d={D}, c={C}, k={K})",
    )
    # The paper's system serves the crowd with the largest catalog.
    paper_row = rows[0]
    assert paper_row["flash_crowd_served"]
    assert paper_row["catalog"] > rows[2]["catalog"]
    # Sourcing-only on the same allocation collapses under the same crowd.
    assert not rows[1]["flash_crowd_served"]
    # Full replication serves the crowd but with a constant catalog.
    assert rows[2]["flash_crowd_served"]
    assert rows[2]["catalog"] == max_catalog_full_replication(D, C)
