"""E11 — baseline comparison: random stripe allocation vs the alternatives.

Runs the same flash-crowd demand against four systems built on the same
box population:

* the paper's system (random permutation allocation + swarming);
* the sourcing-only variant (the authors' prior work [3]: same allocation,
  playback-cache help disabled);
* full replication (Push-to-Peer style, Suh et al. [22]) — constant
  catalog capped at d·c, pure sourcing but every box holds data of every
  video;
* a centralized server sized like one box (analytic model).

The table reports achievable catalog and whether the crowd is served —
the qualitative ranking the paper argues for (swarming+sourcing wins the
catalog race at equal feasibility).  The four systems are the cells of
the registered ``baseline_comparison`` campaign of
:mod:`repro.orchestrate`; this module executes the same cells in-process
and times the paper-system cell.
"""

import pytest

from repro.analysis.report import print_table
from repro.baselines.full_replication import max_catalog_full_replication
from repro.orchestrate import execute_campaign_rows, get_campaign
from repro.orchestrate.campaigns import run_baseline_comparison

N, U, D, C, K = 48, 1.5, 2.0, 4, 3


def test_baseline_comparison(benchmark, experiment_header):
    campaign = get_campaign("baseline_comparison")
    rows = execute_campaign_rows(campaign)
    benchmark.pedantic(
        run_baseline_comparison,
        args=(dict(campaign.base, system="random_swarming"),),
        rounds=1,
        iterations=1,
    )
    print_table(
        rows,
        title=f"E11 — baseline comparison under a maximal flash crowd (n={N}, u={U}, d={D}, c={C}, k={K})",
    )
    # The paper's system serves the crowd with the largest catalog.
    paper_row = rows[0]
    assert paper_row["flash_crowd_served"]
    assert paper_row["catalog"] > rows[2]["catalog"]
    # Sourcing-only on the same allocation collapses under the same crowd.
    assert not rows[1]["flash_crowd_served"]
    # Full replication serves the crowd but with a constant catalog.
    assert rows[2]["flash_crowd_served"]
    assert rows[2]["catalog"] == max_catalog_full_replication(D, C)
    # The one-box server cannot serve the crowd and offers a tiny catalog.
    assert not rows[3]["flash_crowd_served"]
