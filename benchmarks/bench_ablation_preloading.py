"""Ablation — what the preloading strategy buys (DESIGN.md design choice).

Theorem 1's request strategy has two ingredients: (i) postponing ``c−1`` of
the stripe requests by one round and (ii) rotating the preloaded stripe
round-robin within each swarm.  This ablation removes both
(:class:`repro.ImmediateRequestScheduler` issues all ``c`` requests at the
demand round) and compares the two strategies on increasingly aggressive
flash crowds on a *thinly replicated* video: the previous generation of
viewers is the only thing that can feed the newest one, which is exactly
what the preloading rotation enables.
"""

import pytest

from repro.analysis.report import print_table
from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.preloading import ImmediateRequestScheduler, PreloadingScheduler
from repro.core.video import Catalog
from repro.sim.engine import VodSimulator
from repro.workloads.flashcrowd import FlashCrowdWorkload

N, U, D, C, K, M = 60, 1.2, 1.5, 4, 2, 16
ROUNDS = 9


def theorem1_hypothesis_holds(mu: float) -> bool:
    """Whether c > (2µ²−1)/(u−1) — the regime Theorem 1 covers."""
    return C > (2.0 * mu**2 - 1.0) / (U - 1.0)


def run_strategy(strategy: str, mu: float, seed: int = 0):
    population = homogeneous_population(N, u=U, d=D)
    catalog = Catalog(num_videos=M, num_stripes=C, duration=40)
    allocation = random_permutation_allocation(catalog, population, K, random_state=seed)
    scheduler = (
        PreloadingScheduler(catalog)
        if strategy == "preloading"
        else ImmediateRequestScheduler(catalog)
    )
    simulator = VodSimulator(allocation, mu=mu, scheduler=scheduler)
    workload = FlashCrowdWorkload(mu=mu, target_videos=(0,), random_state=seed)
    result = simulator.run(workload, num_rounds=ROUNDS)
    return {
        "strategy": strategy,
        "mu": mu,
        "theorem1_regime (c > (2mu^2-1)/(u-1))": theorem1_hypothesis_holds(mu),
        "feasible": result.feasible,
        "infeasible_rounds": result.metrics.infeasible_rounds,
        "unmatched_requests": result.metrics.unmatched_requests,
        "demands": result.metrics.total_demands,
    }


def test_preloading_ablation(benchmark, experiment_header):
    rows = []
    for mu in (1.3, 1.7, 2.0):
        rows.append(run_strategy("preloading", mu))
        rows.append(run_strategy("immediate (ablation)", mu))
    benchmark.pedantic(run_strategy, args=("preloading", 2.0), rounds=1, iterations=1)
    print_table(
        rows,
        title=(
            "Ablation — preloading strategy vs immediate all-stripes requests "
            f"(n={N}, u={U}, d={D}, c={C}, k={K}, flash crowd on one video)"
        ),
    )
    # At the mildest growth rate the paper's strategy absorbs the crowd
    # while the ablated one already fails on this thinly replicated video.
    pre_mild = next(r for r in rows if r["strategy"] == "preloading" and r["mu"] == 1.3)
    abl_mild = next(r for r in rows if r["strategy"] != "preloading" and r["mu"] == 1.3)
    assert pre_mild["feasible"]
    assert not abl_mild["feasible"]
    # At every growth rate the ablated strategy leaves at least as many
    # requests unserved, and strictly more in aggregate.
    for mu in (1.3, 1.7, 2.0):
        pre = next(r for r in rows if r["strategy"] == "preloading" and r["mu"] == mu)
        abl = next(r for r in rows if r["strategy"] != "preloading" and r["mu"] == mu)
        assert abl["unmatched_requests"] >= pre["unmatched_requests"]
    total_pre = sum(r["unmatched_requests"] for r in rows if r["strategy"] == "preloading")
    total_abl = sum(r["unmatched_requests"] for r in rows if r["strategy"] != "preloading")
    assert total_abl > total_pre
