"""Scale-tier throughput benchmark; merges into ``BENCH_matching.json``.

Runs the registered ``scale_tier_*`` scenarios (10k / 100k / 500k boxes
with proportional catalogs) through the vectorized struct-of-arrays
engine core and records, per tier:

* per-round throughput (rounds/sec over the measured window);
* peak resident set size;
* feasibility across the run (the tiers are provisioned to stay feasible).

The 10k tier is compared against the pre-vectorization baseline measured
on the object-per-request engine (PR 3, commit ``ff49bf4``): identical
scenario parameters, 12.20 rounds/sec.  The PR-4 acceptance bar is a
>= 5x speedup at that tier plus a completed 100k-box, 50-round run.

``--check`` re-reads a committed ``BENCH_matching.json`` and fails (exit
code 1) when the freshly measured 10k-tier throughput drops more than
``--regression-tolerance`` (default 20%) below the recorded value — the
CI benchmark-regression gate.

Usage::

    python benchmarks/bench_scale.py               # 10k + 100k tiers
    python benchmarks/bench_scale.py --full        # plus the 500k tier
    python benchmarks/bench_scale.py --smoke       # 10k only, short run
    python benchmarks/bench_scale.py --smoke --check BENCH_matching.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.scenarios.build import build_scenario  # noqa: E402
from repro.scenarios.registry import get_scenario  # noqa: E402

#: Pre-vectorization 10k-tier throughput (rounds/sec), measured on the
#: object-per-request engine at PR 3 (commit ff49bf4) with the identical
#: scenario parameters, seed and horizon window used below.
BASELINE_10K_ROUNDS_PER_SEC = 12.20

SPEEDUP_TARGET = 5.0


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def bench_tier(tier: str, rounds: int, seed: int = 7) -> dict:
    """Build and run one tier; returns its result record."""
    spec = get_scenario(f"scale_tier_{tier}")
    build_start = time.perf_counter()
    compiled = build_scenario(spec, seed=seed, min_horizon=rounds)
    build_seconds = time.perf_counter() - build_start

    run_start = time.perf_counter()
    result = compiled.run(rounds)
    run_seconds = time.perf_counter() - run_start

    metrics = result.metrics
    return {
        "tier": tier,
        "boxes": int(spec.population.params["n"]),
        "videos": int(spec.catalog.num_videos),
        "rounds": rounds,
        "seed": seed,
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
        "rounds_per_sec": rounds / run_seconds,
        "active_requests_final": int(metrics.round_stats[-1].active_requests),
        "infeasible_rounds": int(metrics.infeasible_rounds),
        "peak_rss_mb": peak_rss_bytes() / 1e6,
    }


def check_regression(
    committed_path: str, measured_10k: float, tolerance: float
) -> int:
    """Compare fresh 10k throughput against the committed artifact."""
    try:
        with open(committed_path) as handle:
            committed = json.load(handle)
        recorded = next(
            r["rounds_per_sec"]
            for r in committed["scale"]["tiers"]
            if r["tier"] == "10k"
        )
    except (OSError, json.JSONDecodeError, KeyError, StopIteration) as exc:
        print(f"FAIL: no committed 10k record in {committed_path} ({exc})",
              file=sys.stderr)
        return 1
    floor = recorded * (1.0 - tolerance)
    verdict = "OK" if measured_10k >= floor else "FAIL"
    print(
        f"regression check       : measured {measured_10k:.1f} r/s vs "
        f"committed {recorded:.1f} r/s (floor {floor:.1f}) -> {verdict}"
    )
    if measured_10k < floor:
        print(
            f"FAIL: 10k-tier throughput dropped more than "
            f"{tolerance * 100:.0f}% below the committed benchmark",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="10k tier only, short run")
    parser.add_argument("--full", action="store_true", help="include the 500k tier")
    parser.add_argument("--rounds", type=int, default=50, help="rounds per tier")
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="compare against a committed BENCH_matching.json (exit 1 on "
        "a >tolerance throughput drop at the 10k tier) without rewriting it",
    )
    parser.add_argument(
        "--regression-tolerance",
        type=float,
        default=0.20,
        help="allowed fractional throughput drop for --check (default 0.20)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_matching.json"
        ),
    )
    args = parser.parse_args()

    if args.smoke:
        tiers, rounds = ["10k"], min(args.rounds, 20)
    elif args.full:
        tiers, rounds = ["10k", "100k", "500k"], args.rounds
    else:
        tiers, rounds = ["10k", "100k"], args.rounds

    # Warm-up outside the timed region (imports, allocator caches).
    build_scenario(get_scenario("scale_tier_10k"), seed=7).run(3)

    records = []
    for tier in tiers:
        record = bench_tier(tier, rounds)
        records.append(record)
        print(
            f"{tier:>5}: {record['boxes']:>7,} boxes  "
            f"{record['rounds_per_sec']:8.2f} rounds/s  "
            f"{record['active_requests_final']:>7,} active  "
            f"{record['infeasible_rounds']} infeasible  "
            f"peak RSS {record['peak_rss_mb']:.0f} MB"
        )

    measured_10k = records[0]["rounds_per_sec"]
    speedup = measured_10k / BASELINE_10K_ROUNDS_PER_SEC
    print(
        f"10k tier vs pre-vectorization baseline "
        f"({BASELINE_10K_ROUNDS_PER_SEC} r/s): {speedup:.1f}x "
        f"(target >= {SPEEDUP_TARGET}x)"
    )

    if args.check:
        return check_regression(
            args.check, measured_10k, args.regression_tolerance
        )

    section = {
        "baseline_10k_rounds_per_sec": BASELINE_10K_ROUNDS_PER_SEC,
        "baseline_provenance": (
            "object-per-request engine at PR 3 (commit ff49bf4), identical "
            "scale_tier_10k parameters"
        ),
        "speedup_10k": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "target_met": speedup >= SPEEDUP_TARGET,
        "tiers": records,
    }
    output = os.path.abspath(args.output)
    artifact = {}
    if os.path.exists(output):
        try:
            with open(output) as handle:
                artifact = json.load(handle)
        except (OSError, json.JSONDecodeError):
            artifact = {}
    artifact["scale"] = section
    with open(output, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"merged scale section into {output}")

    if not args.smoke and speedup < SPEEDUP_TARGET:
        print(
            f"FAIL: 10k-tier speedup {speedup:.1f}x below the "
            f"{SPEEDUP_TARGET}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
