"""Scale-tier throughput benchmark; merges into ``BENCH_matching.json``.

Runs the registered ``scale_tier_*`` scenarios (10k / 100k / 500k / 2m
boxes with proportional catalogs) through the vectorized
struct-of-arrays engine core and records, per tier:

* per-round throughput (rounds/sec over the measured window);
* peak resident set size;
* feasibility across the run (the tiers are provisioned to stay feasible).

Every tier is then re-run on the sharded multi-process engine
(:mod:`repro.shard`) and recorded as a ``sharded`` row: sharded-vs-single
throughput ratio on this machine, digest cross-check (a divergence fails
the benchmark), cross-shard reconciliation counters and per-worker RSS.
The ratios are machine-relative on purpose — whether sharding wins is a
``cpu_count`` question, recorded alongside the rows.

The 10k tier is compared against the pre-vectorization baseline measured
on the object-per-request engine (PR 3, commit ``ff49bf4``): identical
scenario parameters, 12.20 rounds/sec.  The PR-4 acceptance bar is a
>= 5x speedup at that tier plus a completed 100k-box, 50-round run.

``--check`` is the CI benchmark-regression gate.  It deliberately does
NOT compare absolute timings — the committed artifact comes from a
different machine (its ``cpu_count`` says so), so an absolute floor
flakes on hardware variance.  Instead it measures, in this process, the
10k tier twice — incremental delta-repair on vs forced full per-round
re-solves — and gates on the *ratio* against the committed
``scale.relative.incremental_speedup`` baseline: both sides of the ratio
see the same machine, so only a genuine relative regression (the
incremental path losing its edge) can fail the gate.  ``--record``
refreshes that committed baseline after intentional performance changes.

Usage::

    python benchmarks/bench_scale.py               # 10k + 100k tiers
    python benchmarks/bench_scale.py --full        # plus the 500k tier
    python benchmarks/bench_scale.py --smoke       # 10k only, short run
    python benchmarks/bench_scale.py --record      # refresh ratio baseline
    python benchmarks/bench_scale.py --smoke --check BENCH_matching.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.scenarios.build import build_scenario  # noqa: E402
from repro.scenarios.registry import get_scenario  # noqa: E402
from repro.scenarios.replay import digest_result  # noqa: E402

#: Pre-vectorization 10k-tier throughput (rounds/sec), measured on the
#: object-per-request engine at PR 3 (commit ff49bf4) with the identical
#: scenario parameters, seed and horizon window used below.
BASELINE_10K_ROUNDS_PER_SEC = 12.20

SPEEDUP_TARGET = 5.0


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def bench_tier(
    tier: str,
    rounds: int,
    seed: int = 7,
    incremental: "bool | None" = None,
    n_shards: "int | None" = None,
    shard_host: str = "process",
) -> dict:
    """Build and run one tier; returns its result record.

    With ``n_shards`` the tier runs on the sharded multi-process engine
    (:mod:`repro.shard`); the record then carries the shard layout, the
    run's cross-shard reconciliation counters and the per-worker resident
    set sizes next to the coordinator's.
    """
    spec = get_scenario(f"scale_tier_{tier}")
    build_start = time.perf_counter()
    compiled = build_scenario(
        spec, seed=seed, min_horizon=rounds, n_shards=n_shards, shard_host=shard_host
    )
    build_seconds = time.perf_counter() - build_start
    if incremental is not None:
        compiled.simulator.set_incremental_matching(incremental)

    run_start = time.perf_counter()
    result = compiled.run(rounds)
    run_seconds = time.perf_counter() - run_start

    metrics = result.metrics
    record = {
        "tier": tier,
        "boxes": int(spec.population.params["n"]),
        "videos": int(spec.catalog.num_videos),
        "rounds": rounds,
        "seed": seed,
        "incremental": bool(compiled.simulator.incremental_matching),
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
        "rounds_per_sec": rounds / run_seconds,
        "active_requests_final": int(metrics.round_stats[-1].active_requests),
        "infeasible_rounds": int(metrics.infeasible_rounds),
        "peak_rss_mb": peak_rss_bytes() / 1e6,
        "digest": digest_result(spec, seed, rounds, result).digest,
    }
    simulator = compiled.simulator
    if n_shards is not None:
        record.update(
            {
                "n_shards": int(simulator.n_shards),
                "shard_host": simulator.shard_host_kind,
                "shard_restarts": int(simulator.shard_restarts),
                "reconciled_rounds": int(simulator.reconciled_rounds),
                "cross_shard_connections": int(simulator.cross_shard_connections),
                "worker_rss_mb": [
                    probe["rss_kib"] / 1024.0 for probe in simulator.shard_rss()
                ],
            }
        )
        simulator.close()
    return record


def measure_relative(rounds: int, repeats: int = 2, seed: int = 7) -> dict:
    """Incremental-vs-full 10k throughput ratio, same machine, same process.

    Best-of-``repeats`` per mode so a stray scheduler hiccup on one run
    can't skew the ratio.
    """
    best = {}
    for incremental in (True, False):
        best[incremental] = max(
            bench_tier("10k", rounds, seed=seed, incremental=incremental)[
                "rounds_per_sec"
            ]
            for _ in range(repeats)
        )
    return {
        "tier": "10k",
        "rounds": rounds,
        "incremental_rounds_per_sec": best[True],
        "full_solve_rounds_per_sec": best[False],
        "incremental_speedup": best[True] / best[False],
    }


def measure_sharded_relative(rounds: int, repeats: int = 2, seed: int = 7) -> dict:
    """Sharded-vs-single 10k throughput ratio, same machine, same process.

    The ratio is what the CI gate consumes: on a many-core machine it
    exceeds 1 (the shards actually parallelize the box data plane), on a
    single-core runner it sits below 1 (the coordination protocol is pure
    overhead) — but either way both sides see the same hardware, so a
    drop means the sharded path itself got slower.  The digests of the
    two runs are asserted equal while we are at it.
    """
    n_shards = max(2, min(4, os.cpu_count() or 1))
    best: dict = {}
    digests = {}
    for sharded in (False, True):
        kwargs = {"n_shards": n_shards} if sharded else {}
        records = [
            bench_tier("10k", rounds, seed=seed, **kwargs) for _ in range(repeats)
        ]
        best[sharded] = max(r["rounds_per_sec"] for r in records)
        digests[sharded] = records[0]["digest"]
    assert digests[True] == digests[False], (
        "sharded 10k digest diverged from single-process"
    )
    return {
        "tier": "10k",
        "rounds": rounds,
        "n_shards": n_shards,
        "cpu_count": os.cpu_count(),
        "single_rounds_per_sec": best[False],
        "sharded_rounds_per_sec": best[True],
        "sharded_ratio": best[True] / best[False],
        "digest_match": True,
    }


def measure_event_relative(rounds: int, repeats: int = 2, seed: int = 7) -> dict:
    """Event-vs-round 10k throughput ratio, same machine, same process.

    Both engines run the identical ``scale_tier_10k`` build; the event
    run's round-binned records must equal the round engine's record for
    record (a divergence fails the benchmark).  The ratio — continuous
    clock over synchronous clock — is machine-relative like the sharded
    row: both sides see the same hardware, so a drop means the event
    layer's per-round overhead itself grew.  The event run's latency
    percentiles ride along, since only that engine can report them.
    """
    from repro.scenarios.replay import _round_records

    spec = get_scenario("scale_tier_10k")
    best: dict = {}
    results = {}
    for engine in ("round", "event"):
        engine_spec = spec.with_overrides(engine=engine)
        runs = []
        for _ in range(repeats):
            compiled = build_scenario(engine_spec, seed=seed, min_horizon=rounds)
            start = time.perf_counter()
            result = compiled.run(rounds)
            runs.append(rounds / (time.perf_counter() - start))
            results[engine] = result
        best[engine] = max(runs)
    assert _round_records(results["round"]) == _round_records(results["event"]), (
        "event-engine 10k round records diverged from the round engine"
    )
    metrics = results["event"].metrics
    return {
        "tier": "10k",
        "rounds": rounds,
        "round_rounds_per_sec": best["round"],
        "event_rounds_per_sec": best["event"],
        "event_ratio": best["event"] / best["round"],
        "parity": True,
        "admission_latency_p50": metrics.admission_latency_p50,
        "admission_latency_p99": metrics.admission_latency_p99,
        "startup_delay_p50": metrics.startup_delay_p50,
        "startup_delay_p99": metrics.startup_delay_p99,
    }


def check_regression(committed_path: str, rounds: int, tolerance: float) -> int:
    """Gate on the machine-relative incremental-vs-full ratio.

    Both sides of the ratio are measured here, on this machine — the
    only committed quantity consulted is the baseline *ratio*, which is
    hardware-portable.  Fails (exit 1) when the fresh ratio drops more
    than ``tolerance`` below the committed one.
    """
    try:
        with open(committed_path) as handle:
            committed = json.load(handle)
        recorded = float(committed["scale"]["relative"]["incremental_speedup"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(
            f"FAIL: no committed scale.relative baseline in {committed_path} "
            f"({exc}) — run benchmarks/bench_scale.py --record to create one",
            file=sys.stderr,
        )
        return 1
    relative = measure_relative(rounds)
    measured = relative["incremental_speedup"]
    floor = recorded * (1.0 - tolerance)
    verdict = "OK" if measured >= floor else "FAIL"
    print(
        f"regression check       : incremental/full ratio {measured:.2f}x "
        f"(inc {relative['incremental_rounds_per_sec']:.1f} r/s, full "
        f"{relative['full_solve_rounds_per_sec']:.1f} r/s) vs committed "
        f"{recorded:.2f}x (floor {floor:.2f}x) -> {verdict}"
    )
    failures = 0
    if measured < floor:
        print(
            f"FAIL: incremental-vs-full speedup dropped more than "
            f"{tolerance * 100:.0f}% below the committed ratio baseline",
            file=sys.stderr,
        )
        failures += 1

    # The sharded rows get the same machine-relative treatment: gate on
    # the sharded-vs-single throughput ratio re-measured here, not on the
    # committed machine's absolute numbers.
    try:
        recorded_sharded = float(
            committed["scale"]["sharded"]["relative"]["sharded_ratio"]
        )
    except (KeyError, TypeError, ValueError):
        print(
            "sharded regression     : no committed scale.sharded.relative "
            "baseline — run benchmarks/bench_scale.py --record (skipping)"
        )
        recorded_sharded = None
    if recorded_sharded is not None:
        sharded = measure_sharded_relative(rounds)
        measured_sharded = sharded["sharded_ratio"]
        sharded_floor = recorded_sharded * (1.0 - tolerance)
        verdict = "OK" if measured_sharded >= sharded_floor else "FAIL"
        print(
            f"sharded regression     : sharded/single ratio "
            f"{measured_sharded:.2f}x ({sharded['n_shards']} shards, "
            f"{sharded['sharded_rounds_per_sec']:.1f} vs "
            f"{sharded['single_rounds_per_sec']:.1f} r/s) vs committed "
            f"{recorded_sharded:.2f}x (floor {sharded_floor:.2f}x) -> {verdict}"
        )
        if measured_sharded < sharded_floor:
            print(
                f"FAIL: sharded-vs-single throughput dropped more than "
                f"{tolerance * 100:.0f}% below the committed ratio baseline",
                file=sys.stderr,
            )
            failures += 1

    # The event-engine row: gate on the event-vs-round throughput ratio
    # re-measured here (record-for-record parity is asserted inside).
    try:
        recorded_event = float(committed["event_engine"]["event_ratio"])
    except (KeyError, TypeError, ValueError):
        print(
            "event regression       : no committed event_engine baseline — "
            "run benchmarks/bench_scale.py to create one (skipping)"
        )
        recorded_event = None
    if recorded_event is not None:
        event = measure_event_relative(rounds)
        measured_event = event["event_ratio"]
        event_floor = recorded_event * (1.0 - tolerance)
        verdict = "OK" if measured_event >= event_floor else "FAIL"
        print(
            f"event regression       : event/round ratio {measured_event:.2f}x "
            f"(event {event['event_rounds_per_sec']:.1f} r/s, round "
            f"{event['round_rounds_per_sec']:.1f} r/s) vs committed "
            f"{recorded_event:.2f}x (floor {event_floor:.2f}x) -> {verdict}"
        )
        if measured_event < event_floor:
            print(
                f"FAIL: event-vs-round throughput dropped more than "
                f"{tolerance * 100:.0f}% below the committed ratio baseline",
                file=sys.stderr,
            )
            failures += 1
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="10k tier only, short run")
    parser.add_argument("--full", action="store_true", help="include the 500k tier")
    parser.add_argument("--rounds", type=int, default=50, help="rounds per tier")
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="gate against a committed BENCH_matching.json: re-measures the "
        "10k incremental-vs-full ratio on THIS machine and exits 1 when it "
        "drops >tolerance below the committed ratio; never rewrites files",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="refresh the committed machine-relative ratio baseline "
        "(scale.relative) alongside the tier records",
    )
    parser.add_argument(
        "--regression-tolerance",
        type=float,
        default=0.20,
        help="allowed fractional ratio drop for --check (default 0.20)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_matching.json"
        ),
    )
    args = parser.parse_args()

    if args.smoke:
        tiers, rounds = ["10k"], min(args.rounds, 20)
    elif args.full:
        tiers, rounds = ["10k", "100k", "500k", "2m"], args.rounds
    else:
        tiers, rounds = ["10k", "100k"], args.rounds

    # Warm-up outside the timed region (imports, allocator caches).
    build_scenario(get_scenario("scale_tier_10k"), seed=7).run(3)

    if args.check:
        return check_regression(
            args.check, min(args.rounds, 20), args.regression_tolerance
        )

    # Measure the ratio baselines in the same process position --check
    # uses (right after warm-up): the full-solve runs below perturb the
    # allocator enough to skew a later measurement.
    relative = measure_relative(min(args.rounds, 20)) if args.record else None
    sharded_relative = (
        measure_sharded_relative(min(args.rounds, 20)) if args.record else None
    )

    records = []
    for tier in tiers:
        record = bench_tier(tier, rounds)
        records.append(record)
        print(
            f"{tier:>5}: {record['boxes']:>7,} boxes  "
            f"{record['rounds_per_sec']:8.2f} rounds/s  "
            f"{record['active_requests_final']:>7,} active  "
            f"{record['infeasible_rounds']} infeasible  "
            f"peak RSS {record['peak_rss_mb']:.0f} MB"
        )

    # Sharded rows: the same tiers on the multi-process engine, with the
    # digest cross-checked against the single-process record above.
    n_shards = max(2, min(4, os.cpu_count() or 1))
    sharded_records = []
    for single in records:
        record = bench_tier(single["tier"], rounds, n_shards=n_shards)
        record["single_rounds_per_sec"] = single["rounds_per_sec"]
        record["sharded_ratio"] = (
            record["rounds_per_sec"] / single["rounds_per_sec"]
        )
        record["digest_match"] = record["digest"] == single["digest"]
        sharded_records.append(record)
        print(
            f"{record['tier']:>5}: {record['boxes']:>7,} boxes  "
            f"{record['rounds_per_sec']:8.2f} rounds/s sharded x{n_shards}  "
            f"({record['sharded_ratio']:.2f}x single)  "
            f"digest {'OK' if record['digest_match'] else 'DIVERGED'}  "
            f"{record['cross_shard_connections']:,} cross-shard"
        )
        if not record["digest_match"]:
            print(
                f"FAIL: sharded {record['tier']} digest diverged from the "
                "single-process run",
                file=sys.stderr,
            )
            return 1

    # Event-engine row: same 10k workload on the continuous clock, parity
    # asserted, machine-relative ratio recorded for the CI gate.
    event_relative = measure_event_relative(min(rounds, 20))
    print(
        f"  10k: event engine {event_relative['event_rounds_per_sec']:8.2f} "
        f"rounds/s  ({event_relative['event_ratio']:.2f}x round)  "
        f"parity OK  admission p99 "
        f"{event_relative['admission_latency_p99']:.3f}"
    )

    measured_10k = records[0]["rounds_per_sec"]
    speedup = measured_10k / BASELINE_10K_ROUNDS_PER_SEC
    print(
        f"10k tier vs pre-vectorization baseline "
        f"({BASELINE_10K_ROUNDS_PER_SEC} r/s): {speedup:.1f}x "
        f"(target >= {SPEEDUP_TARGET}x)"
    )

    section = {
        "baseline_10k_rounds_per_sec": BASELINE_10K_ROUNDS_PER_SEC,
        "baseline_provenance": (
            "object-per-request engine at PR 3 (commit ff49bf4), identical "
            "scale_tier_10k parameters"
        ),
        "speedup_10k": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "target_met": speedup >= SPEEDUP_TARGET,
        "tiers": records,
        "sharded": {
            "cpu_count": os.cpu_count(),
            "n_shards": n_shards,
            "note": (
                "Machine-relative rows: sharded-vs-single throughput on the "
                "SAME host, digest cross-checked.  A sharded win over the "
                "single-process baseline requires cpu_count > 1 — on a "
                "single-core host the coordination protocol is pure "
                "overhead and the ratio sits below 1 by construction; the "
                "committed cpu_count above says which regime these numbers "
                "come from."
            ),
            "tiers": sharded_records,
        },
    }
    output = os.path.abspath(args.output)
    artifact = {}
    if os.path.exists(output):
        try:
            with open(output) as handle:
                artifact = json.load(handle)
        except (OSError, json.JSONDecodeError):
            artifact = {}
    if relative is not None:
        section["relative"] = relative
        print(
            f"ratio baseline         : incremental/full "
            f"{relative['incremental_speedup']:.2f}x recorded"
        )
    else:
        # Keep the committed machine-relative baseline: plain runs report
        # absolute numbers for this machine but only --record may move
        # the ratio that CI's --check gates on.
        previous = artifact.get("scale", {})
        if isinstance(previous, dict) and "relative" in previous:
            section["relative"] = previous["relative"]
    if sharded_relative is not None:
        section["sharded"]["relative"] = sharded_relative
        print(
            f"sharded ratio baseline : sharded/single "
            f"{sharded_relative['sharded_ratio']:.2f}x recorded "
            f"({sharded_relative['n_shards']} shards, cpu_count "
            f"{sharded_relative['cpu_count']})"
        )
    else:
        previous = artifact.get("scale", {})
        if isinstance(previous, dict) and isinstance(
            previous.get("sharded"), dict
        ) and "relative" in previous["sharded"]:
            section["sharded"]["relative"] = previous["sharded"]["relative"]
    artifact["scale"] = section
    artifact["event_engine"] = event_relative
    with open(output, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"merged scale section into {output}")

    if not args.smoke and speedup < SPEEDUP_TARGET:
        print(
            f"FAIL: 10k-tier speedup {speedup:.1f}x below the "
            f"{SPEEDUP_TARGET}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
