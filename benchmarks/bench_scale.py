"""Scale-tier throughput benchmark; merges into ``BENCH_matching.json``.

Runs the registered ``scale_tier_*`` scenarios (10k / 100k / 500k boxes
with proportional catalogs) through the vectorized struct-of-arrays
engine core and records, per tier:

* per-round throughput (rounds/sec over the measured window);
* peak resident set size;
* feasibility across the run (the tiers are provisioned to stay feasible).

The 10k tier is compared against the pre-vectorization baseline measured
on the object-per-request engine (PR 3, commit ``ff49bf4``): identical
scenario parameters, 12.20 rounds/sec.  The PR-4 acceptance bar is a
>= 5x speedup at that tier plus a completed 100k-box, 50-round run.

``--check`` is the CI benchmark-regression gate.  It deliberately does
NOT compare absolute timings — the committed artifact comes from a
different machine (its ``cpu_count`` says so), so an absolute floor
flakes on hardware variance.  Instead it measures, in this process, the
10k tier twice — incremental delta-repair on vs forced full per-round
re-solves — and gates on the *ratio* against the committed
``scale.relative.incremental_speedup`` baseline: both sides of the ratio
see the same machine, so only a genuine relative regression (the
incremental path losing its edge) can fail the gate.  ``--record``
refreshes that committed baseline after intentional performance changes.

Usage::

    python benchmarks/bench_scale.py               # 10k + 100k tiers
    python benchmarks/bench_scale.py --full        # plus the 500k tier
    python benchmarks/bench_scale.py --smoke       # 10k only, short run
    python benchmarks/bench_scale.py --record      # refresh ratio baseline
    python benchmarks/bench_scale.py --smoke --check BENCH_matching.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.scenarios.build import build_scenario  # noqa: E402
from repro.scenarios.registry import get_scenario  # noqa: E402

#: Pre-vectorization 10k-tier throughput (rounds/sec), measured on the
#: object-per-request engine at PR 3 (commit ff49bf4) with the identical
#: scenario parameters, seed and horizon window used below.
BASELINE_10K_ROUNDS_PER_SEC = 12.20

SPEEDUP_TARGET = 5.0


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def bench_tier(
    tier: str, rounds: int, seed: int = 7, incremental: "bool | None" = None
) -> dict:
    """Build and run one tier; returns its result record."""
    spec = get_scenario(f"scale_tier_{tier}")
    build_start = time.perf_counter()
    compiled = build_scenario(spec, seed=seed, min_horizon=rounds)
    build_seconds = time.perf_counter() - build_start
    if incremental is not None:
        compiled.simulator.set_incremental_matching(incremental)

    run_start = time.perf_counter()
    result = compiled.run(rounds)
    run_seconds = time.perf_counter() - run_start

    metrics = result.metrics
    return {
        "tier": tier,
        "boxes": int(spec.population.params["n"]),
        "videos": int(spec.catalog.num_videos),
        "rounds": rounds,
        "seed": seed,
        "incremental": bool(compiled.simulator.incremental_matching),
        "build_seconds": build_seconds,
        "run_seconds": run_seconds,
        "rounds_per_sec": rounds / run_seconds,
        "active_requests_final": int(metrics.round_stats[-1].active_requests),
        "infeasible_rounds": int(metrics.infeasible_rounds),
        "peak_rss_mb": peak_rss_bytes() / 1e6,
    }


def measure_relative(rounds: int, repeats: int = 2, seed: int = 7) -> dict:
    """Incremental-vs-full 10k throughput ratio, same machine, same process.

    Best-of-``repeats`` per mode so a stray scheduler hiccup on one run
    can't skew the ratio.
    """
    best = {}
    for incremental in (True, False):
        best[incremental] = max(
            bench_tier("10k", rounds, seed=seed, incremental=incremental)[
                "rounds_per_sec"
            ]
            for _ in range(repeats)
        )
    return {
        "tier": "10k",
        "rounds": rounds,
        "incremental_rounds_per_sec": best[True],
        "full_solve_rounds_per_sec": best[False],
        "incremental_speedup": best[True] / best[False],
    }


def check_regression(committed_path: str, rounds: int, tolerance: float) -> int:
    """Gate on the machine-relative incremental-vs-full ratio.

    Both sides of the ratio are measured here, on this machine — the
    only committed quantity consulted is the baseline *ratio*, which is
    hardware-portable.  Fails (exit 1) when the fresh ratio drops more
    than ``tolerance`` below the committed one.
    """
    try:
        with open(committed_path) as handle:
            committed = json.load(handle)
        recorded = float(committed["scale"]["relative"]["incremental_speedup"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(
            f"FAIL: no committed scale.relative baseline in {committed_path} "
            f"({exc}) — run benchmarks/bench_scale.py --record to create one",
            file=sys.stderr,
        )
        return 1
    relative = measure_relative(rounds)
    measured = relative["incremental_speedup"]
    floor = recorded * (1.0 - tolerance)
    verdict = "OK" if measured >= floor else "FAIL"
    print(
        f"regression check       : incremental/full ratio {measured:.2f}x "
        f"(inc {relative['incremental_rounds_per_sec']:.1f} r/s, full "
        f"{relative['full_solve_rounds_per_sec']:.1f} r/s) vs committed "
        f"{recorded:.2f}x (floor {floor:.2f}x) -> {verdict}"
    )
    if measured < floor:
        print(
            f"FAIL: incremental-vs-full speedup dropped more than "
            f"{tolerance * 100:.0f}% below the committed ratio baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="10k tier only, short run")
    parser.add_argument("--full", action="store_true", help="include the 500k tier")
    parser.add_argument("--rounds", type=int, default=50, help="rounds per tier")
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="gate against a committed BENCH_matching.json: re-measures the "
        "10k incremental-vs-full ratio on THIS machine and exits 1 when it "
        "drops >tolerance below the committed ratio; never rewrites files",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="refresh the committed machine-relative ratio baseline "
        "(scale.relative) alongside the tier records",
    )
    parser.add_argument(
        "--regression-tolerance",
        type=float,
        default=0.20,
        help="allowed fractional ratio drop for --check (default 0.20)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_matching.json"
        ),
    )
    args = parser.parse_args()

    if args.smoke:
        tiers, rounds = ["10k"], min(args.rounds, 20)
    elif args.full:
        tiers, rounds = ["10k", "100k", "500k"], args.rounds
    else:
        tiers, rounds = ["10k", "100k"], args.rounds

    # Warm-up outside the timed region (imports, allocator caches).
    build_scenario(get_scenario("scale_tier_10k"), seed=7).run(3)

    if args.check:
        return check_regression(
            args.check, min(args.rounds, 20), args.regression_tolerance
        )

    # Measure the ratio baseline in the same process position --check
    # uses (right after warm-up): the full-solve runs below perturb the
    # allocator enough to skew a later measurement.
    relative = measure_relative(min(args.rounds, 20)) if args.record else None

    records = []
    for tier in tiers:
        record = bench_tier(tier, rounds)
        records.append(record)
        print(
            f"{tier:>5}: {record['boxes']:>7,} boxes  "
            f"{record['rounds_per_sec']:8.2f} rounds/s  "
            f"{record['active_requests_final']:>7,} active  "
            f"{record['infeasible_rounds']} infeasible  "
            f"peak RSS {record['peak_rss_mb']:.0f} MB"
        )

    measured_10k = records[0]["rounds_per_sec"]
    speedup = measured_10k / BASELINE_10K_ROUNDS_PER_SEC
    print(
        f"10k tier vs pre-vectorization baseline "
        f"({BASELINE_10K_ROUNDS_PER_SEC} r/s): {speedup:.1f}x "
        f"(target >= {SPEEDUP_TARGET}x)"
    )

    section = {
        "baseline_10k_rounds_per_sec": BASELINE_10K_ROUNDS_PER_SEC,
        "baseline_provenance": (
            "object-per-request engine at PR 3 (commit ff49bf4), identical "
            "scale_tier_10k parameters"
        ),
        "speedup_10k": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "target_met": speedup >= SPEEDUP_TARGET,
        "tiers": records,
    }
    output = os.path.abspath(args.output)
    artifact = {}
    if os.path.exists(output):
        try:
            with open(output) as handle:
                artifact = json.load(handle)
        except (OSError, json.JSONDecodeError):
            artifact = {}
    if relative is not None:
        section["relative"] = relative
        print(
            f"ratio baseline         : incremental/full "
            f"{relative['incremental_speedup']:.2f}x recorded"
        )
    else:
        # Keep the committed machine-relative baseline: plain runs report
        # absolute numbers for this machine but only --record may move
        # the ratio that CI's --check gates on.
        previous = artifact.get("scale", {})
        if isinstance(previous, dict) and "relative" in previous:
            section["relative"] = previous["relative"]
    artifact["scale"] = section
    with open(output, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"merged scale section into {output}")

    if not args.smoke and speedup < SPEEDUP_TARGET:
        print(
            f"FAIL: 10k-tier speedup {speedup:.1f}x below the "
            f"{SPEEDUP_TARGET}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
