#!/usr/bin/env python
"""Old-vs-new matching-engine benchmarks; emits ``BENCH_matching.json``.

Times the seed max-flow matching path against the Hopcroft–Karp CSR
kernel on the bipartite instances one simulator round produces, plus the
warm-started simulator loop and the parallel Monte-Carlo driver, and
cross-validates the two kernels on randomized instances along the way:

* ``unit_matching_kernel`` — ``solve_b_matching`` via the seed Dinic
  reduction vs the Hopcroft–Karp kernel, same edge list (the acceptance
  microbenchmark: the new kernel must be ≥5× faster);
* ``per_round_matcher`` — full ``ConnectionMatcher.match`` round cost,
  set-based edge building + Dinic vs CSR adjacency + Hopcroft–Karp;
* ``warm_start_rounds`` — ``VodSimulator`` wall-clock with and without
  carrying the previous round's assignment forward, measured at a tier
  (hundreds of boxes, thousands of carried requests) where the carried
  assignment actually amortizes — at toy sizes the validation overhead
  cancels the win;
* ``incremental_matching`` — the 10k-box scale tier with the
  delta-repair path on vs forced full per-round re-solves (per-round
  matched cardinalities cross-checked equal);
* ``parallel_montecarlo`` — serial vs process-pool static obstruction
  estimation (checked bit-identical for the fixed seed).

Run ``python benchmarks/run_benchmarks.py --smoke`` for a quick pass at
small sizes (what CI runs) and without arguments for the full sizes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro.analysis.montecarlo import estimate_static_obstruction_probability
from repro.core.allocation import random_permutation_allocation
from repro.core.matching import ConnectionMatcher, PossessionIndex, RequestSet, StripeRequest
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog
from repro.flow.bipartite import solve_b_matching
from repro.sim.engine import VodSimulator
from repro.workloads.flashcrowd import FlashCrowdWorkload


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_round_instance(n, m, c, k, num_requests, cache_entries, seed):
    """A possession index + request set shaped like one simulator round."""
    population = homogeneous_population(n, u=2.0, d=4.0)
    catalog = Catalog(num_videos=m, num_stripes=c, duration=30)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    possession = PossessionIndex(allocation, cache_window=catalog.duration)
    rng = np.random.default_rng(seed)
    for _ in range(cache_entries):
        possession.record_download(
            int(rng.integers(catalog.total_stripes)), int(rng.integers(n)), int(rng.integers(3))
        )
    requests = RequestSet(
        StripeRequest(
            stripe_id=int(rng.integers(catalog.total_stripes)),
            request_time=int(rng.integers(4)),
            box_id=int(rng.integers(n)),
        )
        for _ in range(num_requests)
    )
    return population, catalog, allocation, possession, requests


def bench_unit_matching_kernel(sizes, repeats) -> Dict[str, object]:
    """The acceptance microbenchmark: seed solve_b_matching vs the HK kernel."""
    population, catalog, allocation, possession, requests = build_round_instance(**sizes)
    edges = []
    for idx, request in enumerate(requests):
        for box in possession.servers_for(request, current_time=4):
            if box != request.box_id:
                edges.append((idx, int(box)))
    caps = population.upload_slots(catalog.num_stripes_per_video).tolist()
    num_left, num_right = len(requests), population.n

    old = solve_b_matching(num_left, num_right, edges, caps, method="dinic")
    new = solve_b_matching(num_left, num_right, edges, caps, method="hopcroft_karp")
    assert old.matched == new.matched and old.feasible == new.feasible

    t_old = best_of(
        lambda: solve_b_matching(num_left, num_right, edges, caps, method="dinic"), repeats
    )
    t_new = best_of(
        lambda: solve_b_matching(num_left, num_right, edges, caps, method="hopcroft_karp"),
        repeats,
    )
    return {
        "name": "unit_matching_kernel",
        "requests": num_left,
        "boxes": num_right,
        "edges": len(edges),
        "matched": int(new.matched),
        "feasible": bool(new.feasible),
        "old_seconds": t_old,
        "new_seconds": t_new,
        "speedup": t_old / t_new if t_new > 0 else float("inf"),
    }


def bench_per_round_matcher(sizes, repeats) -> Dict[str, object]:
    """Full per-round match cost: edge building + solve, old path vs new."""
    population, catalog, allocation, possession, requests = build_round_instance(**sizes)
    slots = population.upload_slots(catalog.num_stripes_per_video)
    old_matcher = ConnectionMatcher(slots, solver="dinic")
    new_matcher = ConnectionMatcher(slots, solver="hopcroft_karp")

    old = old_matcher.match(requests, possession, current_time=4)
    new = new_matcher.match(requests, possession, current_time=4)
    assert old.matched == new.matched and old.feasible == new.feasible

    t_old = best_of(lambda: old_matcher.match(requests, possession, current_time=4), repeats)
    t_new = best_of(lambda: new_matcher.match(requests, possession, current_time=4), repeats)
    return {
        "name": "per_round_matcher",
        "requests": len(requests),
        "boxes": population.n,
        "matched": int(new.matched),
        "old_seconds": t_old,
        "new_seconds": t_new,
        "speedup": t_old / t_new if t_new > 0 else float("inf"),
    }


def bench_warm_start_rounds(n, m, c, k, num_rounds, repeats) -> Dict[str, object]:
    """Simulator wall-clock: warm-started rematch vs cold per-round solve."""

    def run(warm: bool):
        population = homogeneous_population(n, u=2.0, d=4.0)
        catalog = Catalog(num_videos=m, num_stripes=c, duration=20)
        allocation = random_permutation_allocation(catalog, population, k, random_state=9)
        simulator = VodSimulator(allocation, mu=1.5, warm_start=warm)
        workload = FlashCrowdWorkload(mu=1.5, random_state=9)
        return simulator.run(workload, num_rounds)

    cold_result = run(False)
    warm_result = run(True)
    assert cold_result.metrics.infeasible_rounds == warm_result.metrics.infeasible_rounds

    t_cold = best_of(lambda: run(False), repeats)
    t_warm = best_of(lambda: run(True), repeats)
    return {
        "name": "warm_start_rounds",
        "boxes": n,
        "rounds": num_rounds,
        "feasible": bool(warm_result.feasible),
        "old_seconds": t_cold,
        "new_seconds": t_warm,
        "speedup": t_cold / t_warm if t_warm > 0 else float("inf"),
    }


def bench_incremental_matching(rounds, repeats) -> Dict[str, object]:
    """Scale-tier engine wall-clock: full per-round re-solve vs delta repair."""
    from repro.scenarios.build import build_scenario
    from repro.scenarios.registry import get_scenario

    spec = get_scenario("scale_tier_10k")

    def run(incremental: bool):
        compiled = build_scenario(spec, seed=7, min_horizon=rounds)
        compiled.simulator.set_incremental_matching(incremental)
        start = time.perf_counter()
        result = compiled.run(rounds)
        return time.perf_counter() - start, result, compiled.simulator

    t_full, full_result, _ = run(False)
    t_inc, inc_result, simulator = run(True)
    full_matched = [s.matched for s in full_result.metrics.round_stats]
    inc_matched = [s.matched for s in inc_result.metrics.round_stats]
    assert inc_matched == full_matched, "incremental path changed a cardinality"
    for _ in range(repeats - 1):
        t_full = min(t_full, run(False)[0])
        t_inc = min(t_inc, run(True)[0])
    return {
        "name": "incremental_matching",
        "tier": "10k",
        "boxes": int(spec.population.params["n"]),
        "rounds": rounds,
        "repair_fallback_rounds": int(simulator.repair_fallback_rounds),
        "old_seconds": t_full,
        "new_seconds": t_inc,
        "speedup": t_full / t_inc if t_inc > 0 else float("inf"),
    }


def bench_obstruction_estimator(n, trials, repeats) -> Dict[str, object]:
    """End-to-end static obstruction estimation, Dinic vs Hopcroft–Karp."""
    kwargs = dict(
        n=n, u=1.5, d=3.0, c=6, k=2, num_cold_videos=[n // 3], trials=trials, random_state=7
    )
    old = estimate_static_obstruction_probability(**kwargs, solver="dinic")
    new = estimate_static_obstruction_probability(**kwargs, solver="hopcroft_karp")
    assert old.failures == new.failures

    t_old = best_of(
        lambda: estimate_static_obstruction_probability(**kwargs, solver="dinic"), repeats
    )
    t_new = best_of(
        lambda: estimate_static_obstruction_probability(**kwargs, solver="hopcroft_karp"),
        repeats,
    )
    return {
        "name": "obstruction_estimator",
        "boxes": n,
        "trials": trials,
        "failures": int(new.failures),
        "old_seconds": t_old,
        "new_seconds": t_new,
        "speedup": t_old / t_new if t_new > 0 else float("inf"),
    }


def bench_parallel_montecarlo(n, trials, repeats) -> Dict[str, object]:
    """Serial vs process-pool Monte-Carlo (checked bit-identical)."""
    kwargs = dict(
        n=n, u=1.5, d=3.0, c=4, k=2, num_cold_videos=[n // 4], trials=trials, random_state=7
    )
    serial = estimate_static_obstruction_probability(**kwargs)
    parallel = estimate_static_obstruction_probability(**kwargs, n_jobs=2)
    assert serial.failures == parallel.failures
    assert serial.details == parallel.details

    t_serial = best_of(lambda: estimate_static_obstruction_probability(**kwargs), repeats)
    t_parallel = best_of(
        lambda: estimate_static_obstruction_probability(**kwargs, n_jobs=2), repeats
    )
    return {
        "name": "parallel_montecarlo",
        "boxes": n,
        "trials": trials,
        "failures": int(serial.failures),
        "bit_identical": True,
        "old_seconds": t_serial,
        "new_seconds": t_parallel,
        "speedup": t_serial / t_parallel if t_parallel > 0 else float("inf"),
    }


def cross_validate_kernels(instances, seed) -> Dict[str, object]:
    """HK vs Dinic on randomized bipartite instances (flow value + validity)."""
    rng = np.random.default_rng(seed)
    agreements = 0
    for _ in range(instances):
        num_left = int(rng.integers(1, 40))
        num_right = int(rng.integers(1, 25))
        caps = [int(rng.integers(0, 4)) for _ in range(num_right)]
        density = float(rng.uniform(0.05, 0.5))
        edges = [
            (i, j)
            for i in range(num_left)
            for j in range(num_right)
            if rng.random() < density
        ]
        old = solve_b_matching(num_left, num_right, edges, caps, method="dinic")
        new = solve_b_matching(num_left, num_right, edges, caps, method="hopcroft_karp")
        if old.matched == new.matched and old.feasible == new.feasible:
            agreements += 1
        loads = [0] * num_right
        edge_set = set(edges)
        for i, j in enumerate(new.assignment):
            if j >= 0:
                assert (i, int(j)) in edge_set, "assignment uses a non-edge"
                loads[int(j)] += 1
        assert all(l <= cap for l, cap in zip(loads, caps)), "capacity violated"
    return {"instances": instances, "agreements": agreements, "all_agree": agreements == instances}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small sizes, quick pass (CI)")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_matching.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        round_sizes = dict(n=120, m=60, c=4, k=3, num_requests=300, cache_entries=150, seed=0)
        repeats, sim_rounds, mc_trials, xval = 3, 15, 6, 40
        # Warm starts only pay once the carried assignment is large
        # relative to the per-round churn: hundreds of boxes, not tens.
        sim_n, sim_m = 400, 240
        inc_rounds = 12
    else:
        round_sizes = dict(n=400, m=240, c=5, k=4, num_requests=1500, cache_entries=800, seed=0)
        repeats, sim_rounds, mc_trials, xval = 5, 15, 12, 120
        sim_n, sim_m = 2000, 1200
        inc_rounds = 30

    results: List[Dict[str, object]] = []
    print(f"[bench] mode={'smoke' if args.smoke else 'full'}")
    for fn in (
        lambda: bench_unit_matching_kernel(round_sizes, repeats),
        lambda: bench_per_round_matcher(round_sizes, repeats),
        lambda: bench_warm_start_rounds(sim_n, sim_m, 4, 3, sim_rounds, max(2, repeats - 2)),
        lambda: bench_incremental_matching(inc_rounds, max(2, repeats - 2)),
        lambda: bench_obstruction_estimator(48, mc_trials, max(2, repeats - 2)),
        lambda: bench_parallel_montecarlo(48, mc_trials, max(2, repeats - 2)),
    ):
        row = fn()
        results.append(row)
        print(
            f"[bench] {row['name']:<22} old={row['old_seconds'] * 1e3:9.2f}ms  "
            f"new={row['new_seconds'] * 1e3:9.2f}ms  speedup={row['speedup']:6.2f}x"
        )

    checks = cross_validate_kernels(xval, seed=1)
    print(
        f"[bench] cross-validation: {checks['agreements']}/{checks['instances']} "
        f"instances agree (HK vs Dinic)"
    )

    kernel_speedup = next(r for r in results if r["name"] == "unit_matching_kernel")["speedup"]
    target_met = kernel_speedup >= 5.0 and checks["all_agree"]
    artifact = {
        "benchmark": "matching_engine",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": os.cpu_count(),
        "results": results,
        "cross_validation": checks,
        "kernel_speedup": kernel_speedup,
        "target_speedup": 5.0,
        "target_met": bool(target_met),
    }
    output = os.path.abspath(args.output)
    # Preserve sections other benchmarks own (e.g. bench_session_overhead's
    # ``session_overhead``) instead of clobbering the shared artifact.
    if os.path.exists(output):
        try:
            with open(output) as handle:
                previous = json.load(handle)
        except (OSError, json.JSONDecodeError):
            previous = {}
        for key, value in previous.items():
            if key not in artifact:
                artifact[key] = value
    with open(output, "w") as handle:
        json.dump(artifact, handle, indent=2)
    print(f"[bench] kernel speedup {kernel_speedup:.2f}x (target 5x) -> {output}")
    return 0 if target_met else 1


if __name__ == "__main__":
    raise SystemExit(main())
