"""E2 — the negative result: u < 1 forces a constant catalog.

For a sweep of normalized uploads straddling the threshold, the
missing-video adversary attacks a random allocation whose catalog uses the
full storage budget d·n/k.  Below u = 1 the attack provably exceeds the
aggregate upload (and the simulated run hits an infeasible round); above
the threshold the same attack is absorbed.  The timed kernel is one
adversarial simulation below the threshold.
"""

import pytest

from repro.analysis.report import print_table
from repro.core.negative import build_negative_witness, catalog_upper_bound_below_threshold
from repro.sim.engine import VodSimulator
from repro.workloads.adversarial import MissingVideoAdversary

from conftest import build_homogeneous_system

N, D, C, K, MU = 48, 2.5, 4, 3, 1.5
U_VALUES = (0.5, 0.7, 0.9, 1.2, 1.5, 2.0)


def run_adversarial(u: float, seed: int = 0):
    population, catalog, allocation = build_homogeneous_system(
        n=N, u=u, d=D, m=int(D * N // K), c=C, k=K, seed=seed
    )
    witness = build_negative_witness(allocation)
    simulator = VodSimulator(allocation, mu=MU, stop_on_infeasible=True)
    adversary = MissingVideoAdversary(
        respect_growth=(u > 1.0), mu=MU, max_demands_per_round=N // 4, random_state=seed
    )
    result = simulator.run(adversary, num_rounds=8)
    return {
        "u": u,
        "catalog": allocation.catalog_size,
        "catalog_cap_below_threshold": catalog_upper_bound_below_threshold(D, 1.0 / C),
        "aggregate_upload": witness.aggregate_upload,
        "attackable_boxes": witness.attackable_boxes,
        "analytic_infeasible": witness.infeasible,
        "simulated_feasible": result.feasible,
        "infeasible_rounds": result.metrics.infeasible_rounds,
    }


def test_negative_threshold_sweep(benchmark, experiment_header):
    rows = [run_adversarial(u) for u in U_VALUES]
    benchmark.pedantic(run_adversarial, args=(0.7,), rounds=1, iterations=1)
    print_table(rows, title="E2 — missing-video adversary across the u = 1 threshold")
    for row in rows:
        if row["u"] < 1.0:
            # Below the threshold the witness is analytic and the simulation
            # confirms it: the full-storage catalog cannot be defended.
            assert row["analytic_infeasible"]
            assert not row["simulated_feasible"]
        else:
            assert not row["analytic_infeasible"]
    # Above the threshold the same (growth-respecting) attack is absorbed.
    assert all(row["simulated_feasible"] for row in rows if row["u"] >= 1.5)
