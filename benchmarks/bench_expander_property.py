"""E7 — the expander property of the allocation graph.

The proof of Theorem 1 shows that the bipartite graph linking stripes to
the boxes storing them is (w.h.p.) a good expander.  This experiment
measures it directly on random permutation allocations: for random sets of
X distinct stripes, the neighbourhood B(X) (union of their holders) must
be large — the homogeneous Lemma 1 condition is |B(X)| ≥ |X|/(u·c).  The
table reports the worst expansion ratio found by sampling and the fraction
of sampled sets that violate the Lemma 1 threshold, per replication k.
"""

import numpy as np
import pytest

from repro.analysis.report import print_table
from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog

N, U, D, C, MU = 60, 1.5, 3.0, 5, 1.2
SET_SIZES = (5, 15, 40)
SAMPLES = 200


def expansion_statistics(k: int, seed: int = 0):
    catalog = Catalog(num_videos=int(D * N // k), num_stripes=C, duration=30)
    population = homogeneous_population(N, u=U, d=D)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    rng = np.random.default_rng(seed)
    threshold = 1.0 / (U * C)  # |B(X)| / |X| must stay above this (Lemma 1).
    worst = np.inf
    violations = 0
    total = 0
    for size in SET_SIZES:
        size = min(size, catalog.total_stripes)
        for _ in range(SAMPLES):
            stripes = rng.choice(catalog.total_stripes, size=size, replace=False)
            holders = np.unique(allocation.replica_box.reshape(-1, k)[stripes].ravel())
            ratio = holders.size / size
            worst = min(worst, ratio)
            violations += ratio < threshold
            total += 1
    return {
        "k": k,
        "catalog": catalog.num_videos,
        "sampled_sets": total,
        "worst_expansion |B(X)|/|X|": round(float(worst), 3),
        "lemma1_threshold 1/(u*c)": round(threshold, 3),
        "violating_sets": violations,
    }


def test_expander_property_vs_k(benchmark, experiment_header):
    rows = [expansion_statistics(k) for k in (1, 2, 4, 8)]
    benchmark.pedantic(expansion_statistics, args=(4,), rounds=1, iterations=1)
    print_table(
        rows,
        title=f"E7 — expansion of the stripe→box allocation graph (n={N}, u={U}, d={D}, c={C})",
    )
    # Higher replication → better worst-case expansion.
    worst = [row["worst_expansion |B(X)|/|X|"] for row in rows]
    assert worst == sorted(worst)
    # With k ≥ 2 no sampled set violates the Lemma 1 threshold.
    for row in rows:
        if row["k"] >= 2:
            assert row["violating_sets"] == 0


def test_distinct_coverage_distribution(benchmark, experiment_header):
    """Distribution of the number of distinct holders per stripe (k = 4)."""

    def kernel():
        catalog = Catalog(num_videos=int(D * N // 4), num_stripes=C, duration=30)
        population = homogeneous_population(N, u=U, d=D)
        allocation = random_permutation_allocation(catalog, population, 4, random_state=11)
        return allocation.distinct_coverage()

    coverage = benchmark(kernel)
    values, counts = np.unique(coverage, return_counts=True)
    print_table(
        [{"distinct_holders": int(v), "stripes": int(c)} for v, c in zip(values, counts)],
        title="E7 — distinct holders per stripe under permutation allocation (k=4)",
    )
    assert coverage.min() >= 2
