"""E3 — Lemma 1: connection matching as a maximum-flow problem.

Verifies on random instances that the flow-based matcher agrees with the
exhaustive generalized-Hall oracle (the literal statement of Lemma 1), and
times the three max-flow solvers on the bipartite networks produced by a
realistic round of the simulator.
"""

import numpy as np
import pytest

from repro.analysis.report import print_table
from repro.core.matching import (
    ConnectionMatcher,
    PossessionIndex,
    RequestSet,
    StripeRequest,
    check_feasibility_hall,
)
from repro.flow import MAX_FLOW_SOLVERS
from repro.flow.network import build_bipartite_network

from conftest import build_homogeneous_system


def make_round_instance(num_requests=200, seed=0):
    population, catalog, allocation = build_homogeneous_system(
        n=120, u=2.0, d=4.0, m=60, c=5, k=4, seed=seed
    )
    rng = np.random.default_rng(seed)
    requests = RequestSet(
        StripeRequest(
            stripe_id=int(rng.integers(catalog.total_stripes)),
            request_time=int(rng.integers(3)),
            box_id=int(rng.integers(population.n)),
        )
        for _ in range(num_requests)
    )
    index = PossessionIndex(allocation, cache_window=catalog.duration)
    matcher = ConnectionMatcher(population.upload_slots(5))
    return population, catalog, allocation, requests, index, matcher


def test_lemma1_flow_equals_hall_oracle(benchmark, experiment_header):
    """Flow feasibility ⇔ the Hall condition of Lemma 1 (small instances)."""
    population, catalog, allocation = build_homogeneous_system(
        n=10, u=1.0, d=2.0, m=5, c=2, k=2, seed=3
    )
    index = PossessionIndex(allocation, cache_window=catalog.duration)
    matcher = ConnectionMatcher(population.upload_slots(2))
    rng = np.random.default_rng(3)
    agreements = 0
    rows = []
    for trial in range(20):
        requests = RequestSet(
            StripeRequest(
                stripe_id=int(rng.integers(catalog.total_stripes)),
                request_time=0,
                box_id=int(rng.integers(population.n)),
            )
            for _ in range(int(rng.integers(1, 8)))
        )
        flow_feasible = matcher.match(requests, index, current_time=0).feasible
        hall_feasible, _ = check_feasibility_hall(
            requests, index, population.uploads, 2, current_time=0
        )
        agreements += flow_feasible == hall_feasible
        rows.append(
            {"trial": trial, "requests": len(requests), "flow": flow_feasible, "hall": hall_feasible}
        )
    print_table(rows[:8], title="E3 — Lemma 1: flow matcher vs exhaustive Hall oracle (first 8 trials)")
    assert agreements == 20

    def kernel():
        requests = RequestSet(
            StripeRequest(
                stripe_id=int(rng.integers(catalog.total_stripes)),
                request_time=0,
                box_id=int(rng.integers(population.n)),
            )
            for _ in range(6)
        )
        return matcher.match(requests, index, current_time=0).feasible

    benchmark(kernel)


@pytest.mark.parametrize("solver_name", sorted(MAX_FLOW_SOLVERS))
def test_maxflow_solver_on_matching_network(benchmark, solver_name, experiment_header):
    """Time each solver on the bipartite network of one simulated round."""
    population, catalog, allocation, requests, index, matcher = make_round_instance()
    # Build the bipartite instance once (as the matcher does internally).
    edges = []
    for idx, request in enumerate(requests):
        for box in index.servers_for(request, current_time=3):
            if box != request.box_id:
                edges.append((idx, int(box)))
    caps = population.upload_slots(5).tolist()
    solver = MAX_FLOW_SOLVERS[solver_name]

    def kernel():
        network, source, sink = build_bipartite_network(
            num_left=len(requests),
            num_right=population.n,
            edges=edges,
            left_capacities=[1] * len(requests),
            right_capacities=caps,
        )
        return solver(network, source, sink)

    value = benchmark(kernel)
    print_table(
        [
            {
                "solver": solver_name,
                "requests": len(requests),
                "edges": len(edges),
                "max_flow": value,
                "all_served": value == len(requests),
            }
        ],
        title="E3 — max-flow value on one round's connection network",
    )
    assert value == len(requests)
