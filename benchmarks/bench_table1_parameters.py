"""E1 — Table 1: the parameter model and its consistency relations.

Regenerates the paper's Table 1 as a populated parameter vector for a grid
of systems and checks the defining relations (k ≈ d·n/m, ℓ = 1/c,
u' = ⌊u·c⌋/c).  The timed kernel is the construction and validation of the
full parameter grid.
"""

import pytest

from repro.analysis.report import print_table
from repro.analysis.sweep import cartesian_grid
from repro.core.parameters import SystemParameters, homogeneous_population


GRID = cartesian_grid(
    n=[100, 1_000, 10_000],
    u=[1.2, 2.0],
    d=[2.0, 8.0],
    c=[4, 16],
)


def build_grid():
    rows = []
    for point in GRID:
        params = SystemParameters(mu=1.5, k=4, **point)
        row = params.describe()
        row["u_prime"] = params.effective_upload
        rows.append(row)
    return rows


def test_table1_parameter_grid(benchmark, experiment_header):
    rows = benchmark(build_grid)
    print_table(
        rows,
        columns=["n", "m", "d", "k", "u", "c", "mu", "ell", "T", "u_prime"],
        title="E1 / Table 1 — parameter vectors (k = 4 replicas per stripe)",
    )
    for row in rows:
        # Defining relations of Table 1.
        assert row["ell"] == pytest.approx(1.0 / row["c"])
        assert row["m"] * row["k"] <= row["d"] * row["n"] + 1e-9
        assert row["u_prime"] <= row["u"] + 1e-9


def test_population_aggregates(benchmark, experiment_header):
    def kernel():
        population = homogeneous_population(50_000, u=1.5, d=4.0)
        return {
            "n": population.n,
            "u": population.average_upload,
            "d": population.average_storage,
            "deficit_at_1": population.upload_deficit(1.0),
            "homogeneous": population.is_homogeneous(),
        }

    summary = benchmark(kernel)
    print_table([summary], title="E1 — population aggregates at n = 50,000")
    assert summary["homogeneous"]
    assert summary["deficit_at_1"] == 0.0
