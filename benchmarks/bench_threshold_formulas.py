"""E5 — Theorem 1 constants: c(u, µ), k(u, d, µ) and the catalog guarantee.

Regenerates the analytic design tables: the stripe-count and replication
prescriptions, the ν margin and the catalog lower bound, swept over the
upload capacity u, the swarm growth µ and the storage d.  The sweeps are
the registered ``threshold_formulas`` and ``catalog_scaling`` campaigns
of :mod:`repro.orchestrate` — this module is a thin wrapper that executes
the same cells in-process, prints the tables and times the design sweep.
"""

import numpy as np
import pytest

from repro.analysis.bounds import replication_vs_upload
from repro.analysis.report import print_table
from repro.orchestrate import execute_campaign_rows, get_campaign


def sweep_designs():
    return execute_campaign_rows(get_campaign("threshold_formulas"))


def test_design_table_vs_upload(benchmark, experiment_header):
    rows = benchmark(sweep_designs)
    print_table(
        rows,
        columns=["u", "c", "k", "nu", "u_prime", "d_prime", "catalog_size", "asymptotic_bound"],
        title="E5 — Theorem 1 design vs upload capacity (n=10,000, d=4, mu=1.3)",
    )
    ks = [row["k"] for row in rows]
    assert ks == sorted(ks, reverse=True)
    catalogs = [row["catalog_size"] for row in rows]
    assert catalogs == sorted(catalogs)


def test_replication_blowup_near_threshold(benchmark, experiment_header):
    data = benchmark(
        replication_vs_upload, [1.05, 1.1, 1.2, 1.5, 2.0, 3.0], 4.0, 1.3
    )
    rows = [
        {"u": float(u), "c": int(c), "k": int(k), "nu": float(nu)}
        for u, c, k, nu in zip(data["u"], data["c"], data["k"], data["nu"])
    ]
    print_table(rows, title="E5 — replication requirement blows up as u → 1")
    assert rows[0]["k"] > 50 * rows[-1]["k"]


def test_catalog_linear_in_n(benchmark, experiment_header):
    rows = benchmark(
        execute_campaign_rows, get_campaign("catalog_scaling")
    )
    print_table(rows, title="E5 — catalog guarantee grows linearly with n (u=2, d=4, mu=1.3)")
    per_box = np.asarray([row["catalog_per_box"] for row in rows], dtype=float)
    ns = np.asarray([row["n"] for row in rows], dtype=float)
    ks = np.asarray([row["k"] for row in rows], dtype=float)
    assert np.all(np.abs(per_box - per_box[-1]) <= 0.01 + ks / ns)
