"""E5 — Theorem 1 constants: c(u, µ), k(u, d, µ) and the catalog guarantee.

Regenerates the analytic design tables: the stripe-count and replication
prescriptions, the ν margin and the catalog lower bound, swept over the
upload capacity u, the swarm growth µ and the storage d.  The timed kernel
is the full design sweep.
"""

import numpy as np
import pytest

from repro.analysis.bounds import (
    catalog_bound_vs_n,
    replication_vs_upload,
    threshold_design_table,
)
from repro.analysis.report import print_table


def sweep_designs():
    return threshold_design_table(
        n=10_000,
        d=4.0,
        mu=1.3,
        u_values=[1.1, 1.2, 1.5, 2.0, 3.0, 5.0],
    )


def test_design_table_vs_upload(benchmark, experiment_header):
    rows = benchmark(sweep_designs)
    print_table(
        rows,
        columns=["u", "c", "k", "nu", "u_prime", "d_prime", "catalog_size", "asymptotic_bound"],
        title="E5 — Theorem 1 design vs upload capacity (n=10,000, d=4, mu=1.3)",
    )
    ks = [row["k"] for row in rows]
    assert ks == sorted(ks, reverse=True)
    catalogs = [row["catalog_size"] for row in rows]
    assert catalogs == sorted(catalogs)


def test_replication_blowup_near_threshold(benchmark, experiment_header):
    data = benchmark(
        replication_vs_upload, [1.05, 1.1, 1.2, 1.5, 2.0, 3.0], 4.0, 1.3
    )
    rows = [
        {"u": float(u), "c": int(c), "k": int(k), "nu": float(nu)}
        for u, c, k, nu in zip(data["u"], data["c"], data["k"], data["nu"])
    ]
    print_table(rows, title="E5 — replication requirement blows up as u → 1")
    assert rows[0]["k"] > 50 * rows[-1]["k"]


def test_catalog_linear_in_n(benchmark, experiment_header):
    data = benchmark(
        catalog_bound_vs_n, [1_000, 5_000, 20_000, 100_000], 2.0, 4.0, 1.3
    )
    rows = [
        {
            "n": int(n),
            "k": int(k),
            "catalog": int(m),
            "catalog_per_box": float(per),
        }
        for n, k, m, per in zip(data["n"], data["k"], data["catalog"], data["catalog_per_box"])
    ]
    print_table(rows, title="E5 — catalog guarantee grows linearly with n (u=2, d=4, mu=1.3)")
    per_box = data["catalog_per_box"]
    assert np.all(np.abs(per_box - per_box[-1]) <= 0.01 + 1.0 / np.asarray(data["n"], dtype=float) * np.asarray(data["k"], dtype=float))
