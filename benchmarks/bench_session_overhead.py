#!/usr/bin/env python
"""Stepwise-session overhead benchmark; merges into ``BENCH_matching.json``.

The session layer promises to be a *free* abstraction: driving rounds one
at a time through :class:`repro.api.VodSession` (with its admission
bookkeeping and per-round :class:`RoundReport` construction) must add
less than 5% per-round overhead over the batch ``VodSimulator.run`` loop,
and must produce bit-identical per-round metrics.

The script times best-of-``--repeats`` wall clock of both execution
styles on freshly built, identically seeded systems, verifies metric
parity, asserts the <5% overhead target and merges a
``session_overhead`` section into ``BENCH_matching.json``.  Exit code 1
when the target is missed or parity breaks.

Run ``python benchmarks/bench_session_overhead.py --smoke`` for the quick
CI pass, without arguments for the full sizes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np

from repro.api import VodSystem, create_component

#: The <5% per-round overhead acceptance target.
OVERHEAD_TARGET = 0.05


def build(n: int, m: int, arrival: float, rounds: int, seed: int):
    """A medium homogeneous system + workload, identically seeded per call."""
    system = VodSystem.configure(
        catalog={"num_videos": m, "num_stripes": 4, "duration": 30},
        population=("homogeneous", {"n": n, "u": 2.0, "d": 3.0}),
        mu=1.5,
    )
    system.allocate("permutation", replicas_per_stripe=4, seed=seed)
    workload = create_component(
        "workload",
        "zipf",
        {"arrival_rate": arrival},
        0,
        system.mu,
        np.random.default_rng(seed),
    )
    return system, workload


def sample_batch(n, m, arrival, rounds, seed):
    system, workload = build(n, m, arrival, rounds, seed)
    engine = system.build_simulator()
    start = time.perf_counter()
    result = engine.run(workload, rounds)
    elapsed = time.perf_counter() - start
    return elapsed, [stats.to_dict() for stats in result.metrics.round_stats]


def sample_session(n, m, arrival, rounds, seed):
    system, workload = build(n, m, arrival, rounds, seed)
    session = system.open_session(workload=workload, horizon=rounds)
    start = time.perf_counter()
    for _ in range(rounds):
        session.step()
    elapsed = time.perf_counter() - start
    records = [r.to_round_stats().to_dict() for r in session.reports]
    return elapsed, records


def time_both(n, m, arrival, rounds, seed, repeats):
    """Interleaved batch/session sample pairs.

    Interleaving matters: machine-state drift (frequency scaling, page
    cache) otherwise biases whichever style is measured second.  The
    overhead estimate is the *minimum over paired ratios* — scheduler
    noise only ever inflates a sample, so the cleanest pair bounds the
    inherent overhead from above.
    """
    pairs = []
    batch_records = session_records = None
    for _ in range(repeats):
        batch_elapsed, batch_records = sample_batch(n, m, arrival, rounds, seed)
        session_elapsed, session_records = sample_session(n, m, arrival, rounds, seed)
        pairs.append((batch_elapsed, session_elapsed))
    return pairs, batch_records, session_records


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small CI sizes")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_matching.json"
        ),
    )
    args = parser.parse_args()

    if args.smoke:
        n, m, arrival, rounds = 60, 24, 4.0, 20
    else:
        n, m, arrival, rounds = 160, 48, 8.0, 60
    seed = 42

    # Warm-up (imports, allocator caches) outside the timed region.
    sample_batch(n, m, arrival, 3, seed)
    sample_session(n, m, arrival, 3, seed)

    pairs, batch_records, session_records = time_both(
        n, m, arrival, rounds, seed, args.repeats
    )

    parity = session_records == batch_records
    batch_best = min(b for b, _ in pairs)
    session_best = min(s for _, s in pairs)
    overhead = min(s / b for b, s in pairs) - 1.0

    print(f"rounds                 : {rounds} (n={n}, m={m}, arrival={arrival})")
    print(f"batch run() best       : {batch_best * 1e3:8.2f} ms "
          f"({batch_best / rounds * 1e6:7.1f} us/round)")
    print(f"session step() best    : {session_best * 1e3:8.2f} ms "
          f"({session_best / rounds * 1e6:7.1f} us/round)")
    print(f"pair ratios            : "
          + ", ".join(f"{s / b - 1.0:+.2%}" for b, s in pairs))
    print(f"per-round overhead     : {overhead * 100:+.2f}%  (min pair ratio; "
          f"target < {OVERHEAD_TARGET * 100:.0f}%)")
    print(f"metric parity          : {'OK' if parity else 'DIVERGED'}")

    section = {
        "n": n,
        "m": m,
        "rounds": rounds,
        "arrival_rate": arrival,
        "repeats": args.repeats,
        "batch_seconds": batch_best,
        "session_seconds": session_best,
        "overhead_fraction": overhead,
        "overhead_target": OVERHEAD_TARGET,
        "metric_parity": parity,
        "target_met": parity and overhead < OVERHEAD_TARGET,
    }
    output = os.path.abspath(args.output)
    artifact = {}
    if os.path.exists(output):
        try:
            with open(output) as handle:
                artifact = json.load(handle)
        except (OSError, json.JSONDecodeError):
            artifact = {}
    artifact["session_overhead"] = section
    with open(output, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"merged session_overhead into {output}")

    if not parity:
        print("FAIL: session rounds diverged from batch rounds", file=sys.stderr)
        return 1
    if overhead >= OVERHEAD_TARGET:
        print(
            f"FAIL: session overhead {overhead * 100:.2f}% exceeds the "
            f"{OVERHEAD_TARGET * 100:.0f}% target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
