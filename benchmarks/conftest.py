"""Shared helpers for the benchmark/experiment harness.

Every benchmark module reproduces one experiment of EXPERIMENTS.md: it
prints the experiment's table (the "rows the paper reports") and times the
dominant computational kernel with pytest-benchmark.  The helpers here keep
the modules short and the instance sizes laptop-friendly.
"""

from __future__ import annotations

import pytest

from repro.core.allocation import random_permutation_allocation
from repro.core.parameters import homogeneous_population
from repro.core.video import Catalog


def build_homogeneous_system(n=48, u=2.0, d=2.5, m=24, c=4, k=3, duration=30, seed=0):
    """A homogeneous system + random permutation allocation used by several benches."""
    population = homogeneous_population(n, u=u, d=d)
    catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
    allocation = random_permutation_allocation(catalog, population, k, random_state=seed)
    return population, catalog, allocation


@pytest.fixture(scope="session")
def experiment_header():
    """Print a one-line reminder of how to read the benchmark output."""
    print(
        "\n[repro] Each benchmark prints the table of its experiment "
        "(see EXPERIMENTS.md) before timing its kernel.\n"
    )
    return True
