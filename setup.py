"""Setuptools entry point (metadata lives in setup.cfg)."""

from setuptools import setup

setup()
