"""Demand-generator interface.

A *workload* decides, round by round, which free boxes demand which
videos.  Generators receive a :class:`SystemView` — a read-only snapshot
of the running system (allocation, swarm sizes, which boxes are free) — so
that adaptive adversaries can base their choices on the current state, as
the paper's worst-case quantification over "any sequence of demands"
allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.allocation import Allocation
from repro.core.parameters import BoxPopulation
from repro.core.preloading import Demand
from repro.core.video import Catalog
from repro.sim.swarm import SwarmRegistry

__all__ = ["SystemView", "DemandGenerator", "StaticDemandSchedule"]


@dataclass(frozen=True)
class SystemView:
    """Read-only snapshot handed to demand generators each round.

    Attributes
    ----------
    time:
        The current round.
    catalog:
        The video catalog.
    allocation:
        The static allocation (adversaries may inspect it).
    population:
        The box population.
    swarms:
        The swarm registry (current swarm sizes, per video).
    free_boxes:
        Identifiers of boxes not currently playing a video — only these
        may issue a new demand this round.
    """

    time: int
    catalog: Catalog
    allocation: Allocation
    population: BoxPopulation
    swarms: SwarmRegistry
    free_boxes: np.ndarray


@runtime_checkable
class DemandGenerator(Protocol):
    """Protocol for demand generators."""

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Return the demands arriving in ``[view.time − 1, view.time[``.

        Implementations must only use boxes from ``view.free_boxes`` and
        should respect the swarm-growth bound they claim to model (the
        engine records violations either way).
        """
        ...  # pragma: no cover


class StaticDemandSchedule:
    """A fixed, precomputed demand schedule (useful in tests and replays)."""

    def __init__(self, demands: Sequence[Demand]):
        self._by_round: dict[int, List[Demand]] = {}
        for demand in demands:
            self._by_round.setdefault(demand.time, []).append(demand)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Return the scheduled demands whose time equals ``view.time``."""
        free = set(int(b) for b in view.free_boxes)
        return [d for d in self._by_round.get(view.time, []) if d.box_id in free]

    @property
    def total_demands(self) -> int:
        """Total number of scheduled demands (regardless of box availability)."""
        return sum(len(v) for v in self._by_round.values())
