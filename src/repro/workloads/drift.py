"""Popularity drift and flash-rotation demand models.

Real VoD popularity is not stationary: the Zipf *shape* of the
rank-frequency curve persists while the *identity* of the hot videos
drifts over days (new releases) and rotates over hours (front-page
promotion).  Two demand generators model those regimes on top of the
Poisson-arrival machinery of :mod:`repro.workloads.popularity`:

* :class:`DriftingZipfWorkload` — truncated-Zipf popularity whose
  video-to-rank assignment is reshuffled every ``drift_period`` rounds.
  Each epoch's weights are a *permutation* of the stationary Zipf
  weights, so the total demand mass and the rank-frequency shape are
  invariant; only which videos are hot changes.
* :class:`FlashRotationWorkload` — a rotating promoted hot set: a
  contiguous window of ``hot_videos`` catalog entries receives a
  ``boost``-fold popularity multiplier, and the window advances by its
  own width every ``rotation_period`` rounds (wrapping around the
  catalog), like a front page cycling its highlights.

Both generators draw all randomness from the single generator they are
constructed with — in scenarios that is a per-phase child stream of the
master seed — and advance it in the same call sequence on the array and
object paths, so replays are bit-identical either way.  The epoch
schedule is a pure function of the queried round, and epoch transitions
consume randomness in epoch order, so a run over rounds ``[0, T)`` is a
prefix of a run over ``[0, T')`` for ``T' > T`` (append-stable).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.preloading import Demand
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_non_negative_integer, check_positive, check_positive_integer
from repro.workloads.base import SystemView
from repro.workloads.popularity import check_zipf_exponent, zipf_weights

__all__ = ["DriftingZipfWorkload", "FlashRotationWorkload"]

_EMPTY = np.empty(0, dtype=np.int64)


def _materialize(time: int, boxes: np.ndarray, videos: np.ndarray) -> List[Demand]:
    return [
        Demand(time=time, box_id=b, video_id=v)
        for b, v in zip(boxes.tolist(), videos.tolist())
    ]


class DriftingZipfWorkload:
    """Poisson arrivals over a Zipf law whose ranks drift on a schedule.

    Parameters
    ----------
    arrival_rate:
        Expected number of new demands per round (Poisson distributed),
        truncated to the number of currently free boxes.
    exponent:
        Zipf exponent ``alpha`` of the per-epoch popularity law.
    drift_period:
        Number of rounds an epoch lasts.  Epoch 0 (rounds
        ``[start, start + drift_period)``) uses the identity ranking —
        video 0 is the hottest — and every later epoch draws a fresh
        uniform permutation of the video-to-rank assignment.
    start_time:
        First round at which demands may arrive.
    """

    def __init__(
        self,
        arrival_rate: float,
        exponent: float = 0.8,
        drift_period: int = 8,
        start_time: int = 0,
        random_state: RandomState = None,
    ):
        self._rate = check_positive(arrival_rate, "arrival_rate")
        self._exponent = check_zipf_exponent(exponent)
        self._period = check_positive_integer(drift_period, "drift_period")
        self._start = check_non_negative_integer(start_time, "start_time")
        self._rng = as_generator(random_state)
        self._base: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._epoch = -1

    def _epoch_of(self, time: int) -> int:
        return (time - self._start) // self._period

    def _refresh_weights(self, num_videos: int, time: int) -> None:
        """Advance the drift schedule up to the epoch covering ``time``.

        Permutations are drawn one per elapsed epoch (not one per query),
        so the random stream position depends only on the epoch reached —
        append-stable across horizons and identical on both demand paths.
        """
        if self._base is None or self._base.size != num_videos:
            self._base = zipf_weights(num_videos, self._exponent)
            self._weights = self._base
            self._epoch = 0
        epoch = self._epoch_of(time)
        while self._epoch < epoch:
            permutation = self._rng.permutation(num_videos)
            # Video permutation[r] takes rank r: a pure relabeling, so the
            # weight multiset (and its total mass) is exactly preserved.
            weights = np.empty_like(self._base)
            weights[permutation] = self._base
            self._weights = weights
            self._epoch += 1

    @property
    def current_weights(self) -> Optional[np.ndarray]:
        """The popularity weights of the epoch most recently queried."""
        return None if self._weights is None else self._weights.copy()

    def demand_arrays_for_round(
        self, view: SystemView
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-path :meth:`demands_for_round`: ``(box_ids, video_ids)``."""
        if view.time < self._start:
            return _EMPTY, _EMPTY
        self._refresh_weights(view.catalog.num_videos, view.time)
        count = int(self._rng.poisson(self._rate))
        free = np.asarray(view.free_boxes, dtype=np.int64)
        count = min(count, free.size)
        if count == 0:
            return _EMPTY, _EMPTY
        boxes = self._rng.choice(free, size=count, replace=False)
        videos = self._rng.choice(
            view.catalog.num_videos, size=count, replace=True, p=self._weights
        )
        return boxes.astype(np.int64, copy=False), videos.astype(np.int64, copy=False)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Draw Poisson(rate) arrivals over the current epoch's drifted law."""
        boxes, videos = self.demand_arrays_for_round(view)
        return _materialize(view.time, boxes, videos)


class FlashRotationWorkload:
    """Poisson arrivals with a rotating promoted hot set.

    Parameters
    ----------
    arrival_rate:
        Expected number of new demands per round (Poisson distributed),
        truncated to the number of currently free boxes.
    hot_videos:
        Size of the promoted window (must fit in the catalog).
    rotation_period:
        Rounds between rotations; each rotation advances the window by
        ``hot_videos`` entries, wrapping around the catalog.
    boost:
        Popularity multiplier of a promoted video relative to a cold one
        (must exceed 1, otherwise there is no hot set to speak of).
    start_time:
        First round at which demands may arrive.
    """

    def __init__(
        self,
        arrival_rate: float,
        hot_videos: int = 4,
        rotation_period: int = 6,
        boost: float = 8.0,
        start_time: int = 0,
        random_state: RandomState = None,
    ):
        self._rate = check_positive(arrival_rate, "arrival_rate")
        self._hot = check_positive_integer(hot_videos, "hot_videos")
        self._period = check_positive_integer(rotation_period, "rotation_period")
        self._boost = check_positive(boost, "boost")
        if self._boost <= 1.0:
            raise ValueError(
                f"boost must exceed 1 (got {boost!r}): at boost <= 1 the "
                "promoted window is no hotter than the rest of the catalog — "
                "use the 'uniform' workload if that is intended"
            )
        self._start = check_non_negative_integer(start_time, "start_time")
        self._rng = as_generator(random_state)

    def hot_set(self, time: int, num_videos: int) -> np.ndarray:
        """The promoted video ids at round ``time`` (deterministic)."""
        if self._hot > num_videos:
            raise ValueError(
                f"hot_videos ({self._hot}) exceeds the catalog size "
                f"({num_videos}); shrink the promoted window or grow the catalog"
            )
        rotation = max(0, time - self._start) // self._period
        offset = (rotation * self._hot) % num_videos
        return (offset + np.arange(self._hot)) % num_videos

    def _weights(self, time: int, num_videos: int) -> np.ndarray:
        weights = np.ones(num_videos, dtype=np.float64)
        weights[self.hot_set(time, num_videos)] = self._boost
        return weights / weights.sum()

    def demand_arrays_for_round(
        self, view: SystemView
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-path :meth:`demands_for_round`: ``(box_ids, video_ids)``."""
        if view.time < self._start:
            return _EMPTY, _EMPTY
        weights = self._weights(view.time, view.catalog.num_videos)
        count = int(self._rng.poisson(self._rate))
        free = np.asarray(view.free_boxes, dtype=np.int64)
        count = min(count, free.size)
        if count == 0:
            return _EMPTY, _EMPTY
        boxes = self._rng.choice(free, size=count, replace=False)
        videos = self._rng.choice(
            view.catalog.num_videos, size=count, replace=True, p=weights
        )
        return boxes.astype(np.int64, copy=False), videos.astype(np.int64, copy=False)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Draw Poisson(rate) arrivals biased toward the promoted window."""
        boxes, videos = self.demand_arrays_for_round(view)
        return _materialize(view.time, boxes, videos)
