"""Compact on-disk demand traces and the trace-replay generator.

Real-workload studies (and Icarus' ``TraceDrivenWorkload``) replay
recorded request logs instead of sampling a parametric law.  This module
defines a minimal binary trace format, a writer, a *streaming* reader —
traces are consumed in fixed-size chunks and are never fully resident in
RAM — and :class:`TraceDemandWorkload`, which replays a trace through the
same :class:`~repro.workloads.base.DemandGenerator` protocol as the
synthetic generators.

Format (little-endian, version 1)::

    offset  size  field
    0       4     magic  b"RPTR"
    4       2     format version (1)
    6       2     reserved (0)
    8       4     num_videos  (u32; every event's video id is < this)
    12      8     num_events  (u64)
    20      8*n   events: (time u32, video u32) pairs, sorted by time

The trace pins *what* is requested and *when*; *which* box issues each
request is drawn from the generator's random stream (a per-phase child of
the scenario master seed), so trace replays stay inside the golden-digest
discipline.

A small fixture trace ships with the package under
``repro/workloads/data/`` so the ``trace_replay`` scenario works from a
clean checkout; :func:`resolve_trace_path` accepts either a bundled trace
name or a filesystem path.
"""

from __future__ import annotations

import os
import struct
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.preloading import Demand
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_non_negative_integer, check_positive_integer
from repro.workloads.base import SystemView

__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "TraceHeader",
    "bundled_trace_names",
    "resolve_trace_path",
    "write_trace",
    "read_trace_header",
    "iter_trace",
    "load_trace",
    "TraceDemandWorkload",
]

TRACE_MAGIC = b"RPTR"
TRACE_VERSION = 1
_HEADER = struct.Struct("<4sHHIQ")
_EVENT_DTYPE = np.dtype([("time", "<u4"), ("video", "<u4")])

#: Events decoded per read when streaming; bounds resident memory at
#: ``CHUNK_EVENTS * 8`` bytes regardless of trace length.
CHUNK_EVENTS = 4096

_DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


class TraceHeader:
    """Decoded trace-file header."""

    __slots__ = ("num_videos", "num_events")

    def __init__(self, num_videos: int, num_events: int):
        self.num_videos = num_videos
        self.num_events = num_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceHeader(num_videos={self.num_videos}, num_events={self.num_events})"


def bundled_trace_names() -> List[str]:
    """Names of the traces shipped inside the package (sorted)."""
    if not os.path.isdir(_DATA_DIR):
        return []
    return sorted(
        name[: -len(".trace")]
        for name in os.listdir(_DATA_DIR)
        if name.endswith(".trace")
    )


def resolve_trace_path(trace: str) -> str:
    """Resolve a trace reference to a file path.

    ``trace`` may be a filesystem path or the name of a bundled trace
    (a file ``<name>.trace`` under ``repro/workloads/data/``).
    """
    if os.path.isfile(trace):
        return trace
    bundled = os.path.join(_DATA_DIR, f"{trace}.trace")
    if os.path.isfile(bundled):
        return bundled
    names = ", ".join(bundled_trace_names()) or "<none>"
    raise FileNotFoundError(
        f"trace {trace!r} is neither an existing file nor a bundled trace "
        f"name; bundled traces: {names}"
    )


def write_trace(
    path: str, events: Iterable[Tuple[int, int]], num_videos: int
) -> int:
    """Write ``(time, video)`` events to ``path``; returns the event count.

    Events must be sorted by time (ties allowed) and every video id must
    lie in ``[0, num_videos)`` — violations raise ``ValueError`` naming
    the offending event index so a bad trace never reaches disk silently.
    """
    num_videos = check_positive_integer(num_videos, "num_videos")
    rows: List[Tuple[int, int]] = []
    last_time = -1
    for index, (time, video) in enumerate(events):
        time = int(time)
        video = int(video)
        if time < last_time:
            raise ValueError(
                f"trace events must be sorted by time: event {index} has "
                f"time {time} after time {last_time}"
            )
        if time < 0 or time > 0xFFFFFFFF:
            raise ValueError(f"event {index} time {time} does not fit in u32")
        if not 0 <= video < num_videos:
            raise ValueError(
                f"event {index} video id {video} is outside [0, {num_videos})"
            )
        last_time = time
        rows.append((time, video))
    data = np.array(rows, dtype=_EVENT_DTYPE)
    with open(path, "wb") as handle:
        handle.write(
            _HEADER.pack(TRACE_MAGIC, TRACE_VERSION, 0, num_videos, len(rows))
        )
        handle.write(data.tobytes())
    return len(rows)


def read_trace_header(path: str) -> TraceHeader:
    """Read and validate the header of a trace file."""
    with open(path, "rb") as handle:
        raw = handle.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise ValueError(f"trace file {path!r} is truncated (no full header)")
    magic, version, _reserved, num_videos, num_events = _HEADER.unpack(raw)
    if magic != TRACE_MAGIC:
        raise ValueError(
            f"trace file {path!r} has bad magic {magic!r} (expected "
            f"{TRACE_MAGIC!r}); is this really a repro trace?"
        )
    if version != TRACE_VERSION:
        raise ValueError(
            f"trace file {path!r} is format version {version}, but this "
            f"reader supports only version {TRACE_VERSION}"
        )
    return TraceHeader(num_videos=int(num_videos), num_events=int(num_events))


def iter_trace(path: str) -> Iterator[Tuple[int, int]]:
    """Stream ``(time, video)`` events from ``path`` in bounded memory.

    Reads ``CHUNK_EVENTS`` events per I/O call; a multi-gigabyte trace
    replays with the same footprint as the bundled fixture.
    """
    header = read_trace_header(path)
    remaining = header.num_events
    with open(path, "rb") as handle:
        handle.seek(_HEADER.size)
        while remaining > 0:
            batch = min(remaining, CHUNK_EVENTS)
            raw = handle.read(batch * _EVENT_DTYPE.itemsize)
            if len(raw) < batch * _EVENT_DTYPE.itemsize:
                raise ValueError(
                    f"trace file {path!r} is truncated: header promises "
                    f"{header.num_events} events but the data ends early"
                )
            chunk = np.frombuffer(raw, dtype=_EVENT_DTYPE)
            for time, video in zip(chunk["time"].tolist(), chunk["video"].tolist()):
                yield time, video
            remaining -= batch


def load_trace(path: str) -> Tuple[TraceHeader, List[Tuple[int, int]]]:
    """In-memory reference reader (tests compare it against :func:`iter_trace`)."""
    header = read_trace_header(path)
    return header, list(iter_trace(path))


class TraceDemandWorkload:
    """Replay a recorded trace as the demand process.

    Each round, every trace event with timestamp up to the current round
    (and not yet delivered) becomes one demand; the requesting boxes are
    drawn without replacement from the currently free boxes.  When fewer
    boxes are free than events are due, the surplus events are dropped
    (the trace is demand pressure, not a guarantee), mirroring the
    truncation rule of the Poisson generators.

    Parameters
    ----------
    trace:
        Bundled trace name or path (see :func:`resolve_trace_path`).
    start_time:
        Offset added to every trace timestamp, shifting the replay.
    """

    def __init__(
        self,
        trace: str,
        start_time: int = 0,
        random_state: RandomState = None,
    ):
        self._path = resolve_trace_path(trace)
        self._start = check_non_negative_integer(start_time, "start_time")
        self._rng = as_generator(random_state)
        self._header = read_trace_header(self._path)
        self._events = iter_trace(self._path)
        self._pending: Tuple[int, int] | None = None
        self._exhausted = self._header.num_events == 0

    @property
    def header(self) -> TraceHeader:
        return self._header

    def _due_videos(self, time: int) -> List[int]:
        """Trace video ids with (shifted) timestamp <= ``time``, in order."""
        due: List[int] = []
        while True:
            if self._pending is None:
                if self._exhausted:
                    break
                try:
                    self._pending = next(self._events)
                except StopIteration:
                    self._exhausted = True
                    break
            event_time, video = self._pending
            if event_time + self._start > time:
                break
            due.append(video)
            self._pending = None
        return due

    def demand_arrays_for_round(
        self, view: SystemView
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-path :meth:`demands_for_round`: ``(box_ids, video_ids)``."""
        if self._header.num_videos > view.catalog.num_videos:
            raise ValueError(
                f"trace {self._path!r} was recorded over "
                f"{self._header.num_videos} videos but the catalog holds only "
                f"{view.catalog.num_videos}; replay it against a catalog of at "
                f"least {self._header.num_videos} videos"
            )
        due = self._due_videos(view.time)
        free = np.asarray(view.free_boxes, dtype=np.int64)
        count = min(len(due), free.size)
        if count == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        boxes = self._rng.choice(free, size=count, replace=False)
        videos = np.asarray(due[:count], dtype=np.int64)
        return boxes.astype(np.int64, copy=False), videos

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Replay this round's due trace events as demands."""
        boxes, videos = self.demand_arrays_for_round(view)
        return [
            Demand(time=view.time, box_id=b, video_id=v)
            for b, v in zip(boxes.tolist(), videos.tolist())
        ]


def synthesize_zipf_trace(
    path: str,
    num_videos: int,
    num_rounds: int,
    events_per_round: float,
    exponent: float = 0.8,
    seed: int = 0,
) -> int:
    """Generate and write a Zipf-popular Poisson trace (fixture helper).

    Used to build the committed fixture deterministically; kept in the
    library so the fixture can be regenerated byte-identically.
    """
    from repro.workloads.popularity import zipf_weights

    rng = np.random.default_rng(seed)
    weights = zipf_weights(num_videos, exponent)
    events: List[Tuple[int, int]] = []
    for time in range(check_positive_integer(num_rounds, "num_rounds")):
        count = int(rng.poisson(events_per_round))
        for video in rng.choice(num_videos, size=count, replace=True, p=weights):
            events.append((time, int(video)))
    return write_trace(path, events, num_videos)
