"""Demand workloads: adversarial, flash-crowd, popularity and sequential.

Generators implement :class:`repro.workloads.base.DemandGenerator` and are
handed a read-only :class:`repro.workloads.base.SystemView` every round,
so adaptive adversaries — the worst case the paper's theorems quantify
over — can react to the allocation and the current swarm sizes.
"""

from repro.workloads.base import DemandGenerator, StaticDemandSchedule, SystemView
from repro.workloads.adversarial import (
    ColdStartAdversary,
    LeastReplicatedAdversary,
    MissingVideoAdversary,
)
from repro.workloads.flashcrowd import FlashCrowdWorkload, StaggeredFlashCrowdWorkload
from repro.workloads.popularity import (
    UniformDemandWorkload,
    ZipfDemandWorkload,
    zipf_weights,
)
from repro.workloads.sequential import SequentialViewingWorkload

__all__ = [
    "DemandGenerator",
    "StaticDemandSchedule",
    "SystemView",
    "ColdStartAdversary",
    "LeastReplicatedAdversary",
    "MissingVideoAdversary",
    "FlashCrowdWorkload",
    "StaggeredFlashCrowdWorkload",
    "UniformDemandWorkload",
    "ZipfDemandWorkload",
    "zipf_weights",
    "SequentialViewingWorkload",
]
