"""Demand workloads: adversarial, flash-crowd, popularity and sequential.

Generators implement :class:`repro.workloads.base.DemandGenerator` and are
handed a read-only :class:`repro.workloads.base.SystemView` every round,
so adaptive adversaries — the worst case the paper's theorems quantify
over — can react to the allocation and the current swarm sizes.
"""

from repro.workloads.base import DemandGenerator, StaticDemandSchedule, SystemView
from repro.workloads.adversarial import (
    ColdStartAdversary,
    LeastReplicatedAdversary,
    MissingVideoAdversary,
)
from repro.workloads.drift import DriftingZipfWorkload, FlashRotationWorkload
from repro.workloads.flashcrowd import FlashCrowdWorkload, StaggeredFlashCrowdWorkload
from repro.workloads.popularity import (
    UniformDemandWorkload,
    ZipfDemandWorkload,
    check_zipf_exponent,
    zipf_weights,
)
from repro.workloads.sequential import SequentialViewingWorkload
from repro.workloads.trace import (
    TraceDemandWorkload,
    iter_trace,
    load_trace,
    resolve_trace_path,
    write_trace,
)

__all__ = [
    "DemandGenerator",
    "StaticDemandSchedule",
    "SystemView",
    "ColdStartAdversary",
    "LeastReplicatedAdversary",
    "MissingVideoAdversary",
    "DriftingZipfWorkload",
    "FlashRotationWorkload",
    "FlashCrowdWorkload",
    "StaggeredFlashCrowdWorkload",
    "UniformDemandWorkload",
    "ZipfDemandWorkload",
    "check_zipf_exponent",
    "zipf_weights",
    "SequentialViewingWorkload",
    "TraceDemandWorkload",
    "iter_trace",
    "load_trace",
    "resolve_trace_path",
    "write_trace",
]
