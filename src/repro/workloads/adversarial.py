"""Adversarial demand generators.

The paper's guarantees are worst-case over *any* demand sequence
respecting the swarm-growth bound, so the interesting experiments run the
system against adversaries rather than benign popularity models:

* :class:`MissingVideoAdversary` — the ``u < 1`` killer of Section 1.3:
  every box demands a video it stores **nothing** of, so its entire
  playback must be uploaded by others;
* :class:`LeastReplicatedAdversary` — demands concentrate on the videos
  whose stripes have the fewest distinct holders under the current
  allocation, probing the weakest part of the expander;
* :class:`ColdStartAdversary` — maximizes *sourcing* pressure by always
  demanding videos with an empty swarm (no playback-cache help at all),
  spread over as many boxes as allowed.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.preloading import Demand
from repro.sim.swarm import max_new_members
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_in_range, check_non_negative_integer
from repro.workloads.base import SystemView

__all__ = [
    "MissingVideoAdversary",
    "LeastReplicatedAdversary",
    "ColdStartAdversary",
]


class MissingVideoAdversary:
    """Every free box demands a video it stores no data of (Section 1.3).

    ``max_demands_per_round`` optionally throttles the attack so that the
    swarm-growth bound ``µ`` stays respected; by default the adversary is
    unthrottled, which is exactly the paper's lower-bound scenario (and may
    legitimately violate ``µ`` — the negative result does not need the
    growth assumption).
    """

    def __init__(
        self,
        start_time: int = 0,
        max_demands_per_round: Optional[int] = None,
        respect_growth: bool = False,
        mu: float = 1.5,
        random_state: RandomState = None,
    ):
        self._start = check_non_negative_integer(start_time, "start_time")
        self._max_per_round = max_demands_per_round
        self._respect_growth = bool(respect_growth)
        self._mu = check_in_range(mu, "mu", 1.0, math.inf)
        self._rng = as_generator(random_state)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Pick, for each free box, a stored-nowhere video to demand."""
        if view.time < self._start:
            return []
        c = view.catalog.num_stripes_per_video
        m = view.catalog.num_videos
        all_videos = np.arange(m, dtype=np.int64)
        free = list(int(b) for b in view.free_boxes)
        self._rng.shuffle(free)
        if self._max_per_round is not None:
            free = free[: self._max_per_round]

        budget: dict[int, int] = {}
        demands: List[Demand] = []
        for box_id in free:
            stored = view.allocation.stripes_on_box(box_id)
            stored_videos = np.unique(stored // c) if stored.size else np.empty(0, dtype=np.int64)
            missing = np.setdiff1d(all_videos, stored_videos, assume_unique=True)
            if missing.size == 0:
                continue
            choice = int(missing[self._rng.integers(missing.size)])
            if self._respect_growth:
                if choice not in budget:
                    current = view.swarms.size(choice, view.time - 1) if view.time > 0 else 0
                    budget[choice] = max_new_members(current, self._mu)
                if budget[choice] <= 0:
                    # Try another missing video with remaining budget.
                    alternatives = [
                        int(v)
                        for v in missing
                        if budget.get(
                            int(v),
                            max_new_members(
                                view.swarms.size(int(v), view.time - 1) if view.time > 0 else 0,
                                self._mu,
                            ),
                        )
                        > 0
                    ]
                    if not alternatives:
                        continue
                    choice = alternatives[int(self._rng.integers(len(alternatives)))]
                    if choice not in budget:
                        current = view.swarms.size(choice, view.time - 1) if view.time > 0 else 0
                        budget[choice] = max_new_members(current, self._mu)
                budget[choice] -= 1
            demands.append(Demand(time=view.time, box_id=box_id, video_id=choice))
        return demands


class LeastReplicatedAdversary:
    """Concentrate demand on the videos with the weakest replication.

    Videos are ranked by the minimum, over their stripes, of the number of
    distinct boxes holding the stripe; demand floods the lowest-ranked
    videos while respecting the growth bound ``µ``.
    """

    def __init__(
        self,
        mu: float,
        num_target_videos: int = 1,
        start_time: int = 0,
        random_state: RandomState = None,
    ):
        self._mu = check_in_range(mu, "mu", 1.0, math.inf)
        if num_target_videos <= 0:
            raise ValueError("num_target_videos must be positive")
        self._num_targets = int(num_target_videos)
        self._start = check_non_negative_integer(start_time, "start_time")
        self._rng = as_generator(random_state)
        self._targets: Optional[List[int]] = None

    def _pick_targets(self, view: SystemView) -> List[int]:
        c = view.catalog.num_stripes_per_video
        coverage = view.allocation.distinct_coverage()
        per_video = coverage.reshape(view.catalog.num_videos, c).min(axis=1)
        order = np.argsort(per_video, kind="stable")
        return [int(v) for v in order[: self._num_targets]]

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Send the maximal allowed number of joiners to the weakest videos."""
        if view.time < self._start:
            return []
        if self._targets is None:
            self._targets = self._pick_targets(view)
        free = list(int(b) for b in view.free_boxes)
        self._rng.shuffle(free)
        demands: List[Demand] = []
        cursor = 0
        for video_id in self._targets:
            current = view.swarms.size(video_id, view.time - 1) if view.time > 0 else 0
            joiners = max_new_members(current, self._mu)
            take = min(joiners, len(free) - cursor)
            for _ in range(take):
                demands.append(
                    Demand(time=view.time, box_id=free[cursor], video_id=video_id)
                )
                cursor += 1
        return demands


class ColdStartAdversary:
    """Always demand videos whose swarm is currently empty.

    This maximizes sourcing pressure: no requester can be helped by another
    box's playback cache, so every stripe must come from the static
    allocation.  Respects the growth bound by construction (an empty swarm
    may receive ``⌈µ⌉`` joiners; the adversary sends exactly one per video
    and spreads across as many cold videos as it can).
    """

    def __init__(
        self,
        start_time: int = 0,
        max_demands_per_round: Optional[int] = None,
        random_state: RandomState = None,
    ):
        self._start = check_non_negative_integer(start_time, "start_time")
        self._max_per_round = max_demands_per_round
        self._rng = as_generator(random_state)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Assign free boxes to distinct cold (empty-swarm) videos."""
        if view.time < self._start:
            return []
        cold = [
            video_id
            for video_id in range(view.catalog.num_videos)
            if view.swarms.size(video_id, view.time - 1 if view.time > 0 else 0) == 0
        ]
        self._rng.shuffle(cold)
        free = list(int(b) for b in view.free_boxes)
        self._rng.shuffle(free)
        if self._max_per_round is not None:
            free = free[: self._max_per_round]
        demands: List[Demand] = []
        for box_id, video_id in zip(free, cold):
            demands.append(Demand(time=view.time, box_id=box_id, video_id=int(video_id)))
        return demands
