"""Flash-crowd workloads: swarms growing at the maximal rate ``µ``.

The hardest demand dynamics the paper allows is a swarm whose size grows
by a factor ``µ`` every round.  :class:`FlashCrowdWorkload` pushes one (or
several) videos exactly to that limit, which is the regime Lemma 2's
counting argument is tight for: at any round most swarm members entered
very recently and only the preloaded stripes of the previous generation
can feed them.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.preloading import Demand
from repro.sim.swarm import max_new_members
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_in_range, check_non_negative_integer
from repro.workloads.base import SystemView

__all__ = ["FlashCrowdWorkload", "StaggeredFlashCrowdWorkload"]


class FlashCrowdWorkload:
    """Grow the swarms of ``target_videos`` at exactly the maximal rate ``µ``.

    Parameters
    ----------
    mu:
        Swarm growth bound to saturate.
    target_videos:
        The videos receiving the flash crowd (defaults to video 0).
    start_time:
        Round at which the crowd starts arriving.
    max_members:
        Optional cap on the total number of boxes sent to each video.
    random_state:
        Seed controlling which free boxes are picked each round.
    """

    def __init__(
        self,
        mu: float,
        target_videos: Sequence[int] = (0,),
        start_time: int = 0,
        max_members: Optional[int] = None,
        random_state: RandomState = None,
    ):
        self._mu = check_in_range(mu, "mu", 1.0, math.inf)
        self._targets = [int(v) for v in target_videos]
        if not self._targets:
            raise ValueError("target_videos must not be empty")
        self._start = check_non_negative_integer(start_time, "start_time")
        self._cap = max_members
        self._rng = as_generator(random_state)
        self._sent = {v: 0 for v in self._targets}

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Send as many new members to each target swarm as ``µ`` allows."""
        if view.time < self._start:
            return []
        free = list(int(b) for b in view.free_boxes)
        self._rng.shuffle(free)
        demands: List[Demand] = []
        cursor = 0
        for video_id in self._targets:
            if video_id >= view.catalog.num_videos:
                raise ValueError(
                    f"target video {video_id} outside catalog of size {view.catalog.num_videos}"
                )
            current = view.swarms.size(video_id, view.time - 1) if view.time > 0 else 0
            joiners = max_new_members(current, self._mu)
            if self._cap is not None:
                joiners = min(joiners, self._cap - self._sent[video_id])
            joiners = max(joiners, 0)
            take = min(joiners, len(free) - cursor)
            for _ in range(take):
                box_id = free[cursor]
                cursor += 1
                demands.append(Demand(time=view.time, box_id=box_id, video_id=video_id))
                self._sent[video_id] += 1
        return demands


class StaggeredFlashCrowdWorkload:
    """Several flash crowds starting at different rounds on different videos.

    Used by the scaling experiments to create overlapping swarms: video
    ``target_videos[j]`` starts its crowd at ``start_times[j]`` and grows
    at rate ``µ`` until ``max_members`` boxes have joined it.
    """

    def __init__(
        self,
        mu: float,
        target_videos: Sequence[int],
        start_times: Sequence[int],
        max_members: Optional[int] = None,
        random_state: RandomState = None,
    ):
        if len(target_videos) != len(start_times):
            raise ValueError("target_videos and start_times must have the same length")
        self._mu = check_in_range(mu, "mu", 1.0, math.inf)
        self._videos = [int(v) for v in target_videos]
        self._starts = [check_non_negative_integer(t, "start_time") for t in start_times]
        self._cap = max_members
        self._rng = as_generator(random_state)
        self._sent = {v: 0 for v in self._videos}

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Advance every crowd that has already started."""
        free = list(int(b) for b in view.free_boxes)
        self._rng.shuffle(free)
        demands: List[Demand] = []
        cursor = 0
        for video_id, start in zip(self._videos, self._starts):
            if view.time < start:
                continue
            current = view.swarms.size(video_id, view.time - 1) if view.time > 0 else 0
            joiners = max_new_members(current, self._mu)
            if self._cap is not None:
                joiners = min(joiners, self._cap - self._sent[video_id])
            take = min(max(joiners, 0), len(free) - cursor)
            for _ in range(take):
                box_id = free[cursor]
                cursor += 1
                demands.append(Demand(time=view.time, box_id=box_id, video_id=video_id))
                self._sent[video_id] += 1
        return demands
