"""Popularity-driven (benign) demand models.

The theorems are worst-case, but the experiments also exercise the system
under realistic demand: Zipf-distributed video popularity with Poisson
arrivals (the standard VoD workload model) and a uniform-popularity
variant.  These are the "easy" baselines against which the adversarial
workloads are contrasted in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.core.preloading import Demand
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_non_negative_integer, check_positive
from repro.workloads.base import SystemView

__all__ = ["check_zipf_exponent", "zipf_weights", "ZipfDemandWorkload", "UniformDemandWorkload"]

_EMPTY = np.empty(0, dtype=np.int64)


def check_zipf_exponent(exponent: float, name: str = "exponent") -> float:
    """Validate a Zipf exponent ``alpha``, with an actionable message.

    The popularity law ``p_v ∝ 1/rank^alpha`` is only a skewed
    distribution for ``alpha > 0``; empirical VoD fits put alpha around
    0.8-1.2.  ``alpha <= 0`` (or a non-finite value) is almost always a
    sign/units mistake, so it is rejected rather than silently producing
    an anti-popular or degenerate law.
    """
    exponent = float(exponent)
    if not math.isfinite(exponent) or exponent <= 0:
        raise ValueError(
            f"{name} must be a finite positive float, got {exponent!r}; "
            "Zipf popularity needs alpha > 0 (VoD fits are typically "
            "0.8-1.2) — for flat popularity use the 'uniform' workload "
            "instead of alpha <= 0"
        )
    return exponent


def _materialize(time: int, boxes: np.ndarray, videos: np.ndarray) -> List[Demand]:
    """Demand objects for one round's ``(box, video)`` arrival arrays."""
    return [
        Demand(time=time, box_id=b, video_id=v)
        for b, v in zip(boxes.tolist(), videos.tolist())
    ]


def zipf_weights(num_videos: int, exponent: float = 0.8) -> np.ndarray:
    """Normalized Zipf popularity weights ``p_v ∝ 1/(v+1)^exponent``."""
    if num_videos <= 0:
        raise ValueError(f"num_videos must be positive, got {num_videos}")
    if num_videos == 1:
        raise ValueError(
            "a Zipf popularity law over a single-video catalog is degenerate "
            "(every demand hits video 0); grow the catalog to >= 2 videos or "
            "use the 'flashcrowd' workload to target one video deliberately"
        )
    exponent = check_zipf_exponent(exponent)
    ranks = np.arange(1, num_videos + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class ZipfDemandWorkload:
    """Poisson arrivals with Zipf-distributed video popularity.

    Parameters
    ----------
    arrival_rate:
        Expected number of new demands per round (Poisson distributed),
        truncated to the number of currently free boxes.
    exponent:
        Zipf exponent of the popularity distribution (0.8 is the classic
        VoD fit).
    start_time:
        First round at which demands may arrive.
    """

    def __init__(
        self,
        arrival_rate: float,
        exponent: float = 0.8,
        start_time: int = 0,
        random_state: RandomState = None,
    ):
        self._rate = check_positive(arrival_rate, "arrival_rate")
        self._exponent = check_zipf_exponent(exponent)
        self._start = check_non_negative_integer(start_time, "start_time")
        self._rng = as_generator(random_state)
        self._weights: Optional[np.ndarray] = None

    def demand_arrays_for_round(
        self, view: SystemView
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-path :meth:`demands_for_round`: ``(box_ids, video_ids)``.

        Draws from the random stream in exactly the same call sequence as
        the object path, so either path yields the same arrivals; the
        boxes are distinct (sampled without replacement).
        """
        if view.time < self._start:
            return _EMPTY, _EMPTY
        if self._weights is None or self._weights.size != view.catalog.num_videos:
            self._weights = zipf_weights(view.catalog.num_videos, self._exponent)
        count = int(self._rng.poisson(self._rate))
        free = np.asarray(view.free_boxes, dtype=np.int64)
        count = min(count, free.size)
        if count == 0:
            return _EMPTY, _EMPTY
        boxes = self._rng.choice(free, size=count, replace=False)
        videos = self._rng.choice(
            view.catalog.num_videos, size=count, replace=True, p=self._weights
        )
        return boxes.astype(np.int64, copy=False), videos.astype(np.int64, copy=False)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Draw Poisson(rate) arrivals and assign them Zipf-popular videos."""
        boxes, videos = self.demand_arrays_for_round(view)
        return _materialize(view.time, boxes, videos)


class UniformDemandWorkload:
    """Poisson arrivals with uniformly random video choice."""

    def __init__(
        self,
        arrival_rate: float,
        start_time: int = 0,
        random_state: RandomState = None,
    ):
        self._rate = check_positive(arrival_rate, "arrival_rate")
        self._start = check_non_negative_integer(start_time, "start_time")
        self._rng = as_generator(random_state)

    def demand_arrays_for_round(
        self, view: SystemView
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Array-path :meth:`demands_for_round` (same random call sequence)."""
        if view.time < self._start:
            return _EMPTY, _EMPTY
        count = int(self._rng.poisson(self._rate))
        free = np.asarray(view.free_boxes, dtype=np.int64)
        count = min(count, free.size)
        if count == 0:
            return _EMPTY, _EMPTY
        boxes = self._rng.choice(free, size=count, replace=False)
        videos = self._rng.integers(0, view.catalog.num_videos, size=count)
        return boxes.astype(np.int64, copy=False), videos.astype(np.int64, copy=False)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Draw Poisson(rate) arrivals over uniformly random videos."""
        boxes, videos = self.demand_arrays_for_round(view)
        return _materialize(view.time, boxes, videos)
