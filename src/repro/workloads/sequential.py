"""Sequential-viewing workload: boxes play videos back to back.

The model explicitly allows a box to play one video after another, in
which case its playback cache straddles the end of the previous video and
the beginning of the current one, and the box belongs to (at most) two
swarms during a window of length ``T`` — a case Lemma 2 must and does
handle ("the boxes considered in bound (3) may concern at most two
videos").  This workload exercises exactly that situation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.preloading import Demand
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_non_negative_integer
from repro.workloads.base import SystemView

__all__ = ["SequentialViewingWorkload"]


class SequentialViewingWorkload:
    """Each participating box demands a new video as soon as it becomes free.

    Parameters
    ----------
    boxes:
        The boxes taking part (defaults to all boxes).
    playlist:
        Optional explicit playlist per box (cycled); otherwise videos are
        drawn uniformly at random, avoiding an immediate repeat.
    start_time:
        Round of the first demand.
    """

    def __init__(
        self,
        boxes: Optional[Sequence[int]] = None,
        playlist: Optional[Sequence[int]] = None,
        start_time: int = 0,
        random_state: RandomState = None,
    ):
        self._boxes = None if boxes is None else [int(b) for b in boxes]
        self._playlist = None if playlist is None else [int(v) for v in playlist]
        if self._playlist is not None and not self._playlist:
            raise ValueError("playlist must not be empty when provided")
        self._start = check_non_negative_integer(start_time, "start_time")
        self._rng = as_generator(random_state)
        self._cursor: Dict[int, int] = {}
        self._last_video: Dict[int, int] = {}

    def _next_video(self, box_id: int, num_videos: int) -> int:
        if self._playlist is not None:
            cursor = self._cursor.get(box_id, 0)
            video = self._playlist[cursor % len(self._playlist)]
            self._cursor[box_id] = cursor + 1
            return video % num_videos
        previous = self._last_video.get(box_id)
        if num_videos == 1:
            return 0
        while True:
            video = int(self._rng.integers(num_videos))
            if video != previous:
                return video

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Every participating free box demands its next video."""
        if view.time < self._start:
            return []
        participants = (
            set(self._boxes) if self._boxes is not None else set(range(view.population.n))
        )
        demands: List[Demand] = []
        for box_id in view.free_boxes:
            box_id = int(box_id)
            if box_id not in participants:
                continue
            video = self._next_video(box_id, view.catalog.num_videos)
            self._last_video[box_id] = video
            demands.append(Demand(time=view.time, box_id=box_id, video_id=video))
        return demands
