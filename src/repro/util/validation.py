"""Argument-validation helpers.

The core model classes validate their inputs eagerly so that configuration
errors surface at construction time with a clear message rather than as an
obscure failure deep inside a simulation run.
"""

from __future__ import annotations

from numbers import Integral, Real
from typing import Any


def check_integer(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` or raise ``TypeError``."""
    if type(value) is int:  # fast path: the abc instancecheck dominates hot loops
        return value
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    return int(value)


def check_positive_integer(value: Any, name: str) -> int:
    """Return ``value`` as a strictly positive ``int``."""
    ivalue = check_integer(value, name)
    if ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {ivalue}")
    return ivalue


def check_non_negative_integer(value: Any, name: str) -> int:
    """Return ``value`` as a non-negative ``int``."""
    ivalue = check_integer(value, name)
    if ivalue < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {ivalue}")
    return ivalue


def check_real(value: Any, name: str) -> float:
    """Return ``value`` as ``float`` or raise ``TypeError``."""
    if type(value) is not float and (
        isinstance(value, bool) or not isinstance(value, Real)
    ):
        raise TypeError(f"{name} must be a real number, got {value!r}")
    fvalue = float(value)
    if fvalue != fvalue:  # NaN check without importing math
        raise ValueError(f"{name} must not be NaN")
    return fvalue


def check_positive(value: Any, name: str) -> float:
    """Return ``value`` as a strictly positive ``float``."""
    fvalue = check_real(value, name)
    if fvalue <= 0:
        raise ValueError(f"{name} must be positive, got {fvalue}")
    return fvalue


def check_non_negative(value: Any, name: str) -> float:
    """Return ``value`` as a non-negative ``float``."""
    fvalue = check_real(value, name)
    if fvalue < 0:
        raise ValueError(f"{name} must be non-negative, got {fvalue}")
    return fvalue


def check_probability(value: Any, name: str) -> float:
    """Return ``value`` as a ``float`` in ``[0, 1]``."""
    fvalue = check_real(value, name)
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {fvalue}")
    return fvalue


def check_in_range(
    value: Any,
    name: str,
    low: float,
    high: float,
    *,
    inclusive_low: bool = True,
    inclusive_high: bool = True,
) -> float:
    """Return ``value`` checked against a closed/open interval."""
    fvalue = check_real(value, name)
    low_ok = fvalue >= low if inclusive_low else fvalue > low
    high_ok = fvalue <= high if inclusive_high else fvalue < high
    if not (low_ok and high_ok):
        lo_b = "[" if inclusive_low else "("
        hi_b = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must lie in {lo_b}{low}, {high}{hi_b}, got {fvalue}")
    return fvalue
