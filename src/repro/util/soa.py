"""Struct-of-arrays buffer helpers.

The vectorized engine core keeps its hot-path state as parallel NumPy
columns with amortized doubling growth (request pool, demand log, swarm
entry logs).  :func:`ensure_column_capacity` is the one shared growth
routine: every column keeps its dtype, the live prefix is preserved, and
capacity at least doubles so appends stay O(1) amortized.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["ensure_column_capacity"]


def ensure_column_capacity(owner, names: Sequence[str], live: int, needed: int) -> None:
    """Grow the array attributes ``names`` of ``owner`` to hold ``needed``.

    No-op while the current capacity suffices; otherwise every column is
    reallocated to ``max(needed, 2 * capacity)`` entries of its own dtype
    with the first ``live`` entries copied over.
    """
    capacity = getattr(owner, names[0]).size
    if needed <= capacity:
        return
    new_capacity = max(needed, 2 * capacity)
    for name in names:
        old = getattr(owner, name)
        new = np.empty(new_capacity, dtype=old.dtype)
        new[:live] = old[:live]
        setattr(owner, name, new)
