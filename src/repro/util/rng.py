"""Seeded random-number-generator helpers.

Every stochastic component of the library (allocations, workload
generators, Monte-Carlo estimators) accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  This module centralizes the
conversion so that experiments are reproducible end to end: the same seed
always produces the same allocation, the same demand sequence and therefore
the same simulation trace.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

#: Type alias accepted anywhere the library needs randomness.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a flexible seed spec.

    Parameters
    ----------
    random_state:
        ``None`` (fresh entropy), an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Examples
    --------
    >>> g1 = as_generator(42)
    >>> g2 = as_generator(42)
    >>> int(g1.integers(1 << 30)) == int(g2.integers(1 << 30))
    True
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, a numpy SeedSequence or a "
        f"numpy Generator, got {type(random_state).__name__}"
    )


def spawn_seed_sequences(
    random_state: RandomState, count: int
) -> List[np.random.SeedSequence]:
    """Spawn ``count`` statistically independent child seed sequences.

    The children are plain :class:`numpy.random.SeedSequence` objects —
    cheap to pickle, so the parallel Monte-Carlo driver ships them to
    worker processes and reproduces the serial trial streams exactly.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(random_state, np.random.SeedSequence):
        seq = random_state
    elif isinstance(random_state, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.
        seq = np.random.SeedSequence(int(random_state.integers(0, 2**63 - 1)))
    elif random_state is None:
        seq = np.random.SeedSequence()
    elif isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        seq = np.random.SeedSequence(int(random_state))
    else:
        raise TypeError(
            "random_state must be None, an int, a numpy SeedSequence or a "
            f"numpy Generator, got {type(random_state).__name__}"
        )
    return seq.spawn(count)


def spawn_generators(random_state: RandomState, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Used by the Monte-Carlo harness so that independent trials remain
    reproducible yet uncorrelated when a single master seed is supplied.
    """
    return [
        np.random.default_rng(child)
        for child in spawn_seed_sequences(random_state, count)
    ]


def derive_seed(random_state: RandomState, stream: int = 0) -> int:
    """Derive a deterministic integer sub-seed for a named stream.

    Handy when a component needs to record "the seed it used" in a report
    while having been constructed from a shared master seed.
    """
    if stream < 0:
        raise ValueError(f"stream must be non-negative, got {stream}")
    gen = as_generator(random_state)
    value = 0
    for _ in range(stream + 1):
        value = int(gen.integers(0, 2**63 - 1))
    return value


def permutation(random_state: RandomState, size: int) -> np.ndarray:
    """Return a random permutation of ``range(size)`` as an int64 array."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    return as_generator(random_state).permutation(size).astype(np.int64)


def choice_without_replacement(
    random_state: RandomState, population: int, count: int
) -> np.ndarray:
    """Sample ``count`` distinct integers from ``range(population)``."""
    if count > population:
        raise ValueError(
            f"cannot sample {count} items without replacement from {population}"
        )
    gen = as_generator(random_state)
    return gen.choice(population, size=count, replace=False).astype(np.int64)


def weighted_choice(
    random_state: RandomState,
    weights: Iterable[float],
    size: Optional[int] = None,
) -> np.ndarray:
    """Sample indices proportionally to ``weights`` (with replacement)."""
    w = np.asarray(list(weights), dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    probs = w / total
    gen = as_generator(random_state)
    n = 1 if size is None else size
    out = gen.choice(w.size, size=n, replace=True, p=probs).astype(np.int64)
    return out if size is not None else out[:1]
