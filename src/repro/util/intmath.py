"""Exact integer arithmetic helpers for stripe-rate bookkeeping.

The paper normalizes the video bitrate to 1 and splits each video into
``c`` stripes of rate ``1/c``.  All capacity comparisons in the
feasibility condition (Lemma 1) are therefore comparisons of multiples of
``1/c``.  To keep the flow computations exact we scale every rate by ``c``
(and, for heterogeneous systems, by the least common multiple of the
relevant denominators) and work in integers.  This module collects the
small amount of arithmetic that supports this convention.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple


def ceil_div(numerator: int, denominator: int) -> int:
    """Exact ceiling division for non-negative integers.

    >>> ceil_div(7, 3)
    3
    >>> ceil_div(6, 3)
    2
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def floor_multiple(value: float, unit: float) -> float:
    """Largest multiple of ``unit`` not exceeding ``value``.

    Used when truncating a box upload capacity to a multiple of ``1/c``
    (Section 4 of the paper: "we truncate its upload to a multiple of 1/c").
    """
    if unit <= 0:
        raise ValueError(f"unit must be positive, got {unit}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return math.floor(value / unit + 1e-12) * unit


def floor_to_stripe_units(upload: float, c: int) -> int:
    """Number of whole stripes a box of normalized upload ``upload`` can serve.

    This is the quantity ``⌊u_b · c⌋`` from the paper: when the upload
    capacity of box ``b`` is not a multiple of ``1/c`` it can only upload
    ``⌊u_b c⌋`` stripes.  A tiny epsilon guards against float representation
    of values that are mathematically exact multiples of ``1/c``.
    """
    if c <= 0:
        raise ValueError(f"c must be a positive integer, got {c}")
    if upload < 0:
        raise ValueError(f"upload must be non-negative, got {upload}")
    return int(math.floor(upload * c + 1e-9))


def effective_upload(upload: float, c: int) -> float:
    """Effective upload ``u' = ⌊u c⌋ / c`` after truncation to whole stripes."""
    return floor_to_stripe_units(upload, c) / c


def lcm_of(values: Iterable[int]) -> int:
    """Least common multiple of a sequence of positive integers."""
    result = 1
    seen = False
    for v in values:
        if v <= 0:
            raise ValueError(f"all values must be positive, got {v}")
        result = result * v // math.gcd(result, v)
        seen = True
    if not seen:
        raise ValueError("lcm_of requires at least one value")
    return result


def scale_to_integer_capacities(
    rates: Sequence[float], max_denominator: int = 10_000
) -> Tuple[List[int], int]:
    """Scale a sequence of rational rates to integers.

    Returns ``(scaled, scale)`` where ``scaled[i] == round(rates[i] * scale)``
    and ``scale`` is the least common multiple of the denominators of the
    rates (each approximated by a :class:`fractions.Fraction` limited to
    ``max_denominator``).  Used to build exact integer-capacity flow
    networks from heterogeneous per-box uploads.

    >>> scale_to_integer_capacities([0.5, 1.25, 2.0])
    ([2, 5, 8], 4)
    """
    fractions = [Fraction(r).limit_denominator(max_denominator) for r in rates]
    for r, f in zip(rates, fractions):
        if f < 0:
            raise ValueError(f"rates must be non-negative, got {r}")
    denominators = [f.denominator for f in fractions] or [1]
    scale = lcm_of(denominators)
    scaled = [int(f * scale) for f in fractions]
    return scaled, scale


def is_close_multiple(value: float, unit: float, tol: float = 1e-9) -> bool:
    """Whether ``value`` is (numerically) an integer multiple of ``unit``."""
    if unit <= 0:
        raise ValueError(f"unit must be positive, got {unit}")
    ratio = value / unit
    return abs(ratio - round(ratio)) <= tol
