"""Utility helpers shared across the :mod:`repro` package.

The utilities are intentionally small and dependency free: seeded RNG
construction (:mod:`repro.util.rng`), argument validation helpers
(:mod:`repro.util.validation`) and exact integer/rational arithmetic for
stripe-rate bookkeeping (:mod:`repro.util.intmath`).
"""

from repro.util.rng import (
    RandomState,
    as_generator,
    spawn_generators,
    spawn_seed_sequences,
)
from repro.util.validation import (
    check_integer,
    check_positive,
    check_positive_integer,
    check_probability,
    check_in_range,
)
from repro.util.intmath import (
    ceil_div,
    floor_multiple,
    floor_to_stripe_units,
    lcm_of,
    scale_to_integer_capacities,
)

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "spawn_seed_sequences",
    "check_integer",
    "check_positive",
    "check_positive_integer",
    "check_probability",
    "check_in_range",
    "ceil_div",
    "floor_multiple",
    "floor_to_stripe_units",
    "lcm_of",
    "scale_to_integer_capacities",
]
