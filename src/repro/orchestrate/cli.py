"""``python -m repro.orchestrate`` — the campaign command line.

Subcommands::

    list                         registered campaigns + store coverage
    run NAME... [--jobs N]       execute missing cells (incremental)
    resume NAME...               alias of run; --expect-complete asserts
                                 the store already held every cell
    report [NAME...]             render Markdown reports + the claim map
    diff [NAME...]               fail if committed reports are stale
    verify                       checksum-sweep the store's object records
    repair                       delete damaged records (resume re-runs them)

The store location defaults to ``results/store`` (override with
``--store``), reports to ``docs/results`` (override with ``--out``);
both paths are relative to the current directory, which for the checked
-in artifacts is the repository root.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.report import render_table
from repro.orchestrate.campaigns import all_campaigns, get_campaign
from repro.orchestrate.report import diff_reports, generate_reports
from repro.orchestrate.runner import run_campaign
from repro.orchestrate.spec import CampaignSpec
from repro.orchestrate.store import ResultsStore
from repro.orchestrate.supervise import SupervisionPolicy

__all__ = ["main"]

DEFAULT_STORE = "results/store"
DEFAULT_OUT = "docs/results"


class _CliError(Exception):
    """A user-input problem the CLI reports as exit code 2."""


def _select(
    names: Sequence[str], run_all: bool, default_all: bool = False
) -> List[CampaignSpec]:
    if run_all:
        return all_campaigns()
    if not names:
        if default_all:
            return all_campaigns()
        raise _CliError("no campaigns named (pass names or --all)")
    try:
        return [get_campaign(name) for name in names]
    except KeyError as exc:
        raise _CliError(str(exc.args[0])) from None


def _cmd_list(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store)
    rows = []
    for campaign in all_campaigns():
        keys = campaign.cell_keys()
        stored = sum(1 for key in keys if store.has(key))
        rows.append(
            {
                "campaign": campaign.name,
                "runner": campaign.runner,
                "cells": len(keys),
                "stored": stored,
                "migrates": campaign.benchmark or "-",
                "description": campaign.description,
            }
        )
    print(render_table(rows, title=f"registered campaigns (store: {args.store})"))
    return 0


def _cmd_run(args: argparse.Namespace, resume: bool = False) -> int:
    store = ResultsStore(args.store)
    campaigns = _select(args.campaigns, args.all)
    policy = None
    if args.cell_timeout is not None or args.retries is not None:
        policy = SupervisionPolicy(
            cell_timeout=args.cell_timeout,
            max_retries=args.retries if args.retries is not None else 2,
        )
    exit_code = 0
    for campaign in campaigns:
        report = run_campaign(
            campaign,
            store,
            n_jobs=args.jobs,
            force=getattr(args, "force", False),
            max_cells=getattr(args, "max_cells", None),
            progress=print,
            policy=policy,
        )
        print(report.describe())
        if not report.complete:
            exit_code = 1
        if resume and args.expect_complete and report.executed:
            print(
                f"{campaign.name}: expected a completed campaign but "
                f"{len(report.executed)} cells had to be executed",
                file=sys.stderr,
            )
            exit_code = 1
    return exit_code


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store)
    campaigns = _select(args.campaigns, run_all=False, default_all=True)
    for path in generate_reports(campaigns, store, args.out):
        print(f"wrote {path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store)
    campaigns = _select(args.campaigns, run_all=False, default_all=True)
    diffs = diff_reports(campaigns, store, args.out)
    if not diffs:
        print(f"reports under {args.out} match the store ({args.store})")
        return 0
    for diff in diffs:
        print(diff)
    print(
        f"{len(diffs)} report(s) stale — regenerate with "
        "`python -m repro.orchestrate report`",
        file=sys.stderr,
    )
    return 1


def _cmd_verify(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store)
    damage = store.verify()
    if not damage:
        print(f"store {args.store} OK: {len(store)} records verified")
        return 0
    for item in damage:
        print(f"DAMAGED {item.key[:12]} {item.reason} ({item.path})", file=sys.stderr)
    print(
        f"{len(damage)} damaged record(s) — remove them with "
        "`python -m repro.orchestrate repair`, then `resume` the campaigns",
        file=sys.stderr,
    )
    return 1


def _cmd_repair(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store)
    removed = store.repair()
    if not removed:
        print(f"store {args.store} OK: nothing to repair")
        return 0
    for key in removed:
        print(f"removed damaged record {key[:12]}")
    print(
        f"removed {len(removed)} damaged record(s); "
        "`resume` re-executes exactly those cells"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.orchestrate``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.orchestrate",
        description="resumable experiment campaigns over a content-addressed results store",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_argument(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            default=DEFAULT_STORE,
            help=f"results store root (default {DEFAULT_STORE})",
        )

    add_store_argument(sub.add_parser("list", help="registered campaigns and their store coverage"))

    def add_run_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("campaigns", nargs="*", metavar="CAMPAIGN")
        p.add_argument("--all", action="store_true", help="every registered campaign")
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="worker processes for cell fan-out (-1: one per CPU)",
        )
        p.add_argument(
            "--cell-timeout",
            type=float,
            default=None,
            help="per-cell wall-clock budget in seconds for parallel runs "
            "(hung workers are killed and the cell retried)",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=None,
            help="retries before a failing cell is quarantined (default 2)",
        )
        add_store_argument(p)

    p_run = sub.add_parser("run", help="execute a campaign's missing cells")
    add_run_arguments(p_run)
    p_run.add_argument(
        "--force", action="store_true", help="re-execute cells already in the store"
    )
    p_run.add_argument(
        "--max-cells",
        type=int,
        default=None,
        help="execute at most N pending cells (smoke / kill-resume testing)",
    )

    p_resume = sub.add_parser(
        "resume", help="finish an interrupted campaign (re-executes only missing cells)"
    )
    add_run_arguments(p_resume)
    p_resume.add_argument(
        "--expect-complete",
        action="store_true",
        help="fail if any cell had to be executed (CI resume-is-a-no-op check)",
    )

    p_report = sub.add_parser("report", help="render Markdown reports + the claim map")
    p_report.add_argument("campaigns", nargs="*", metavar="CAMPAIGN")
    p_report.add_argument(
        "--out", default=DEFAULT_OUT, help=f"output directory (default {DEFAULT_OUT})"
    )
    add_store_argument(p_report)

    p_diff = sub.add_parser("diff", help="compare committed reports against the store")
    p_diff.add_argument("campaigns", nargs="*", metavar="CAMPAIGN")
    p_diff.add_argument(
        "--out", default=DEFAULT_OUT, help=f"report directory (default {DEFAULT_OUT})"
    )
    add_store_argument(p_diff)

    add_store_argument(
        sub.add_parser("verify", help="checksum-sweep every record in the store")
    )
    add_store_argument(
        sub.add_parser("repair", help="delete damaged records so resume re-runs them")
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "resume":
            return _cmd_run(args, resume=True)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "repair":
            return _cmd_repair(args)
    except _CliError as exc:
        # Only user-input problems (unknown names, empty selection) land
        # here; failures inside runner code propagate with full tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # Cells persist as they finish, so an interrupted campaign's
        # store is intact and `resume` picks up the gap — say so instead
        # of dumping a traceback over the progress output.
        print(
            "\ninterrupted — completed cells are stored; "
            "rerun with `resume` to finish",
            file=sys.stderr,
        )
        return 130
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
