"""Registered campaigns: the migrated ``benchmarks/bench_*.py`` experiments.

Each experiment's *logic* lives here as a registered ``"experiment"``
component (:mod:`repro.api.registry`) — a top-level, picklable runner
``f(params) -> rows`` that the process-pool campaign driver can resolve
by name in worker processes.  The campaign definitions then declare the
paper's sweeps over those runners; the former benchmark scripts are thin
wrappers that execute the same cells in-process and keep their
pytest-benchmark timings and assertions.

Determinism contract: a runner's rows are a pure function of its params
dict.  Anything stochastic takes an explicit ``seed`` parameter and
derives its streams with the :mod:`repro.util.rng` helpers, exactly like
the parallel Monte-Carlo drivers — which is what makes the content
addressing of :mod:`repro.orchestrate.store` sound.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.api.registry import register_component
from repro.orchestrate.spec import CampaignSpec

__all__ = [
    "register_campaign",
    "get_campaign",
    "campaign_names",
    "all_campaigns",
]

_CAMPAIGNS: Dict[str, CampaignSpec] = {}


def register_campaign(spec: CampaignSpec, overwrite: bool = False) -> CampaignSpec:
    """Add ``spec`` to the campaign registry (refusing silent redefinitions)."""
    if not overwrite and spec.name in _CAMPAIGNS:
        raise ValueError(f"campaign {spec.name!r} is already registered")
    _CAMPAIGNS[spec.name] = spec
    return spec


def get_campaign(name: str) -> CampaignSpec:
    """Look a campaign up by name."""
    try:
        return _CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(_CAMPAIGNS))
        raise KeyError(f"unknown campaign {name!r}; registered: {known}") from None


def campaign_names() -> List[str]:
    """Sorted names of all registered campaigns."""
    return sorted(_CAMPAIGNS)


def all_campaigns() -> List[CampaignSpec]:
    """All registered campaigns, sorted by name."""
    return [_CAMPAIGNS[name] for name in campaign_names()]


# ====================================================================== #
# Experiment runners (registered "experiment" components)
# ====================================================================== #
def run_threshold_design(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """E5 — one Theorem 1 design point: c(u, mu), k(u, d, mu), catalog bound."""
    from repro.analysis.bounds import threshold_design_table

    return threshold_design_table(
        n=int(params["n"]),
        d=float(params["d"]),
        mu=float(params["mu"]),
        u_values=[float(params["u"])],
    )


def run_catalog_scaling(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """E5 — the catalog guarantee at one system size n (linear-in-n check)."""
    from repro.analysis.bounds import catalog_bound_vs_n

    data = catalog_bound_vs_n(
        [int(params["n"])], float(params["u"]), float(params["d"]), float(params["mu"])
    )
    return [
        {
            "n": int(data["n"][0]),
            "k": int(data["k"][0]),
            "catalog": int(data["catalog"][0]),
            "catalog_per_box": float(data["catalog_per_box"][0]),
        }
    ]


def run_quality_tradeoff(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """E10 — catalog guarantee at one bitrate (fixed physical upload)."""
    from repro.analysis.bounds import quality_tradeoff_table

    return quality_tradeoff_table(
        bitrates=[float(params["bitrate"])],
        raw_upload=float(params["raw_upload"]),
        n=int(params["n"]),
        d=float(params["d"]),
        mu=float(params["mu"]),
    )


def run_obstruction_probability(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """E6 — obstruction probability at one replication factor k.

    Always evaluates the paper's aggregated first-moment bound and the
    exact Equation 1 double sum; when ``trials > 0`` additionally runs the
    Monte-Carlo cold-start probe of real random allocations.
    """
    from repro.analysis.montecarlo import estimate_static_obstruction_probability
    from repro.core import obstruction as ob
    from repro.core import thresholds as th

    n = int(params["n"])
    u = float(params["u"])
    d = float(params["d"])
    c = int(params["c"])
    mu = float(params["mu"])
    k = int(params["k"])
    trials = int(params.get("trials", 0))

    nu = th.nu_homogeneous(u, c, mu)
    u_prime = th.effective_upload(u, c)
    d_prime = th.d_prime(d, u)
    m = max(int(d * n // k), 1)
    row: Dict[str, Any] = {
        "k": k,
        "catalog": m,
        "paper_bound": ob.first_moment_bound_paper(n, c, u_prime, d_prime, k, nu),
        "exact_eq1_bound": ob.first_moment_bound_exact(n, c, m, k, u_prime, nu),
    }
    if trials > 0:
        estimate = estimate_static_obstruction_probability(
            n=n,
            u=u,
            d=d,
            c=c,
            k=k,
            num_cold_videos=[min(m, n // 3)],
            trials=trials,
            random_state=int(params["seed"]),
        )
        row["montecarlo_estimate"] = estimate.failure_probability
        row["montecarlo_ci"] = round(estimate.confidence_halfwidth, 3)
    return [row]


def _configure_homogeneous(params: Mapping[str, Any]):
    """A ``VodSystem`` over the bench harness's homogeneous setup."""
    from repro.api import VodSystem

    system = VodSystem.configure(
        catalog={
            "num_videos": int(params["m"]),
            "num_stripes": int(params["c"]),
            "duration": int(params.get("duration", 30)),
        },
        population=(
            "homogeneous",
            {"n": int(params["n"]), "u": float(params["u"]), "d": float(params["d"])},
        ),
        mu=float(params["mu"]),
    )
    system.allocate(
        "permutation",
        replicas_per_stripe=int(params["k"]),
        seed=int(params["seed"]),
    )
    return system


def run_churn_robustness(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """A2 — feasibility of one churn level (no repair mechanism)."""
    from repro.api import create_component
    from repro.util.rng import as_generator

    system = _configure_homogeneous(params)
    rounds = int(params["rounds"])
    n = int(params["n"])
    failure_probability = float(params["failure_probability"])
    churn = create_component(
        "churn",
        "random",
        n,
        rounds,
        {
            "failure_probability": failure_probability,
            "outage_duration": int(params["outage_duration"]),
        },
        as_generator(int(params["seed"]) + 100),
    )
    workload = create_component(
        "workload",
        "flashcrowd",
        {},
        0,
        float(params["mu"]),
        as_generator(int(params["seed"])),
    )
    result = system.run(workload, rounds, churn=churn)
    return [
        {
            "failure_probability": failure_probability,
            "max_concurrent_offline": churn.max_concurrent_outages(rounds),
            "offline_fraction_peak": round(churn.max_concurrent_outages(rounds) / n, 3),
            "feasible": result.feasible,
            "infeasible_rounds": result.metrics.infeasible_rounds,
            "unmatched_requests": result.metrics.unmatched_requests,
            "demands": result.metrics.total_demands,
        }
    ]


def run_startup_delay(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """E8 — realized start-up delay of one workload on the preloading strategy."""
    from repro.api import create_component
    from repro.util.rng import as_generator

    system = _configure_homogeneous(params)
    workload = create_component(
        "workload",
        str(params["workload_kind"]),
        dict(params.get("workload_params", {})),
        0,
        float(params["mu"]),
        as_generator(int(params["workload_seed"])),
    )
    result = system.run(workload, int(params["rounds"]))
    return [
        {
            "strategy": "homogeneous preloading",
            "workload": str(params.get("workload_label", params["workload_kind"])),
            "feasible": result.feasible,
            "playbacks": len(result.trace.playback_starts()),
            "max_startup_delay": result.metrics.max_startup_delay,
            "mean_startup_delay": result.metrics.mean_startup_delay,
        }
    ]


def run_baseline_comparison(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """E11 — one baseline system under the same maximal flash crowd."""
    from repro.api import VodSystem
    from repro.baselines.central_server import CentralServerModel
    from repro.baselines.full_replication import (
        full_replication_allocation,
        max_catalog_full_replication,
    )
    from repro.baselines.sourcing_only import SourcingOnlyPossessionIndex
    from repro.core.allocation import random_permutation_allocation
    from repro.core.parameters import homogeneous_population
    from repro.core.video import Catalog

    system_kind = str(params["system"])
    n = int(params["n"])
    u = float(params["u"])
    d = float(params["d"])
    c = int(params["c"])
    k = int(params["k"])
    mu = float(params["mu"])
    duration = int(params["duration"])
    seed = int(params["seed"])
    rounds = int(params["rounds"])

    if system_kind == "central_server":
        server = CentralServerModel(upload_capacity=u, storage_capacity=d)
        return [
            {
                "system": "central server sized like one box",
                "catalog": server.catalog_size,
                "catalog_scaling": "O(1)",
                "flash_crowd_served": server.can_serve(n),
                "infeasible_rounds": "n/a",
                "max_startup_delay": "n/a",
            }
        ]

    population = homogeneous_population(n, u=u, d=d)
    if system_kind == "full_replication":
        label = "full replication (Push-to-Peer [22])"
        catalog = Catalog(
            num_videos=max_catalog_full_replication(d, c),
            num_stripes=c,
            duration=duration,
        )
        allocation = full_replication_allocation(catalog, population)
    else:
        label = (
            "random stripes + swarming (paper)"
            if system_kind == "random_swarming"
            else "random stripes, sourcing only [3]"
        )
        catalog = Catalog(num_videos=int(d * n // k), num_stripes=c, duration=duration)
        allocation = random_permutation_allocation(
            catalog, population, k, random_state=seed
        )
    simulator = VodSystem.for_allocation(allocation, mu=mu).build_simulator()
    if system_kind == "sourcing_only":
        simulator._possession = SourcingOnlyPossessionIndex(
            allocation, cache_window=duration
        )
    from repro.api import create_component
    from repro.util.rng import as_generator

    workload = create_component(
        "workload", "flashcrowd", {"target_videos": [0]}, 0, mu, as_generator(seed)
    )
    result = simulator.run(workload, num_rounds=rounds)
    return [
        {
            "system": label,
            "catalog": allocation.catalog_size,
            "catalog_scaling": "Θ(n)" if system_kind != "full_replication" else "O(1)",
            "flash_crowd_served": result.feasible,
            "infeasible_rounds": result.metrics.infeasible_rounds,
            "max_startup_delay": result.metrics.max_startup_delay,
        }
    ]


def run_scenario_digest(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Scenario regression cell: run a registered scenario and digest it."""
    from repro.scenarios.replay import run_scenario

    run = run_scenario(
        str(params["scenario"]),
        seed=int(params["seed"]),
        num_rounds=int(params["rounds"]),
    )
    return [
        {
            "scenario": run.spec.name,
            "seed": run.seed,
            "rounds": run.rounds,
            "digest": run.digest,
            "infeasible_rounds": run.summary["infeasible_rounds"],
            "unmatched_requests": run.summary["unmatched_requests"],
            "total_demands": run.summary["total_demands"],
            "peak_box_load": run.summary["peak_box_load"],
        }
    ]


for _name, _runner, _desc in (
    ("threshold_design", run_threshold_design, "E5: Theorem 1 design constants at one u"),
    ("catalog_scaling", run_catalog_scaling, "E5: catalog guarantee at one n"),
    ("quality_tradeoff", run_quality_tradeoff, "E10: catalog vs bitrate at fixed upload"),
    (
        "obstruction_probability",
        run_obstruction_probability,
        "E6: obstruction bounds + Monte-Carlo at one k",
    ),
    ("churn_robustness", run_churn_robustness, "A2: feasibility at one churn level"),
    ("startup_delay", run_startup_delay, "E8: start-up delay of one workload"),
    (
        "baseline_comparison",
        run_baseline_comparison,
        "E11: one baseline system under a flash crowd",
    ),
    ("scenario_digest", run_scenario_digest, "replay digest of one registered scenario"),
):
    register_component("experiment", _name, _runner, _desc)


# ====================================================================== #
# Campaign definitions (the paper's sweeps)
# ====================================================================== #
register_campaign(
    CampaignSpec(
        name="threshold_formulas",
        description="Theorem 1 design constants c(u,mu), k(u,d,mu) and the catalog bound vs u.",
        runner="threshold_design",
        base={"n": 10_000, "d": 4.0, "mu": 1.3},
        grid={"u": (1.1, 1.2, 1.5, 2.0, 3.0, 5.0)},
        paper_claim=(
            "Theorem 1 constants: the stripe-count and replication prescriptions, "
            "the nu margin and the catalog lower bound as functions of u."
        ),
        columns=(
            "u", "c", "k", "nu", "u_prime", "d_prime", "catalog_size", "asymptotic_bound",
        ),
        benchmark="bench_threshold_formulas.py",
    )
)

register_campaign(
    CampaignSpec(
        name="catalog_scaling",
        description="The Theorem 1 catalog guarantee grows linearly with n (u=2, d=4, mu=1.3).",
        runner="catalog_scaling",
        base={"u": 2.0, "d": 4.0, "mu": 1.3},
        grid={"n": (1_000, 5_000, 20_000, 100_000)},
        paper_claim=(
            "Theorem 1: the achievable catalog m = d*n/k is linear in the system "
            "size — catalog-per-box converges as n grows."
        ),
        columns=("n", "k", "catalog", "catalog_per_box"),
        benchmark="bench_threshold_formulas.py",
    )
)

register_campaign(
    CampaignSpec(
        name="quality_tradeoff",
        description="Section 5: video quality (bitrate) vs catalog size at fixed physical upload.",
        runner="quality_tradeoff",
        base={"raw_upload": 1.0, "n": 10_000, "d": 4.0, "mu": 1.3},
        grid={"bitrate": (0.30, 0.40, 0.50, 0.65, 0.80, 0.90, 0.99, 1.00, 1.20)},
        paper_claim=(
            "Section 5: with physical upload fixed, raising the bitrate lowers "
            "u and the catalog guarantee degrades like (u-1)^3, vanishing at u <= 1."
        ),
        columns=("bitrate", "u", "scalable", "catalog", "asymptotic", "cube_approx"),
        benchmark="bench_quality_tradeoff.py",
    )
)

register_campaign(
    CampaignSpec(
        name="obstruction_probability",
        description="Lemmas 3-4 / Equation 1: obstruction probability vs replication k.",
        runner="obstruction_probability",
        base={"n": 48, "u": 1.5, "d": 3.0, "c": 6, "mu": 1.2, "seed": 7},
        points=(
            {"k": 1, "trials": 20},
            {"k": 2, "trials": 20},
            {"k": 4, "trials": 20},
            {"k": 8, "trials": 20},
            {"k": 64, "trials": 0},
            {"k": 256, "trials": 0},
        ),
        paper_claim=(
            "Lemmas 3-4 / Equation 1: the obstruction probability drops steeply "
            "with k; the exact Equation 1 sum is never looser than the paper's "
            "majorization, and the Monte-Carlo cold-start estimate sits below both."
        ),
        columns=(
            "k", "catalog", "paper_bound", "exact_eq1_bound",
            "montecarlo_estimate", "montecarlo_ci",
        ),
        benchmark="bench_obstruction_probability.py",
    )
)

register_campaign(
    CampaignSpec(
        name="churn_robustness",
        description="Feasibility under box churn without any repair mechanism (u=2, k=4).",
        runner="churn_robustness",
        base={
            "n": 60, "u": 2.0, "d": 3.0, "m": 30, "c": 4, "k": 4,
            "mu": 1.5, "rounds": 12, "outage_duration": 4, "seed": 0,
        },
        grid={"failure_probability": (0.0, 0.02, 0.05, 0.15, 0.35)},
        paper_claim=(
            "Robustness extension: replication k and the playback caches absorb "
            "moderate churn; feasibility degrades as the offline fraction grows."
        ),
        columns=(
            "failure_probability", "max_concurrent_offline", "offline_fraction_peak",
            "feasible", "infeasible_rounds", "unmatched_requests", "demands",
        ),
        benchmark="bench_churn_robustness.py",
    )
)

register_campaign(
    CampaignSpec(
        name="startup_delay",
        description="Constant 3-round start-up delay of the preloading strategy across workloads.",
        runner="startup_delay",
        base={
            "n": 60, "u": 2.0, "d": 3.0, "m": 30, "c": 4, "k": 4,
            "mu": 1.5, "rounds": 12, "seed": 0, "workload_seed": 1,
        },
        points=(
            {"workload_kind": "flashcrowd", "workload_params": {}, "workload_label": "flash crowd"},
            {
                "workload_kind": "zipf",
                "workload_params": {"arrival_rate": 4.0},
                "workload_label": "zipf",
            },
            {
                "workload_kind": "uniform",
                "workload_params": {"arrival_rate": 4.0},
                "workload_label": "uniform",
            },
            {
                "workload_kind": "cold_start",
                "workload_params": {"max_demands_per_round": 10},
                "workload_label": "cold start",
            },
        ),
        paper_claim=(
            "Constant 3-round start-up delay (preload at t, postponed requests at "
            "t+1, playback at t+2) regardless of the workload, while feasible."
        ),
        columns=(
            "workload", "strategy", "feasible", "playbacks",
            "max_startup_delay", "mean_startup_delay",
        ),
        benchmark="bench_startup_delay.py",
    )
)

register_campaign(
    CampaignSpec(
        name="baseline_comparison",
        description="Random stripe allocation + swarming vs sourcing-only, full replication, central server.",
        runner="baseline_comparison",
        base={
            "n": 48, "u": 1.5, "d": 2.0, "c": 4, "k": 3,
            "mu": 2.0, "duration": 40, "rounds": 9, "seed": 9,
        },
        grid={
            "system": ("random_swarming", "sourcing_only", "full_replication", "central_server"),
        },
        paper_claim=(
            "The paper's system wins the catalog race at equal feasibility: "
            "Theta(n) catalog and the flash crowd served, vs O(1) catalogs or a "
            "collapsing sourcing-only variant."
        ),
        columns=(
            "system", "catalog", "catalog_scaling", "flash_crowd_served",
            "infeasible_rounds", "max_startup_delay",
        ),
        benchmark="bench_baseline_comparison.py",
    )
)

register_campaign(
    CampaignSpec(
        name="scenario_regressions",
        description="Replay digests and feasibility of the registered regression scenarios.",
        runner="scenario_digest",
        base={"seed": 0, "rounds": 12},
        grid={
            "scenario": (
                "steady_state",
                "flashcrowd_spike",
                "adaptive_adversary",
                "hetero_upload_tiers",
                "churn_storm",
                "catalog_growth_ramp",
                "warm_cold_restart",
                "near_threshold_load",
            ),
        },
        paper_claim=(
            "One reproducible digest per named scenario: the claim-to-scenario "
            "map of EXPERIMENTS.md backed by content-addressed runs."
        ),
        columns=(
            "scenario", "seed", "rounds", "digest", "infeasible_rounds",
            "unmatched_requests", "total_demands", "peak_box_load",
        ),
        benchmark="",
    )
)

register_campaign(
    CampaignSpec(
        name="workload_realism",
        description="Digests and feasibility of the workload-realism tier: "
        "Zipf steady/drifting demand, trace replay, and the hierarchical "
        "CDN baseline.",
        runner="scenario_digest",
        base={"seed": 0, "rounds": 12},
        grid={
            "scenario": (
                "zipf_steady",
                "zipf_drift",
                "trace_replay",
                "cdn_hybrid_baseline",
            ),
        },
        paper_claim=(
            "The catalog-vs-replication tradeoff measured under realistic "
            "demand: stationary Zipf popularity, scheduled popularity drift "
            "with a rotating promoted hot set, recorded trace replay, and "
            "the CDN/vCDN/muCDN hierarchy operators actually deploy — all "
            "feasible and replay-deterministic on the same engine as the "
            "paper's scheme."
        ),
        columns=(
            "scenario", "seed", "rounds", "digest", "infeasible_rounds",
            "unmatched_requests", "total_demands", "peak_box_load",
        ),
        benchmark="",
    )
)


# The fault-injection chaos runner lives with the faults subsystem
# (which imports nothing from repro.orchestrate, so there is no cycle);
# its CampaignSpec is built here to keep this module the single
# registration point campaign workers import.
from repro.faults.campaign import CHAOS_SCENARIOS, run_fault_recovery  # noqa: E402

FAULT_RECOVERY_CAMPAIGN = CampaignSpec(
    name="fault_recovery",
    description="Chaos scenarios: checkpoint/restore parity through fault windows, "
    "torn-checkpoint detection, and solver-fallback metric preservation.",
    runner="fault_recovery",
    base={"seed": 0},
    grid={"scenario": CHAOS_SCENARIOS},
    paper_claim=(
        "Robustness of the reproduction itself: injected faults (crash "
        "bursts, brownouts, solver-budget exhaustion) replay "
        "deterministically, checkpoints recover bit-identically through "
        "fault windows, damaged checkpoints fail typed, and the solver "
        "fallback chain degrades without changing any per-round metric."
    ),
    columns=(
        "scenario", "seed", "rounds", "digest", "recovered_matches",
        "truncated_detected", "degraded_rounds", "matches_fault_free",
    ),
    benchmark="",
)

register_component(
    "experiment",
    "fault_recovery",
    run_fault_recovery,
    "chaos probe: checkpoint/restore parity through an injected fault window",
)
register_campaign(FAULT_RECOVERY_CAMPAIGN)
