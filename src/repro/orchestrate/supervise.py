"""A supervised process pool for campaign execution.

``ProcessPoolExecutor.map`` has exactly the failure modes a long
campaign cannot afford: one SIGKILLed worker poisons every in-flight
future with ``BrokenProcessPool``, a hung worker stalls the whole run
forever, and a deterministic crasher takes the campaign down with it.
:func:`run_supervised` wraps the pool with the supervision loop the
orchestrator needs:

* **timeouts** — each submitted cell carries a deadline; when it expires
  the pool's workers are killed, the timed-out cell is charged one
  attempt, and every *other* in-flight cell is requeued uncharged;
* **crash recovery** — a broken pool is rebuilt and the in-flight cells
  are requeued without being charged (the kill is not attributable to
  any one of them); the pool then runs in *isolation mode* — one cell in
  flight at a time — until each suspect has cleared, so a deterministic
  crasher is identified and charged instead of poisoning its neighbours;
* **bounded retry** — failed attempts are retried with exponential
  backoff; a cell that exhausts its retries is *quarantined* and
  reported, never fatal;
* **as-it-finishes delivery** — completed cells reach the caller's
  callback immediately, preserving the incremental-persistence property
  that makes killed campaigns resumable.

Determinism note: retries, reordering and pool rebuilds never change
*what* a cell computes (cells are pure functions of their params), so a
store produced under injected worker crashes is byte-identical to a
fault-free one once every cell has completed.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["SupervisionPolicy", "QuarantinedCell", "run_supervised"]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of the supervision loop.

    ``cell_timeout`` is the per-attempt wall-clock budget in seconds
    (``None`` disables timeouts); ``max_retries`` is the number of
    *re*-tries after the first failed attempt, so a cell is quarantined
    on failure number ``max_retries + 1``.
    """

    cell_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError(
                f"cell_timeout must be positive or None, got {self.cell_timeout}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.backoff_cap, self.backoff_base * (2.0 ** max(attempt - 1, 0)))


@dataclass(frozen=True)
class QuarantinedCell:
    """A cell that exhausted its retry budget; reported, not fatal."""

    index: int
    label: str
    attempts: int
    reason: str


class _Item:
    __slots__ = ("index", "payload", "label", "attempts")

    def __init__(self, index: int, payload: Any, label: str):
        self.index = index
        self.payload = payload
        self.label = label
        self.attempts = 0


def _kill_workers(executor: ProcessPoolExecutor) -> None:
    # There is no public API for tearing down stuck workers; killing the
    # processes directly is the documented workaround (shutdown() would
    # join them and hang forever behind a worker that never returns).
    for process in list(getattr(executor, "_processes", {}).values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead race
            pass
    executor.shutdown(wait=True, cancel_futures=True)


def run_supervised(
    payloads: Sequence[Any],
    worker: Callable[[Any], Any],
    max_workers: int,
    policy: Optional[SupervisionPolicy] = None,
    on_complete: Optional[Callable[[int, Any], None]] = None,
    labels: Optional[Sequence[str]] = None,
) -> Tuple[List[Optional[Any]], List[QuarantinedCell]]:
    """Run ``worker`` over ``payloads`` under supervision.

    Returns ``(results, quarantined)`` where ``results[i]`` is the
    worker's return value for ``payloads[i]`` (``None`` when that cell
    was quarantined).  ``on_complete(index, result)`` fires as each cell
    finishes, before the function returns — persist there to keep
    interrupted runs resumable.
    """
    policy = policy or SupervisionPolicy()
    if max_workers < 1:
        raise ValueError(f"max_workers must be positive, got {max_workers}")
    labels = list(labels) if labels is not None else [str(i) for i in range(len(payloads))]
    if len(labels) != len(payloads):
        raise ValueError("need exactly one label per payload")

    queue = deque(_Item(i, payload, labels[i]) for i, payload in enumerate(payloads))
    results: List[Optional[Any]] = [None] * len(payloads)
    quarantined: List[QuarantinedCell] = []
    suspects: set = set()  # indexes that were in flight during a pool break
    executor = ProcessPoolExecutor(max_workers=max_workers)
    in_flight: Dict[Any, _Item] = {}
    deadlines: Dict[Any, float] = {}

    def _charge(item: _Item, reason: str) -> None:
        item.attempts += 1
        suspects.discard(item.index)
        if item.attempts > policy.max_retries:
            quarantined.append(
                QuarantinedCell(item.index, item.label, item.attempts, reason)
            )
        else:
            if policy.backoff_base > 0:
                time.sleep(policy.backoff(item.attempts))
            suspects.add(item.index)  # retried cells stay isolated
            queue.append(item)

    def _rebuild_pool() -> None:
        nonlocal executor
        _kill_workers(executor)
        executor = ProcessPoolExecutor(max_workers=max_workers)

    try:
        while queue or in_flight:
            # Isolation mode: while any crash suspect is unresolved, run
            # one cell at a time so the next crash is attributable.
            limit = 1 if suspects else max_workers
            while queue and len(in_flight) < limit:
                item = queue.popleft()
                future = executor.submit(worker, item.payload)
                in_flight[future] = item
                if policy.cell_timeout is not None:
                    deadlines[future] = time.monotonic() + policy.cell_timeout

            timeout = None
            if deadlines:
                timeout = max(min(deadlines.values()) - time.monotonic(), 0.0)
            done, _ = wait(in_flight, timeout=timeout, return_when=FIRST_COMPLETED)

            if not done:
                # A deadline expired with nothing finished: the expired
                # cells are charged, everything else requeues uncharged.
                now = time.monotonic()
                expired = [f for f, d in deadlines.items() if d <= now]
                survivors = [f for f in in_flight if f not in expired]
                _rebuild_pool()
                for future in survivors:
                    item = in_flight.pop(future)
                    suspects.discard(item.index)
                    queue.appendleft(item)
                for future in expired:
                    item = in_flight.pop(future)
                    _charge(item, f"timed out after {policy.cell_timeout}s")
                deadlines.clear()
                continue

            batch = [(future, in_flight.pop(future)) for future in done]
            broken_items: List[_Item] = []
            for future, item in batch:
                deadlines.pop(future, None)
                error = future.exception()
                if error is None:
                    results[item.index] = future.result()
                    suspects.discard(item.index)
                    if on_complete is not None:
                        on_complete(item.index, results[item.index])
                elif isinstance(error, BrokenProcessPool):
                    broken_items.append(item)
                else:
                    _charge(item, f"{type(error).__name__}: {error}")
            if broken_items:
                if not in_flight and len(broken_items) == 1:
                    # The cell was alone in the pool (isolation mode or a
                    # lone straggler): the crash is attributable — charge.
                    _charge(broken_items[0], "worker process died (SIGKILL/crash)")
                else:
                    # Several cells shared the broken pool: none of them
                    # can be blamed, so all requeue uncharged as suspects
                    # and run isolated until cleared.
                    for item in broken_items:
                        suspects.add(item.index)
                        queue.appendleft(item)
                for future, item in list(in_flight.items()):
                    suspects.add(item.index)
                    queue.appendleft(item)
                in_flight.clear()
                deadlines.clear()
                _rebuild_pool()
    finally:
        _kill_workers(executor)
    return results, quarantined
