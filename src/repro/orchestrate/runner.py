"""Campaign execution: incremental, resumable, optionally process-parallel.

:func:`run_campaign` resolves a :class:`~repro.orchestrate.spec.CampaignSpec`
into cells, skips every cell whose content address is already in the
:class:`~repro.orchestrate.store.ResultsStore`, and executes the missing
ones — serially or over a process pool.  Each completed cell is persisted
*as it finishes* (atomic write), so a campaign killed mid-run keeps its
completed cells and a subsequent ``resume`` re-executes only the gap.

Cell execution is deterministic by construction: a cell's parameters
fully determine its result (runners derive any internal randomness from
the cell's ``seed`` parameter, via the same
:func:`repro.util.rng.spawn_seed_sequences` discipline the parallel
Monte-Carlo drivers use), so executing in a worker process, in a
different order, or on a different day produces the same rows — and the
same stored bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.orchestrate.spec import CampaignSpec, CellSpec
from repro.orchestrate.store import ResultsStore
from repro.orchestrate.supervise import QuarantinedCell, SupervisionPolicy, run_supervised

__all__ = ["CellExecutionError", "ExecutionReport", "execute_cell", "execute_campaign_rows", "run_campaign"]


class CellExecutionError(RuntimeError):
    """A cell's runner raised or returned something other than row dicts."""


def _resolve_runner(name: str) -> Callable[[Mapping[str, Any]], Any]:
    # Importing the campaign definitions registers the built-in experiment
    # runners — required in fresh worker processes, harmless elsewhere.
    import repro.orchestrate.campaigns  # noqa: F401
    from repro.api.registry import component_factory

    return component_factory("experiment", name)


def execute_cell(payload: Tuple[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Execute one ``(runner_name, params)`` cell; top-level so pools can pickle it."""
    runner_name, params = payload
    if os.environ.get("REPRO_FAULTS"):
        # Chaos hook for the supervision tests and the CI chaos-smoke
        # job: injected crashes/hangs/errors live *outside* the cell
        # params, so faulted and clean stores stay byte-comparable.
        from repro.faults.process import maybe_inject_worker_fault

        maybe_inject_worker_fault(label=f"cell:{runner_name}")
    runner = _resolve_runner(runner_name)
    outcome = runner(params)
    if isinstance(outcome, Mapping):
        outcome = [outcome]
    if not isinstance(outcome, (list, tuple)) or not all(
        isinstance(row, Mapping) for row in outcome
    ):
        raise CellExecutionError(
            f"experiment runner {runner_name!r} must return a row dict or a "
            f"list of row dicts, got {type(outcome).__name__}"
        )
    return [dict(row) for row in outcome]


@dataclass
class ExecutionReport:
    """Outcome of one :func:`run_campaign` invocation."""

    campaign: str
    #: Cell keys of the whole campaign, in sweep order.
    cell_keys: List[str] = field(default_factory=list)
    #: Keys executed by *this* invocation.
    executed: List[str] = field(default_factory=list)
    #: Keys already present in the store and reused as-is.
    reused: List[str] = field(default_factory=list)
    #: Cells that exhausted their retry budget under supervision.
    #: Reported, never fatal; the campaign is simply incomplete.
    quarantined: List[QuarantinedCell] = field(default_factory=list)

    @property
    def total_cells(self) -> int:
        """Number of cells the campaign resolves to."""
        return len(self.cell_keys)

    @property
    def complete(self) -> bool:
        """Whether every cell of the campaign is now in the store."""
        return len(self.executed) + len(self.reused) == self.total_cells

    def describe(self) -> str:
        """One-line human summary (what the CLI prints)."""
        state = "complete" if self.complete else "INCOMPLETE"
        line = (
            f"{self.campaign}: {self.total_cells} cells — "
            f"{len(self.executed)} executed, {len(self.reused)} reused ({state})"
        )
        if self.quarantined:
            line += f", {len(self.quarantined)} quarantined"
        return line


def run_campaign(
    campaign: CampaignSpec,
    store: ResultsStore,
    n_jobs: Optional[int] = None,
    force: bool = False,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    policy: Optional[SupervisionPolicy] = None,
) -> ExecutionReport:
    """Execute the campaign's missing cells against ``store``.

    Parameters
    ----------
    n_jobs:
        ``None``/``1`` for serial execution, ``-1`` for one worker per
        CPU, otherwise a worker count (the same spec the Monte-Carlo
        estimators take).
    force:
        Re-execute every cell even if its key is already stored.
    max_cells:
        Execute at most this many *pending* cells, then return (the
        campaign-smoke CI step and the kill-resume tests use this to
        leave a campaign deliberately incomplete).
    progress:
        Optional callback receiving one human line per executed cell.
    policy:
        Supervision knobs for the parallel path (per-cell timeout,
        retry budget, backoff).  Parallel campaigns always run under the
        supervised pool — a SIGKILLed or hung worker costs retries, not
        the campaign; cells that exhaust their retries are *quarantined*
        on the report instead of raising.  The serial path executes
        in-process and propagates errors directly (``policy`` ignored).

    Returns the :class:`ExecutionReport`; ``report.executed`` is empty
    exactly when the store already held every cell — the resume-is-a-no-op
    property the CLI's ``resume --expect-complete`` asserts.
    """
    from repro.analysis.montecarlo import _resolve_jobs

    say = progress or (lambda message: None)
    store.write_campaign_index(campaign)
    cells = campaign.cells()
    report = ExecutionReport(campaign=campaign.name, cell_keys=[c.key for c in cells])

    pending: List[CellSpec] = []
    for cell in cells:
        if not force and store.has(cell.key):
            report.reused.append(cell.key)
        else:
            pending.append(cell)
    if max_cells is not None:
        pending = pending[: max(int(max_cells), 0)]
    if not pending:
        return report

    # Runners get a copy: an in-place-normalizing runner must not change
    # the params (and therefore the key) the result is stored under.
    payloads = [(cell.runner, dict(cell.params)) for cell in pending]
    jobs = _resolve_jobs(n_jobs)
    if jobs == 1 or len(payloads) <= 1:
        for cell, rows in zip(pending, map(execute_cell, payloads)):
            store.put(cell, rows)
            report.executed.append(cell.key)
            say(f"  [{len(report.executed)}/{len(pending)}] {cell.key[:12]} {cell.label()}")
        return report

    def _persist(index: int, rows: List[Dict[str, Any]]) -> None:
        cell = pending[index]
        store.put(cell, rows)
        report.executed.append(cell.key)
        say(f"  [{len(report.executed)}/{len(pending)}] {cell.key[:12]} {cell.label()}")

    _, quarantined = run_supervised(
        payloads,
        worker=execute_cell,
        max_workers=min(jobs, len(payloads)),
        policy=policy,
        on_complete=_persist,
        labels=[cell.label() for cell in pending],
    )
    report.quarantined.extend(quarantined)
    for item in quarantined:
        say(f"  QUARANTINED {pending[item.index].key[:12]} {item.label}: {item.reason}")
    return report


def execute_campaign_rows(campaign: CampaignSpec) -> List[Dict[str, Any]]:
    """Execute every cell in-process and return the concatenated rows.

    The store-free path the thin benchmark wrappers use: the table a
    ``bench_*.py`` module prints is exactly the table the campaign
    persists, produced by the same runner code.
    """
    rows: List[Dict[str, Any]] = []
    for cell in campaign.cells():
        rows.extend(execute_cell((cell.runner, cell.params)))
    return rows
