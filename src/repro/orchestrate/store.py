"""The content-addressed on-disk results store.

Layout under the store root::

    objects/<key[:2]>/<key>.json     one JSON record per completed cell
    campaigns/<name>.json            campaign index: spec + ordered cell keys

Cell records are keyed by :func:`~repro.orchestrate.spec.cell_key` —
the SHA-256 of the resolved invocation — and contain the runner name,
the resolved parameters and the result rows.  Records carry **no
timestamps or host details**: writing the same cell twice produces the
same bytes, which is what makes campaign re-runs no-ops and the rendered
reports byte-stable.

Writes are atomic (temp file + ``os.replace``), so a campaign killed
mid-cell never leaves a torn record; resuming simply re-executes the
missing keys.  Against damage that happens *after* a clean write — torn
copies, bit rot, hand edits — every record also embeds a ``sha256``
checksum of its own body; :meth:`ResultsStore.get` verifies it on every
read, :meth:`ResultsStore.verify` sweeps the whole object tree, and
:meth:`ResultsStore.repair` deletes damaged records so a campaign
``resume`` re-runs exactly the damaged cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.orchestrate.spec import CampaignSpec, CellSpec, canonical_json

__all__ = ["StoreError", "StoreIntegrityError", "StoreDamage", "ResultsStore"]

_KEY_LENGTH = 64  # hex SHA-256


class StoreError(RuntimeError):
    """A malformed key, record or index in the results store."""


class StoreIntegrityError(StoreError):
    """A stored record is corrupt: unparseable, mis-keyed or checksum-failed."""


def _check_key(key: str) -> str:
    if len(key) != _KEY_LENGTH or any(c not in "0123456789abcdef" for c in key):
        raise StoreError(f"malformed cell key {key!r} (expected hex SHA-256)")
    return key


def _record_checksum(record: Mapping[str, Any]) -> str:
    """SHA-256 of a record's body, excluding the ``sha256`` field itself."""
    body = {name: value for name, value in record.items() if name != "sha256"}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


class StoreDamage:
    """One damaged object file found by :meth:`ResultsStore.verify`."""

    __slots__ = ("key", "path", "reason")

    def __init__(self, key: str, path: Path, reason: str):
        self.key = key
        self.path = path
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover
        return f"StoreDamage(key={self.key[:12]}..., reason={self.reason!r})"


class ResultsStore:
    """Content-addressed store of campaign cell results.

    >>> import tempfile
    >>> from repro.orchestrate.spec import CellSpec
    >>> store = ResultsStore(tempfile.mkdtemp())
    >>> cell = CellSpec(runner="demo", params={"u": 2.0})
    >>> store.has(cell.key)
    False
    >>> _ = store.put(cell, rows=[{"u": 2.0, "feasible": True}])
    >>> store.get(cell.key)["rows"]
    [{'u': 2.0, 'feasible': True}]
    >>> len(store)
    1
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # Object records
    # ------------------------------------------------------------------ #
    def _object_path(self, key: str) -> Path:
        _check_key(key)
        return self.root / "objects" / key[:2] / f"{key}.json"

    def has(self, key: str) -> bool:
        """Whether a completed record exists for ``key``."""
        return self._object_path(key).is_file()

    def put(self, cell: CellSpec, rows: List[Mapping[str, Any]]) -> str:
        """Persist the result ``rows`` of ``cell`` atomically; returns the key.

        The record is deterministic: same cell + same rows ⇒ same bytes.
        """
        key = cell.key
        record = {
            "key": key,
            "runner": cell.runner,
            "params": cell.params,
            "rows": [dict(row) for row in rows],
        }
        record["sha256"] = _record_checksum(record)
        path = self._object_path(key)
        self._write_atomic(path, canonical_json(record) + "\n")
        return key

    def get(self, key: str) -> Dict[str, Any]:
        """Load the record stored under ``key``, verifying its checksum.

        Raises :class:`StoreIntegrityError` for corrupt records — torn
        JSON, a key that doesn't match the file, or a checksum mismatch.
        Records written before checksums existed (no ``sha256`` field)
        load without verification; :meth:`verify` flags them.
        """
        path = self._object_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            raise StoreError(f"no record for cell {key} in {self.root}") from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # Bit rot can break the UTF-8 encoding before JSON parsing
            # even starts; both read failures are the same damage class.
            raise StoreIntegrityError(f"corrupt record {path}: {exc}") from None
        if record.get("key") != key:
            raise StoreIntegrityError(
                f"record {path} claims key {record.get('key')!r}, expected {key}"
            )
        stored = record.get("sha256")
        if stored is not None and stored != _record_checksum(record):
            raise StoreIntegrityError(
                f"corrupt record {path}: checksum mismatch "
                f"(stored {str(stored)[:12]}..., recomputed differs)"
            )
        return record

    def keys(self) -> List[str]:
        """All stored cell keys, sorted."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(
            path.stem
            for shard in objects.iterdir()
            if shard.is_dir()
            for path in shard.glob("*.json")
        )

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------ #
    # Integrity
    # ------------------------------------------------------------------ #
    def verify(self) -> List[StoreDamage]:
        """Sweep every object file and report the damaged ones.

        Strict: a record without a ``sha256`` field counts as damaged
        (it cannot be distinguished from one whose checksum was torn
        off).  Returns an empty list for a healthy store.
        """
        damage: List[StoreDamage] = []
        for key in self.keys():
            path = self._object_path(key)
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                damage.append(StoreDamage(key, path, f"unparseable JSON: {exc}"))
                continue
            if not isinstance(record, dict) or record.get("key") != key:
                damage.append(StoreDamage(key, path, "key mismatch"))
                continue
            stored = record.get("sha256")
            if stored is None:
                damage.append(StoreDamage(key, path, "missing checksum"))
            elif stored != _record_checksum(record):
                damage.append(StoreDamage(key, path, "checksum mismatch"))
        return damage

    def repair(self, damage: Optional[List[StoreDamage]] = None) -> List[str]:
        """Delete damaged object files so ``resume`` re-runs those cells.

        ``damage`` defaults to a fresh :meth:`verify` sweep.  Returns the
        keys whose records were removed.  Campaign indexes are untouched
        — they still name the removed keys, which is exactly what lets
        ``resume`` re-execute only the damaged cells.
        """
        if damage is None:
            damage = self.verify()
        removed: List[str] = []
        for item in damage:
            try:
                os.unlink(item.path)
            except FileNotFoundError:
                continue
            removed.append(item.key)
        return removed

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    # ------------------------------------------------------------------ #
    # Campaign indexes
    # ------------------------------------------------------------------ #
    def _index_path(self, name: str) -> Path:
        if not name or "/" in name or name.startswith("."):
            raise StoreError(f"malformed campaign name {name!r}")
        return self.root / "campaigns" / f"{name}.json"

    def write_campaign_index(self, campaign: CampaignSpec) -> Path:
        """Record the campaign spec and its resolved cell keys.

        Written *before* execution starts, so an interrupted campaign's
        membership is known to ``resume`` and ``report`` even while some
        cells are still missing.
        """
        payload = {
            "name": campaign.name,
            "spec": campaign.to_dict(),
            "cells": campaign.cell_keys(),
        }
        path = self._index_path(campaign.name)
        self._write_atomic(path, canonical_json(payload) + "\n")
        return path

    def read_campaign_index(self, name: str) -> Dict[str, Any]:
        """Load a campaign index previously written by a run."""
        path = self._index_path(name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            raise StoreError(
                f"campaign {name!r} has no index in {self.root} (never run?)"
            ) from None

    def campaign_names(self) -> List[str]:
        """Campaigns with an index in this store, sorted."""
        campaigns = self.root / "campaigns"
        if not campaigns.is_dir():
            return []
        return sorted(path.stem for path in campaigns.glob("*.json"))

    def missing_cells(self, campaign: CampaignSpec) -> List[CellSpec]:
        """The campaign's cells that have no stored record yet."""
        return [cell for cell in campaign.cells() if not self.has(cell.key)]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover
        return f"ResultsStore({str(self.root)!r}, cells={len(self)})"
