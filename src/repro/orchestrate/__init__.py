"""repro.orchestrate — resumable experiment campaigns over a results store.

The paper's claims are measured by *campaigns*: declarative sweeps of an
experiment runner over grid/list axes (scenario, solver, scale tier,
seeds, engine knobs).  This package turns the former pile of ad-hoc
benchmark scripts into an auditable pipeline:

* :class:`~repro.orchestrate.spec.CampaignSpec` — a JSON-serializable
  sweep declaration; each resolved cell is content-addressed by the
  SHA-256 of its resolved parameters (:func:`~repro.orchestrate.spec.cell_key`);
* :class:`~repro.orchestrate.store.ResultsStore` — an on-disk
  content-addressed store of cell results, so re-runs are incremental
  and interrupted campaigns resume from their completed cells;
* :func:`~repro.orchestrate.runner.run_campaign` — executes the pending
  cells, optionally over a process pool, persisting each cell as it
  completes;
* :mod:`~repro.orchestrate.campaigns` — the registered campaign
  definitions (the migrated ``benchmarks/bench_*.py`` experiments);
* :mod:`~repro.orchestrate.report` — renders the stored results into
  byte-stable Markdown tables under ``docs/results/``, including the
  claim-map index that EXPERIMENTS.md links into.

``python -m repro.orchestrate`` (list/run/resume/report/diff) is the
command-line surface over all of it.
"""

from repro.orchestrate.campaigns import (
    all_campaigns,
    campaign_names,
    get_campaign,
    register_campaign,
)
from repro.orchestrate.report import generate_reports, render_campaign_report
from repro.orchestrate.runner import ExecutionReport, execute_campaign_rows, run_campaign
from repro.orchestrate.spec import STORE_FORMAT_VERSION, CampaignSpec, CellSpec, cell_key
from repro.orchestrate.store import ResultsStore

__all__ = [
    "STORE_FORMAT_VERSION",
    "CampaignSpec",
    "CellSpec",
    "cell_key",
    "ResultsStore",
    "ExecutionReport",
    "run_campaign",
    "execute_campaign_rows",
    "register_campaign",
    "get_campaign",
    "campaign_names",
    "all_campaigns",
    "generate_reports",
    "render_campaign_report",
]
