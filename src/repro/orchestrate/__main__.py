"""``python -m repro.orchestrate`` — see :mod:`repro.orchestrate.cli`."""

import sys

from repro.orchestrate.cli import main

if __name__ == "__main__":
    sys.exit(main())
