"""Declarative campaign specifications and content-addressed cell keys.

A :class:`CampaignSpec` declares one experiment sweep as plain data: the
name of a registered *experiment runner* (an ``"experiment"`` component
in :mod:`repro.api.registry`), a dict of fixed base parameters, *grid*
axes (cartesian product) and explicit *list* points.  Resolving the spec
yields :class:`CellSpec` cells — one runner invocation each — whose
identity is the SHA-256 of the canonical JSON of ``(store format,
runner, resolved parameters)``.  Two campaigns that resolve a cell to
the same runner and parameters therefore share the stored result, and a
re-run of an unchanged campaign is a no-op against a warm store.

Specs round-trip through JSON (:meth:`CampaignSpec.to_dict` /
:meth:`CampaignSpec.from_dict`) so the store can record exactly what was
swept alongside the results it addresses.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "STORE_FORMAT_VERSION",
    "canonical_json",
    "cell_key",
    "CellSpec",
    "CampaignSpec",
]

#: Bump when the stored cell payload layout (or the key derivation)
#: changes incompatibly — every cell key embeds it, so old store entries
#: simply stop being addressed rather than being misread.
STORE_FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/containers to plain JSON types (recursively)."""
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if hasattr(value, "item"):  # numpy scalar
        return _jsonable(value.item())
    raise TypeError(f"value {value!r} of type {type(value).__name__} is not JSON-able")


def canonical_json(payload: Any) -> str:
    """Canonical JSON: sorted keys, no whitespace, numpy coerced."""
    return json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))


def cell_key(runner: str, params: Mapping[str, Any]) -> str:
    """Content address of one cell: SHA-256 of the resolved invocation.

    The digest covers the store format version, the runner name and the
    fully resolved parameter dict — everything that determines the cell's
    result — and nothing else (no campaign name, no timestamps), so the
    same invocation is stored once no matter which campaign asked for it.

    >>> key = cell_key("threshold_design", {"u": 2.0, "n": 10000})
    >>> key == cell_key("threshold_design", {"n": 10000, "u": 2.0})
    True
    >>> len(key)
    64
    """
    payload = {
        "store_format": STORE_FORMAT_VERSION,
        "runner": str(runner),
        "params": params,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CellSpec:
    """One resolved campaign cell: a runner name plus its parameters."""

    runner: str
    params: Dict[str, Any]

    @property
    def key(self) -> str:
        """The cell's content address (:func:`cell_key`)."""
        return cell_key(self.runner, self.params)

    def label(self) -> str:
        """Compact human label: the non-base parameters, canonically ordered."""
        return canonical_json(self.params)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment sweep.

    Attributes
    ----------
    name:
        Registry key and CLI handle.
    description:
        One-line human description.
    runner:
        Name of the registered ``"experiment"`` component executed per
        cell (signature ``f(params) -> list-of-row-dicts``).
    base:
        Parameters shared by every cell.
    grid:
        Named axes swept as a cartesian product (axis order is the
        declaration order; earlier axes vary slowest).
    points:
        Explicit extra parameter dicts (each merged over ``base``),
        appended after the grid cells.
    paper_claim:
        The paper claim the campaign quantifies — rendered into the
        claim-map index of ``docs/results/``.
    columns:
        Preferred column order of the report table (unknown columns are
        appended in first-seen order).
    benchmark:
        The ``benchmarks/bench_*.py`` module this campaign migrates, if
        any (provenance for EXPERIMENTS.md).
    """

    name: str
    description: str
    runner: str
    base: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)
    points: Tuple[Dict[str, Any], ...] = ()
    paper_claim: str = ""
    columns: Tuple[str, ...] = ()
    benchmark: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must not be empty")
        if not self.runner:
            raise ValueError(f"campaign {self.name!r} must declare a runner")
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(
            self, "grid", {str(k): tuple(v) for k, v in dict(self.grid).items()}
        )
        for axis, values in self.grid.items():
            if not values:
                raise ValueError(f"campaign {self.name!r}: axis {axis!r} has no values")
        object.__setattr__(self, "points", tuple(dict(p) for p in self.points))
        object.__setattr__(self, "columns", tuple(str(c) for c in self.columns))

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #
    def cells(self) -> List[CellSpec]:
        """Resolve the sweep into its cells (grid product, then points).

        >>> spec = CampaignSpec(
        ...     name="demo", description="", runner="r",
        ...     base={"n": 10}, grid={"u": (1.5, 2.0), "k": (2, 4)},
        ... )
        >>> [c.params for c in spec.cells()]  # doctest: +NORMALIZE_WHITESPACE
        [{'n': 10, 'u': 1.5, 'k': 2}, {'n': 10, 'u': 1.5, 'k': 4},
         {'n': 10, 'u': 2.0, 'k': 2}, {'n': 10, 'u': 2.0, 'k': 4}]
        """
        cells: List[CellSpec] = []
        axes = list(self.grid)
        if axes:
            for combo in itertools.product(*(self.grid[a] for a in axes)):
                params = dict(self.base)
                params.update(zip(axes, combo))
                cells.append(CellSpec(runner=self.runner, params=params))
        for point in self.points:
            params = dict(self.base)
            params.update(point)
            cells.append(CellSpec(runner=self.runner, params=params))
        if not cells:
            cells.append(CellSpec(runner=self.runner, params=dict(self.base)))
        return cells

    def cell_keys(self) -> List[str]:
        """Content addresses of all resolved cells, in sweep order."""
        return [cell.key for cell in self.cells()]

    #: Axis values a grid cell varied, for report provenance rows.
    def axis_values(self, cell: CellSpec) -> Dict[str, Any]:
        """The subset of ``cell.params`` the sweep varies (axes + points)."""
        varied = set(self.grid)
        for point in self.points:
            varied.update(point)
        return {k: v for k, v in cell.params.items() if k in varied}

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready, round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "runner": self.runner,
            "base": dict(self.base),
            "grid": {axis: list(values) for axis, values in self.grid.items()},
            "points": [dict(p) for p in self.points],
            "paper_claim": self.paper_claim,
            "columns": list(self.columns),
            "benchmark": self.benchmark,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            runner=str(data["runner"]),
            base=dict(data.get("base", {})),
            grid={
                str(axis): tuple(values)
                for axis, values in dict(data.get("grid", {})).items()
            },
            points=tuple(dict(p) for p in data.get("points", ())),
            paper_claim=str(data.get("paper_claim", "")),
            columns=tuple(str(c) for c in data.get("columns", ())),
            benchmark=str(data.get("benchmark", "")),
        )
