"""Seed-deterministic fault plans and the driver that applies them.

A *fault plan* is a precomputed schedule of :class:`FaultEvent`s, built
once at scenario-compile time from a dedicated child stream of the
scenario master seed.  Precomputing has two consequences the recovery
guarantees rely on:

* **determinism** — the same spec and seed always yield the same events,
  so faulted runs replay bit-identically (goldens, oracle spot-checks);
* **snapshot safety** — the driver is stateless between rounds (events
  are keyed by absolute round and carry explicit target values), so it
  pickles with the session and a restore mid-fault-window replays the
  remaining events exactly.

Plans are registered as ``"fault"`` components; factories receive
``(params, population, horizon, rng)`` and return a :class:`FaultPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.api.registry import create_component, register_component

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultDriver",
    "build_fault_driver",
]

#: Actions a fault event may apply to the engine.
_ACTIONS = ("set_capacity", "set_budget", "clear_budget")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled mutation of the live engine.

    ``action`` is ``"set_capacity"`` (set ``box_id``'s upload to
    ``value`` bitrates — 0.0 models a crash, the original upload a
    rejoin), ``"set_budget"`` (cap the matcher's per-round augmentation
    searches at ``int(value)``) or ``"clear_budget"``.
    """

    time: int
    action: str
    box_id: int = -1
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
        if self.action not in _ACTIONS:
            raise ValueError(
                f"action must be one of {_ACTIONS}, got {self.action!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A fault component's full precomputed schedule."""

    kind: str
    events: Tuple[FaultEvent, ...]


class FaultDriver:
    """Applies scheduled fault events to an engine, round by round.

    The driver holds no mutable state: :meth:`apply` looks up the events
    of the given absolute round and applies them through the engine's
    mutation hooks.  It is picklable (sessions snapshot it) and safe to
    call exactly once per round, which :meth:`VodSession.step` does
    before the engine steps.
    """

    def __init__(self, events: Sequence[FaultEvent]):
        ordered = sorted(events, key=lambda e: (e.time, e.action, e.box_id))
        self._events: Tuple[FaultEvent, ...] = tuple(ordered)
        by_time: Dict[int, List[FaultEvent]] = {}
        for event in self._events:
            by_time.setdefault(int(event.time), []).append(event)
        self._by_time = {t: tuple(evs) for t, evs in by_time.items()}

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """All scheduled events, ordered by round."""
        return self._events

    def events_at(self, time: int) -> Tuple[FaultEvent, ...]:
        """The events scheduled for round ``time`` (possibly empty)."""
        return self._by_time.get(int(time), ())

    def apply(self, engine, time: int) -> int:
        """Apply round ``time``'s events to ``engine``; returns the count."""
        events = self.events_at(time)
        for event in events:
            if event.action == "set_capacity":
                engine.set_upload_capacity(event.box_id, event.value)
            elif event.action == "set_budget":
                engine.set_solver_budget(int(event.value))
            else:  # clear_budget
                engine.set_solver_budget(None)
        return len(events)


def _window(params: Mapping[str, Any], horizon: int) -> Tuple[int, int]:
    """Validated ``(start, duration)`` of a fault window."""
    start = int(params.get("start", 2))
    duration = int(params.get("duration", 3))
    if start < 0:
        raise ValueError(f"fault start must be non-negative, got {start}")
    if duration <= 0:
        raise ValueError(f"fault duration must be positive, got {duration}")
    if start >= horizon:
        raise ValueError(
            f"fault start {start} is beyond the scenario horizon {horizon}"
        )
    return start, duration


def _chosen_boxes(
    params: Mapping[str, Any], population, rng: np.random.Generator
) -> List[int]:
    """Deterministically draw the affected boxes from the fault stream."""
    n = population.n
    if "boxes" in params:
        boxes = [int(b) for b in params["boxes"]]
        for box in boxes:
            if not 0 <= box < n:
                raise ValueError(f"fault box {box} outside the population of {n}")
        return sorted(set(boxes))
    count = params.get("count")
    if count is None:
        fraction = float(params.get("fraction", 0.1))
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fault fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(fraction * n)))
    count = int(count)
    if not 0 < count <= n:
        raise ValueError(f"fault count must be in [1, {n}], got {count}")
    drawn = rng.choice(n, size=count, replace=False)
    return sorted(int(b) for b in drawn)


def box_crash_plan(
    params: Mapping[str, Any], population, horizon: int, rng: np.random.Generator
) -> FaultPlan:
    """A crash/rejoin burst: chosen boxes upload nothing for a window.

    Parameters: ``start`` (default 2), ``duration`` (default 3) and one
    of ``boxes`` (explicit ids), ``count`` or ``fraction`` (default 0.1,
    drawn from the fault stream).  Crashed boxes rejoin at
    ``start + duration`` with their original upload capacity.
    """
    start, duration = _window(params, horizon)
    boxes = _chosen_boxes(params, population, rng)
    uploads = population.uploads
    events: List[FaultEvent] = []
    for box in boxes:
        events.append(FaultEvent(start, "set_capacity", box, 0.0))
        events.append(
            FaultEvent(start + duration, "set_capacity", box, float(uploads[box]))
        )
    return FaultPlan(kind="box_crash", events=tuple(events))


def brownout_plan(
    params: Mapping[str, Any], population, horizon: int, rng: np.random.Generator
) -> FaultPlan:
    """An upload-capacity brownout: chosen boxes run at ``factor`` for a window.

    Parameters: ``start``, ``duration``, ``factor`` (default 0.5, in
    ``[0, 1)``) and the box selection of :func:`box_crash_plan`.
    """
    start, duration = _window(params, horizon)
    factor = float(params.get("factor", 0.5))
    if not 0.0 <= factor < 1.0:
        raise ValueError(f"brownout factor must be in [0, 1), got {factor}")
    boxes = _chosen_boxes(params, population, rng)
    uploads = population.uploads
    events: List[FaultEvent] = []
    for box in boxes:
        events.append(
            FaultEvent(start, "set_capacity", box, factor * float(uploads[box]))
        )
        events.append(
            FaultEvent(start + duration, "set_capacity", box, float(uploads[box]))
        )
    return FaultPlan(kind="brownout", events=tuple(events))


def solver_budget_plan(
    params: Mapping[str, Any], population, horizon: int, rng: np.random.Generator
) -> FaultPlan:
    """A solver-budget exhaustion window: cap augmentation searches.

    Parameters: ``start``, ``duration``, ``budget`` (default 0 — any
    post-greedy deficit trips the degraded fallback).  The budget is
    cleared at ``start + duration``.
    """
    start, duration = _window(params, horizon)
    budget = int(params.get("budget", 0))
    if budget < 0:
        raise ValueError(f"solver budget must be non-negative, got {budget}")
    events = (
        FaultEvent(start, "set_budget", value=float(budget)),
        FaultEvent(start + duration, "clear_budget"),
    )
    return FaultPlan(kind="solver_budget", events=events)


#: Built-in fault component kinds.
FAULT_KINDS = ("box_crash", "brownout", "solver_budget")

register_component(
    "fault", "box_crash", box_crash_plan,
    "crash/rejoin burst: chosen boxes upload nothing for a window",
)
register_component(
    "fault", "brownout", brownout_plan,
    "upload brownout: chosen boxes run at a fraction of capacity",
)
register_component(
    "fault", "solver_budget", solver_budget_plan,
    "solver-budget window: cap per-round augmentation searches",
)


def build_fault_driver(
    fault_specs, population, horizon: int, rngs: Sequence[np.random.Generator]
) -> FaultDriver:
    """Compile fault specs into one :class:`FaultDriver`.

    ``rngs`` must hold one dedicated generator per spec (spawned from the
    scenario master seed *after* the pre-existing streams, so fault-free
    scenarios keep their recorded randomness untouched).
    """
    if len(rngs) != len(fault_specs):
        raise ValueError("need exactly one rng per fault spec")
    events: List[FaultEvent] = []
    for spec, rng in zip(fault_specs, rngs):
        plan = create_component(
            "fault", spec.kind, dict(spec.params), population, horizon, rng
        )
        events.extend(plan.events)
    return FaultDriver(events)
