"""repro.faults — deterministic fault injection and recovery helpers.

The paper's catalog-size thresholds only matter if the system holds them
*under failure*; this package makes failure paths first-class and
reproducible:

* :mod:`repro.faults.plan` — declarative, seed-deterministic fault plans
  (box crash/rejoin bursts, upload brownouts, solver-budget windows)
  registered as ``"fault"`` components and applied to a live engine by a
  :class:`FaultDriver` through the existing mutation hooks;
* :mod:`repro.faults.process` — environment-driven worker-process fault
  injection (crash/hang/error inside campaign and Monte-Carlo pools),
  used by the supervised pool tests and the CI ``chaos-smoke`` job;
* :mod:`repro.faults.corrupt` — file corruption helpers (truncation,
  byte flips) for exercising store/snapshot integrity checks;
* :mod:`repro.faults.campaign` — the ``fault_recovery`` campaign pinning
  recovered-run digests against fault-free baselines.

Everything is deterministic given the scenario master seed: a faulted
run replays bit-identically, and recovery paths are asserted to converge
to stores/digests identical to fault-free executions.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultDriver,
    FaultEvent,
    FaultPlan,
    build_fault_driver,
)

__all__ = [
    "FAULT_KINDS",
    "FaultDriver",
    "FaultEvent",
    "FaultPlan",
    "build_fault_driver",
]
