"""The ``fault_recovery`` campaign: recovery guarantees as pinned digests.

One cell per ``chaos_*`` scenario.  Each cell executes the faulted
scenario three ways and reduces the outcome to booleans a report table
can pin:

* **uninterrupted** — the batch run's digest (the reference);
* **recovered** — step to mid-run, checkpoint to a file, load the file
  back, restore, and complete: the continuation must digest identically
  to the uninterrupted run (``recovered_matches``), *through* the fault
  window;
* **damage detection** — a deliberately truncated copy of the checkpoint
  file must raise the typed
  :class:`~repro.api.errors.SnapshotIntegrityError`
  (``truncated_detected``), never unpickle garbage;
* **degradation accounting** — the number of rounds served by the
  solver fallback chain, and whether the per-round metrics equal the
  fault-free twin's (``matches_fault_free`` — true by design for
  solver-budget faults, where the fallback preserves matching
  cardinality; false for capacity faults, which genuinely change the
  system).

The runner is a pure function of ``(scenario, seed)``; the campaign
registers through :mod:`repro.orchestrate.campaigns` (which imports this
module) and its table is committed under ``docs/results/``.
"""

from __future__ import annotations

import dataclasses
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping

__all__ = ["FAULT_RECOVERY_CAMPAIGN", "run_fault_recovery"]

CHAOS_SCENARIOS = ("chaos_box_crash", "chaos_brownout", "chaos_degraded_solver")


def run_fault_recovery(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Chaos probe of one scenario: checkpoint/restore through the fault window."""
    from repro.api.errors import SnapshotIntegrityError
    from repro.api.session import SessionSnapshot, VodSession
    from repro.scenarios.build import build_scenario
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.replay import _round_records, digest_result

    spec = get_scenario(str(params["scenario"]))
    seed = int(params["seed"])
    rounds = spec.horizon

    # Reference: the uninterrupted faulted run.
    reference = build_scenario(spec, seed=seed).run(rounds)
    reference_digest = digest_result(spec, seed, rounds, reference).digest

    # Interrupted: checkpoint mid-run (inside or before the fault
    # window), round-trip the checkpoint through a file, restore and
    # complete the horizon.
    session = build_scenario(spec, seed=seed).session(horizon=rounds)
    session.step_until(round=max(1, rounds // 2))
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "checkpoint.snap"
        session.snapshot().to_file(checkpoint)
        data = checkpoint.read_bytes()

        truncated = Path(tmp) / "truncated.snap"
        truncated.write_bytes(data[: max(len(data) // 2, 1)])
        try:
            SessionSnapshot.from_file(truncated)
            truncated_detected = False
        except SnapshotIntegrityError:
            truncated_detected = True

        restored = VodSession.restore(SessionSnapshot.from_file(checkpoint))
    restored.step_until(round=rounds)
    recovered = restored.result()
    recovered_digest = digest_result(spec, seed, rounds, recovered).digest

    # Degradation accounting against the fault-free twin.
    degraded_rounds = sum(report.degraded for report in restored.reports)
    twin = build_scenario(dataclasses.replace(spec, faults=()), seed=seed).run(rounds)
    matches_fault_free = _round_records(reference) == _round_records(twin)

    return [
        {
            "scenario": spec.name,
            "seed": seed,
            "rounds": rounds,
            "digest": reference_digest,
            "recovered_matches": recovered_digest == reference_digest,
            "truncated_detected": truncated_detected,
            "degraded_rounds": int(degraded_rounds),
            "matches_fault_free": matches_fault_free,
        }
    ]


def __getattr__(name: str):
    # The CampaignSpec itself is built by repro.orchestrate.campaigns
    # (the single registration point); re-exporting it lazily keeps this
    # module free of orchestrate imports, so it is importable first
    # without a cycle (orchestrate's __init__ imports campaigns, which
    # imports this module).
    if name == "FAULT_RECOVERY_CAMPAIGN":
        from repro.orchestrate.campaigns import FAULT_RECOVERY_CAMPAIGN

        return FAULT_RECOVERY_CAMPAIGN
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
