"""Environment-driven worker-process fault injection.

Campaign and Monte-Carlo worker processes call
:func:`maybe_inject_worker_fault` at the top of their unit of work.  With
the ``REPRO_FAULTS`` environment variable unset (the normal case) the
call is free; when set, it injects a crash (``SIGKILL``), a hang or an
error into the worker — *outside* the cell parameters, so injected runs
keep the exact same content-addressed cell keys and record bytes as
clean runs.  That is what lets the chaos tests assert byte-identical
stores after recovery.

``REPRO_FAULTS`` holds a JSON object::

    {"worker_crash": {"mode": "once", "marker": "/tmp/crash.marker"}}

Supported fault kinds (at most one fires per call, in this order):

* ``worker_crash`` — ``os.kill(os.getpid(), SIGKILL)``;
* ``worker_hang`` — ``time.sleep(seconds)`` (default 3600, far beyond
  any sane cell timeout);
* ``worker_error`` — raise :class:`InjectedWorkerError`.

Each kind takes:

* ``mode`` — ``"once"`` (default; requires ``marker``) or ``"always"``;
* ``marker`` — path to a sentinel file: the fault only fires if the file
  does not exist yet and is created atomically right before firing, so
  "once" holds across any number of processes;
* ``match`` — optional substring that must occur in the work label
  (runner name, cell key, trial id) for the fault to apply.

This module is deliberately stdlib-only: worker entry points import it
lazily and must not drag the scientific stack in before forking.
"""

from __future__ import annotations

import json
import os
import signal
import time
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "FAULTS_ENV_VAR",
    "InjectedWorkerError",
    "maybe_inject_worker_fault",
    "parse_fault_env",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"


class InjectedWorkerError(RuntimeError):
    """The error deliberately raised by a ``worker_error`` injection."""


def parse_fault_env(value: Optional[str]) -> Dict[str, Dict[str, Any]]:
    """Parse a ``REPRO_FAULTS`` value; invalid specs raise ``ValueError``.

    >>> parse_fault_env(None)
    {}
    >>> parse_fault_env('{"worker_error": {"mode": "always"}}')
    {'worker_error': {'mode': 'always'}}
    """
    if not value:
        return {}
    try:
        spec = json.loads(value)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{FAULTS_ENV_VAR} is not valid JSON: {exc}") from exc
    if not isinstance(spec, dict):
        raise ValueError(f"{FAULTS_ENV_VAR} must hold a JSON object")
    known = ("worker_crash", "worker_hang", "worker_error")
    out: Dict[str, Dict[str, Any]] = {}
    for kind, config in spec.items():
        if kind not in known:
            raise ValueError(
                f"{FAULTS_ENV_VAR} fault kind must be one of {known}, got {kind!r}"
            )
        if not isinstance(config, dict):
            raise ValueError(f"{FAULTS_ENV_VAR}[{kind!r}] must be a JSON object")
        mode = config.get("mode", "once")
        if mode not in ("once", "always"):
            raise ValueError(
                f"{FAULTS_ENV_VAR}[{kind!r}] mode must be 'once' or 'always'"
            )
        if mode == "once" and not config.get("marker"):
            raise ValueError(
                f"{FAULTS_ENV_VAR}[{kind!r}] mode 'once' requires a marker path"
            )
        out[kind] = dict(config)
    return out


def _should_fire(config: Mapping[str, Any], label: str) -> bool:
    match = config.get("match")
    if match and str(match) not in label:
        return False
    if config.get("mode", "once") == "once":
        marker = str(config["marker"])
        try:
            # O_EXCL claims the marker atomically: exactly one worker,
            # across any number of concurrent processes, fires the fault.
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
    return True


def maybe_inject_worker_fault(label: str = "") -> None:
    """Fire a configured worker fault, if any applies to ``label``.

    Free (one ``os.environ`` lookup) when ``REPRO_FAULTS`` is unset.
    """
    raw = os.environ.get(FAULTS_ENV_VAR)
    if not raw:
        return
    faults = parse_fault_env(raw)
    crash = faults.get("worker_crash")
    if crash is not None and _should_fire(crash, label):
        os.kill(os.getpid(), signal.SIGKILL)
    hang = faults.get("worker_hang")
    if hang is not None and _should_fire(hang, label):
        time.sleep(float(hang.get("seconds", 3600.0)))
    error = faults.get("worker_error")
    if error is not None and _should_fire(error, label):
        raise InjectedWorkerError(
            f"injected worker error (label: {label or 'unlabelled'})"
        )
