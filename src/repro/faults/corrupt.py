"""File-corruption helpers for integrity tests and the CI chaos job.

These deliberately damage store records and snapshot checkpoints the way
real failures do — torn writes (truncation) and bit rot (byte flips) —
so the typed integrity errors and the ``verify``/``repair`` recovery
path can be exercised end to end.  They are test/CI utilities; nothing
in the runtime imports them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

__all__ = ["truncate_file", "flip_byte", "corrupt_store_record"]


def truncate_file(path: Union[str, Path], keep_bytes: int = 16) -> Path:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (a torn write)."""
    path = Path(path)
    data = path.read_bytes()
    if keep_bytes < 0:
        raise ValueError(f"keep_bytes must be non-negative, got {keep_bytes}")
    path.write_bytes(data[:keep_bytes])
    return path


def flip_byte(path: Union[str, Path], offset: int = -1) -> Path:
    """XOR one byte of ``path`` (default: the middle byte) — bit rot."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    index = len(data) // 2 if offset < 0 else offset
    if index >= len(data):
        raise ValueError(f"offset {index} beyond file of {len(data)} bytes")
    data[index] ^= 0xFF
    path.write_bytes(bytes(data))
    return path


def corrupt_store_record(store, key: str, mode: str = "truncate") -> Path:
    """Damage the object file of cell ``key`` in a ``ResultsStore``.

    ``mode`` is ``"truncate"`` (torn JSON) or ``"flip"`` (checksum
    mismatch: the record stays parseable JSON only by luck, usually not).
    """
    path = store._object_path(key)
    if not path.exists():
        raise FileNotFoundError(f"no record for cell {key} in {store.root}")
    if mode == "truncate":
        return truncate_file(path)
    if mode == "flip":
        return flip_byte(path)
    raise ValueError(f"mode must be 'truncate' or 'flip', got {mode!r}")
