"""repro — reproduction of *An Upload Bandwidth Threshold for Peer-to-Peer
Video-on-Demand Scalability* (Boufkhad, Mathieu, de Montgolfier, Perino,
Viennot — IEEE IPDPS 2009).

The package provides, as a library:

* the paper's system model — ``(n, u, d)``-video systems, striped videos,
  boxes with storage, upload and a playback cache (:mod:`repro.core`);
* the random allocation schemes, the preloading request strategy, the
  max-flow connection matching of Lemma 1 and the heterogeneous relaying
  of Section 4 (:mod:`repro.core`, :mod:`repro.flow`);
* the threshold and obstruction numerics of Theorems 1–2 and Lemmas 2–4
  (:mod:`repro.core.thresholds`, :mod:`repro.core.obstruction`);
* a round-based discrete-event simulator exercising the whole pipeline
  against adversarial and benign workloads (:mod:`repro.sim`,
  :mod:`repro.workloads`);
* the baselines the paper contrasts with (:mod:`repro.baselines`) and the
  analysis/Monte-Carlo harness regenerating every experiment table
  (:mod:`repro.analysis`).

Quickstart
----------
>>> from repro import (
...     Catalog, homogeneous_population, random_permutation_allocation,
...     VodSimulator, FlashCrowdWorkload,
... )
>>> population = homogeneous_population(60, u=2.0, d=4.0)      # n=60 boxes, u>1
>>> catalog = Catalog(num_videos=40, num_stripes=5, duration=40)
>>> allocation = random_permutation_allocation(catalog, population, replicas_per_stripe=4,
...                                             random_state=0)
>>> sim = VodSimulator(allocation, mu=1.3)
>>> result = sim.run(FlashCrowdWorkload(mu=1.3, random_state=0), num_rounds=10)
>>> result.feasible
True

Note that the replication prescribed by Theorem 1
(:func:`repro.design_homogeneous`) carries the proof's worst-case
constants and is far larger than what simulations need; the experiments
use small empirical ``k`` and compare against the theorem's guarantee.
"""

from repro.core import (
    Allocation,
    AllocationError,
    Box,
    BoxPopulation,
    Catalog,
    CompensationError,
    CompensationPlan,
    ConnectionMatcher,
    ConnectionMatching,
    Demand,
    ImmediateRequestScheduler,
    PlaybackCache,
    PossessionIndex,
    PreloadingScheduler,
    RELAYED_START_UP_DELAY_ROUNDS,
    RelayedPreloadingScheduler,
    RequestSet,
    START_UP_DELAY_ROUNDS,
    Stripe,
    StripeRequest,
    SystemParameters,
    Video,
    check_feasibility_hall,
    compute_compensation_plan,
    direct_stripe_budget,
    homogeneous_population,
    is_balanced,
    is_upload_compensable,
    pareto_population,
    proportional_population,
    random_independent_allocation,
    random_permutation_allocation,
    round_robin_allocation,
    two_class_population,
)
from repro.core.thresholds import (
    ThresholdDesign,
    catalog_lower_bound_theorem1,
    catalog_lower_bound_theorem2,
    design_heterogeneous,
    design_homogeneous,
    recommended_stripes_heterogeneous,
    recommended_stripes_homogeneous,
)
from repro.core import negative, obstruction, thresholds
from repro.sim import SimulationResult, VodSimulator
from repro.workloads import (
    ColdStartAdversary,
    FlashCrowdWorkload,
    LeastReplicatedAdversary,
    MissingVideoAdversary,
    SequentialViewingWorkload,
    StaggeredFlashCrowdWorkload,
    StaticDemandSchedule,
    UniformDemandWorkload,
    ZipfDemandWorkload,
)
from repro.baselines import (
    CentralServerModel,
    SourcingOnlyPossessionIndex,
    full_replication_allocation,
    max_catalog_full_replication,
    sourcing_capacity_bound,
)
from repro import analysis, baselines, flow, scenarios, sim, workloads

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "Allocation",
    "AllocationError",
    "Box",
    "BoxPopulation",
    "Catalog",
    "CompensationError",
    "CompensationPlan",
    "ConnectionMatcher",
    "ConnectionMatching",
    "Demand",
    "ImmediateRequestScheduler",
    "PlaybackCache",
    "PossessionIndex",
    "PreloadingScheduler",
    "RELAYED_START_UP_DELAY_ROUNDS",
    "RelayedPreloadingScheduler",
    "RequestSet",
    "START_UP_DELAY_ROUNDS",
    "Stripe",
    "StripeRequest",
    "SystemParameters",
    "Video",
    "check_feasibility_hall",
    "compute_compensation_plan",
    "direct_stripe_budget",
    "homogeneous_population",
    "is_balanced",
    "is_upload_compensable",
    "pareto_population",
    "proportional_population",
    "random_independent_allocation",
    "random_permutation_allocation",
    "round_robin_allocation",
    "two_class_population",
    # thresholds
    "ThresholdDesign",
    "catalog_lower_bound_theorem1",
    "catalog_lower_bound_theorem2",
    "design_heterogeneous",
    "design_homogeneous",
    "recommended_stripes_heterogeneous",
    "recommended_stripes_homogeneous",
    "thresholds",
    "obstruction",
    "negative",
    # simulator + workloads
    "SimulationResult",
    "VodSimulator",
    "ColdStartAdversary",
    "FlashCrowdWorkload",
    "LeastReplicatedAdversary",
    "MissingVideoAdversary",
    "SequentialViewingWorkload",
    "StaggeredFlashCrowdWorkload",
    "StaticDemandSchedule",
    "UniformDemandWorkload",
    "ZipfDemandWorkload",
    # baselines
    "CentralServerModel",
    "SourcingOnlyPossessionIndex",
    "full_replication_allocation",
    "max_catalog_full_replication",
    "sourcing_capacity_bound",
    # subpackages
    "analysis",
    "baselines",
    "flow",
    "scenarios",
    "sim",
    "workloads",
]
