"""repro — reproduction of *An Upload Bandwidth Threshold for Peer-to-Peer
Video-on-Demand Scalability* (Boufkhad, Mathieu, de Montgolfier, Perino,
Viennot — IEEE IPDPS 2009).

The package provides, as a library:

* the paper's system model — ``(n, u, d)``-video systems, striped videos,
  boxes with storage, upload and a playback cache (:mod:`repro.core`);
* the random allocation schemes, the preloading request strategy, the
  max-flow connection matching of Lemma 1 and the heterogeneous relaying
  of Section 4 (:mod:`repro.core`, :mod:`repro.flow`);
* the threshold and obstruction numerics of Theorems 1–2 and Lemmas 2–4
  (:mod:`repro.core.thresholds`, :mod:`repro.core.obstruction`);
* a round-based discrete-event simulator exercising the whole pipeline
  against adversarial and benign workloads (:mod:`repro.sim`,
  :mod:`repro.workloads`);
* the baselines the paper contrasts with (:mod:`repro.baselines`) and the
  analysis/Monte-Carlo harness regenerating every experiment table
  (:mod:`repro.analysis`).

Quickstart
----------
The canonical public surface is the service layer in :mod:`repro.api`:
configure a system, allocate replicas, then open batch runs or stepwise
sessions with online admission and checkpoint/restore.

>>> from repro import VodSystem
>>> system = VodSystem.configure(
...     catalog={"num_videos": 40, "num_stripes": 5, "duration": 40},
...     population=("homogeneous", {"n": 60, "u": 2.0, "d": 4.0}),
...     mu=1.3,
... )
>>> _ = system.allocate("permutation", replicas_per_stripe=4, seed=0)
>>> session = system.open_session(
...     workload=("flashcrowd", {"target_videos": [0]}), workload_seed=0,
...     horizon=10,
... )
>>> session.step().feasible
True
>>> snapshot = session.snapshot()          # restorable, bit-identical
>>> session.run_to_horizon().feasible
True

Note that the replication prescribed by Theorem 1
(:func:`repro.design_homogeneous`) carries the proof's worst-case
constants and is far larger than what simulations need; the experiments
use small empirical ``k`` and compare against the theorem's guarantee.
"""

import warnings as _warnings

from repro.core import (
    Allocation,
    AllocationError,
    Box,
    BoxPopulation,
    Catalog,
    CompensationError,
    CompensationPlan,
    ConnectionMatcher,
    ConnectionMatching,
    Demand,
    ImmediateRequestScheduler,
    PlaybackCache,
    PossessionIndex,
    PreloadingScheduler,
    RELAYED_START_UP_DELAY_ROUNDS,
    RelayedPreloadingScheduler,
    RequestSet,
    START_UP_DELAY_ROUNDS,
    Stripe,
    StripeRequest,
    SystemParameters,
    Video,
    check_feasibility_hall,
    compute_compensation_plan,
    direct_stripe_budget,
    homogeneous_population,
    is_balanced,
    is_upload_compensable,
    pareto_population,
    proportional_population,
    random_independent_allocation,
    random_permutation_allocation,
    round_robin_allocation,
    two_class_population,
)
from repro.core.thresholds import (
    ThresholdDesign,
    catalog_lower_bound_theorem1,
    catalog_lower_bound_theorem2,
    design_heterogeneous,
    design_homogeneous,
    recommended_stripes_heterogeneous,
    recommended_stripes_homogeneous,
)
from repro.core import negative, obstruction, thresholds
from repro.sim import SimulationResult
from repro.api import (
    AdmissionError,
    RoundReport,
    SessionClosedError,
    SessionSnapshot,
    VodSession,
    VodSystem,
    available_components,
    create_component,
    register_component,
)
from repro.workloads import (
    ColdStartAdversary,
    FlashCrowdWorkload,
    LeastReplicatedAdversary,
    MissingVideoAdversary,
    SequentialViewingWorkload,
    StaggeredFlashCrowdWorkload,
    StaticDemandSchedule,
    UniformDemandWorkload,
    ZipfDemandWorkload,
)
from repro.baselines import (
    CentralServerModel,
    SourcingOnlyPossessionIndex,
    full_replication_allocation,
    max_catalog_full_replication,
    sourcing_capacity_bound,
)
from repro import analysis, api, baselines, flow, scenarios, sim, workloads

__version__ = "1.0.0"

#: Legacy construction paths superseded by the repro.api facade: accessing
#: them from the top-level package warns but keeps working, so downstream
#: code migrates without breaking.  (The engine itself remains available,
#: warning-free, at repro.sim.engine.VodSimulator for embedders.)
_DEPRECATED_FACADE_ALIASES = {
    "VodSimulator": (
        "repro.sim.engine",
        "VodSimulator",
        "construct engines through repro.api.VodSystem "
        "(VodSystem.for_allocation(...).build_simulator(...) or open_session(...))",
    ),
}

#: Alias names that have already warned this process: the shim fires once
#: per name, not once per attribute access, so a hot loop over the legacy
#: name cannot flood logs.  Tests reset this set to re-arm the warning.
_warned_aliases: set = set()


def __getattr__(name):
    """Serve deprecated legacy names lazily, with a one-shot migration warning."""
    alias = _DEPRECATED_FACADE_ALIASES.get(name)
    if alias is not None:
        module_name, attr, hint = alias
        if name not in _warned_aliases:
            _warned_aliases.add(name)
            _warnings.warn(
                f"repro.{name} is deprecated; {hint}",
                DeprecationWarning,
                stacklevel=2,
            )
        import importlib

        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "__version__",
    # core model
    "Allocation",
    "AllocationError",
    "Box",
    "BoxPopulation",
    "Catalog",
    "CompensationError",
    "CompensationPlan",
    "ConnectionMatcher",
    "ConnectionMatching",
    "Demand",
    "ImmediateRequestScheduler",
    "PlaybackCache",
    "PossessionIndex",
    "PreloadingScheduler",
    "RELAYED_START_UP_DELAY_ROUNDS",
    "RelayedPreloadingScheduler",
    "RequestSet",
    "START_UP_DELAY_ROUNDS",
    "Stripe",
    "StripeRequest",
    "SystemParameters",
    "Video",
    "check_feasibility_hall",
    "compute_compensation_plan",
    "direct_stripe_budget",
    "homogeneous_population",
    "is_balanced",
    "is_upload_compensable",
    "pareto_population",
    "proportional_population",
    "random_independent_allocation",
    "random_permutation_allocation",
    "round_robin_allocation",
    "two_class_population",
    # thresholds
    "ThresholdDesign",
    "catalog_lower_bound_theorem1",
    "catalog_lower_bound_theorem2",
    "design_heterogeneous",
    "design_homogeneous",
    "recommended_stripes_heterogeneous",
    "recommended_stripes_homogeneous",
    "thresholds",
    "obstruction",
    "negative",
    # service layer (repro.api)
    "VodSystem",
    "VodSession",
    "RoundReport",
    "SessionSnapshot",
    "SessionClosedError",
    "AdmissionError",
    "register_component",
    "create_component",
    "available_components",
    # simulator + workloads.  repro.VodSimulator still resolves (with a
    # DeprecationWarning) via __getattr__, but is kept out of __all__ so
    # `from repro import *` stays warning-free for users who never touch it.
    "SimulationResult",
    "ColdStartAdversary",
    "FlashCrowdWorkload",
    "LeastReplicatedAdversary",
    "MissingVideoAdversary",
    "SequentialViewingWorkload",
    "StaggeredFlashCrowdWorkload",
    "StaticDemandSchedule",
    "UniformDemandWorkload",
    "ZipfDemandWorkload",
    # baselines
    "CentralServerModel",
    "SourcingOnlyPossessionIndex",
    "full_replication_allocation",
    "max_catalog_full_replication",
    "sourcing_capacity_bound",
    # subpackages
    "analysis",
    "api",
    "baselines",
    "flow",
    "scenarios",
    "sim",
    "workloads",
]
