"""Event-driven continuous-time engine mode.

Layers a deterministic heap-ordered event loop — arrival, expiry, churn,
fault and playback-start events on a continuous clock — over the round
engine's state machine, keeping every round record bit-identical to
:class:`~repro.sim.engine.VodSimulator` while adding the metric the
round clock cannot express: per-request admission-latency and
startup-delay distributions.  Select it through the facade
(``VodSystem.build_simulator(engine="event")``) or a scenario spec's
``engine`` field; :mod:`repro.events.crosscheck` proves the round
parity record for record.
"""

from repro.events.crosscheck import CrosscheckReport, crosscheck_scenario
from repro.events.engine import EventDrivenVodSimulator
from repro.events.queue import (
    Arrival,
    ChurnTransition,
    EventQueue,
    Expiry,
    FaultInjection,
    PlaybackStart,
)

__all__ = [
    "Arrival",
    "ChurnTransition",
    "CrosscheckReport",
    "EventDrivenVodSimulator",
    "EventQueue",
    "Expiry",
    "FaultInjection",
    "PlaybackStart",
    "crosscheck_scenario",
]
