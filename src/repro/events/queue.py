"""Deterministic heap-ordered event queue for the continuous-time engine.

Events are plain frozen dataclasses carrying a continuous ``time`` (a
float — round ``t`` spans ``[t, t + 1)``); the queue orders them by
``(time, priority, seq)`` where ``priority`` is the fixed per-kind rank
below and ``seq`` is the push order, so two runs that push the same
events drain them in exactly the same order — no dict iteration, no id()
comparisons, nothing address-dependent.  The shape follows the rotorsim
exemplar (a ``heapq`` of ``(time, priority, seq, event)`` tuples) rather
than a framework: the queue is a value type the engine owns.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = [
    "Arrival",
    "Expiry",
    "ChurnTransition",
    "FaultInjection",
    "PlaybackStart",
    "EventQueue",
    "EVENT_PRIORITY",
]


@dataclass(frozen=True)
class Arrival:
    """A demand arriving at continuous ``time`` within round ``round``."""

    time: float
    round: int
    box_id: int
    video_id: int
    accepted: bool


@dataclass(frozen=True)
class Expiry:
    """A box's playback finishing: its busy horizon expires at ``time``."""

    time: float
    round: int
    box_id: int
    demand_index: int


@dataclass(frozen=True)
class ChurnTransition:
    """A box going offline (``online=False``) or returning, at a boundary."""

    time: float
    round: int
    box_id: int
    online: bool


@dataclass(frozen=True)
class FaultInjection:
    """A live mutation applied through the session's fault driver."""

    time: float
    round: int
    action: str
    box_id: int


@dataclass(frozen=True)
class PlaybackStart:
    """A demand's playback starting once all its stripes were served."""

    time: float
    round: int
    demand_index: int
    startup_delay: float


#: Drain rank of simultaneous events: expiries free boxes before the
#: boundary's churn/fault mutations, which land before new arrivals are
#: admitted; playback starts are observed last (they describe the round
#: that just completed).
EVENT_PRIORITY = {
    Expiry: 0,
    ChurnTransition: 1,
    FaultInjection: 2,
    Arrival: 3,
    PlaybackStart: 4,
}


class EventQueue:
    """A deterministic min-heap of simulation events.

    ``push`` accepts any of the event dataclasses above; ``drain_until``
    pops every event with ``time <= horizon`` in ``(time, priority,
    seq)`` order.  The queue never compares event payloads, so equal
    timestamps are always broken by kind rank and then push order.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, object]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event) -> None:
        """Add ``event`` to the queue."""
        priority = EVENT_PRIORITY[type(event)]
        heapq.heappush(self._heap, (float(event.time), priority, self._seq, event))
        self._seq += 1

    def drain_until(self, horizon: float) -> Iterator[object]:
        """Pop and yield every event with ``time < horizon``, in order.

        The bound is exclusive so that events stamped exactly on an
        integer boundary (expiries, next-round playback starts) belong to
        the round *starting* there, matching the ``[t, t + 1)`` interval
        convention.
        """
        heap = self._heap
        while heap and heap[0][0] < horizon:
            yield heapq.heappop(heap)[3]

    def peek_time(self) -> float:
        """Timestamp of the next event (raises ``IndexError`` when empty)."""
        return self._heap[0][0]
