"""The event-driven continuous-time engine mode.

:class:`EventDrivenVodSimulator` runs the exact same per-round state
machine as :class:`~repro.sim.engine.VodSimulator` — demands, admission,
request generation, matching, playback detection are all inherited, so
every round record is bit-identical to the round engine on the same
inputs — and layers a deterministic continuous clock over it: each round
``t`` spans the interval ``[t, t + 1)``, arrivals receive continuous
timestamps inside it, and a heap-ordered :class:`~repro.events.queue.
EventQueue` drains arrival / expiry / churn / fault / playback-start
events in timestamp order.

That layering is what makes the round-aggregation cross-check
(:mod:`repro.events.crosscheck`) exact rather than statistical: binning
the event trace by round *must* reproduce the round engine's accept
counts and playback starts because admission itself is unchanged.  What
the event mode adds is the metric the round clock cannot express —
per-request latency distributions:

* **admission latency** — a demand arriving at ``t + x`` (``x ∈ [0, 1)``)
  is admitted at the next matching boundary ``t + 1``, so its latency is
  ``1 − x``;
* **continuous startup delay** — playback begins at an integer boundary
  ``p`` (all stripes served), so the arrival-to-playback time is
  ``p − (t + x)``.  The round engine's integer delay counts the arrival
  and playback rounds inclusively (``p − t + 1``), so the paper's
  constant ``3``-round bound shows up here as *elapsed* delays in
  ``(1, 2]`` — the continuous view is always exactly ``1 + x`` tighter.

Both are recorded per round (``last_round_*`` attributes, surfaced in
:class:`~repro.api.session.RoundReport`) and per run (p50/p99 in
:class:`~repro.sim.metrics.SimulationMetrics`).

All continuous randomness (the intra-round arrival offsets) comes from a
dedicated RNG stream: the scenario compiler spawns it *after* every
pre-existing stream of the master seed, so adding the event engine never
perturbs a recorded digest.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.preloading import Demand
from repro.events.queue import (
    Arrival,
    ChurnTransition,
    EventQueue,
    Expiry,
    FaultInjection,
    PlaybackStart,
)
from repro.sim.engine import VodSimulator
from repro.util.soa import ensure_column_capacity
from repro.workloads.base import DemandGenerator

__all__ = ["EventDrivenVodSimulator"]


class EventDrivenVodSimulator(VodSimulator):
    """Round-parity engine with a continuous event clock.

    Accepts every :class:`~repro.sim.engine.VodSimulator` argument plus
    ``event_random_state`` — the seed/stream of the intra-round arrival
    offsets (the only randomness the event layer consumes).  Construct
    through :meth:`repro.api.VodSystem.build_simulator` with
    ``engine="event"``; the scenario compiler wires the stream from the
    master seed automatically.
    """

    def __init__(self, *args: Any, event_random_state=None, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._event_rng = np.random.default_rng(event_random_state)
        self._queue = EventQueue()
        #: Continuous arrival timestamp per accepted demand, parallel to
        #: the demand log (rejected arrivals only exist as queue events).
        self._arrival_time = np.empty(64, dtype=np.float64)
        #: One aggregate-count record per completed round (the
        #: round-binned event trace the cross-check consumes).
        self._round_event_counts: List[Dict[str, int]] = []
        #: Raw drained events in drain order; kept only under the full
        #: trace level so lean scale runs stay memory-bounded.
        self._processed_events: List[object] = []
        self._prev_offline = np.empty(0, dtype=np.int64)
        self._round_arrivals = 0
        self._round_accepted = 0
        self._round_playbacks = 0
        self._round_latencies: Optional[np.ndarray] = None
        self._round_delays: Optional[np.ndarray] = None
        self.last_round_admission_latency_p50: Optional[float] = None
        self.last_round_admission_latency_p99: Optional[float] = None
        self.last_round_startup_delay_p50: Optional[float] = None
        self.last_round_startup_delay_p99: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Event-trace accessors
    # ------------------------------------------------------------------ #
    @property
    def round_event_counts(self) -> Tuple[Dict[str, int], ...]:
        """Per-round aggregate event counts (the round-binned trace)."""
        return tuple(self._round_event_counts)

    @property
    def processed_events(self) -> Tuple[object, ...]:
        """Drained events in drain order (full trace level only)."""
        return tuple(self._processed_events)

    @property
    def pending_events(self) -> int:
        """Events still queued past the last completed round's horizon."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # The round boundary
    # ------------------------------------------------------------------ #
    def step(self, workload: DemandGenerator) -> bool:
        time = self._clock.now
        self._begin_round(time)
        feasible = super().step(workload)
        self._finish_round(time)
        return feasible

    def _begin_round(self, time: int) -> None:
        self._round_arrivals = 0
        self._round_accepted = 0
        self._round_playbacks = 0
        self._round_latencies = None
        self._round_delays = None
        current = self._offline_array(time)
        if current.size or self._prev_offline.size:
            for box in np.setdiff1d(current, self._prev_offline).tolist():
                self._queue.push(
                    ChurnTransition(
                        time=float(time), round=time, box_id=int(box), online=False
                    )
                )
            for box in np.setdiff1d(self._prev_offline, current).tolist():
                self._queue.push(
                    ChurnTransition(
                        time=float(time), round=time, box_id=int(box), online=True
                    )
                )
            self._prev_offline = current.copy()

    def _finish_round(self, time: int) -> None:
        expirations = churn = faults = 0
        keep_raw = self._full_trace
        for event in self._queue.drain_until(time + 1):
            kind = type(event)
            if kind is Expiry:
                expirations += 1
            elif kind is ChurnTransition:
                churn += 1
            elif kind is FaultInjection:
                faults += 1
            if keep_raw:
                self._processed_events.append(event)
        self._round_event_counts.append(
            {
                "round": int(time),
                "arrivals": int(self._round_arrivals),
                "accepted": int(self._round_accepted),
                "playback_starts": int(self._round_playbacks),
                "expirations": int(expirations),
                "churn_transitions": int(churn),
                "fault_injections": int(faults),
            }
        )
        lat = self._round_latencies
        self.last_round_admission_latency_p50 = (
            float(np.percentile(lat, 50)) if lat is not None and lat.size else None
        )
        self.last_round_admission_latency_p99 = (
            float(np.percentile(lat, 99)) if lat is not None and lat.size else None
        )
        delays = self._round_delays
        self.last_round_startup_delay_p50 = (
            float(np.percentile(delays, 50))
            if delays is not None and delays.size
            else None
        )
        self.last_round_startup_delay_p99 = (
            float(np.percentile(delays, 99))
            if delays is not None and delays.size
            else None
        )

    # ------------------------------------------------------------------ #
    # Arrival timestamps (the admission hooks)
    # ------------------------------------------------------------------ #
    def _draw_arrival_times(self, count: int, time: int) -> np.ndarray:
        """``count`` continuous timestamps in ``[time, time + 1)``, sorted.

        Sorted offsets assigned in emission order keep the continuous
        arrival order identical to the workload's emission order, which is
        what makes the round binning reproduce the round engine's
        admission decisions record for record.
        """
        if not count:
            return np.empty(0, dtype=np.float64)
        return time + np.sort(self._event_rng.random(count))

    def _note_admission(self, demand_index: int, arrival: float, time: int) -> None:
        ensure_column_capacity(
            self, ("_arrival_time",), demand_index, demand_index + 1
        )
        self._arrival_time[demand_index] = arrival
        self._queue.push(
            Expiry(
                time=float(time + self._catalog.duration),
                round=time + self._catalog.duration,
                box_id=int(self._demand_box[demand_index]),
                demand_index=int(demand_index),
            )
        )

    def _accept_demands(
        self, demands: Sequence[Demand], time: int
    ) -> List[Tuple[int, Demand]]:
        demands = list(demands)
        times = self._draw_arrival_times(len(demands), time)
        accepted = super()._accept_demands(demands, time)
        self._round_arrivals += len(demands)
        self._round_accepted += len(accepted)
        # ``accepted`` preserves emission order, so one monotone identity
        # walk recovers each accepted demand's position in the round list.
        accepted_mask = np.zeros(len(demands), dtype=bool)
        cursor = 0
        for demand_index, demand in accepted:
            while demands[cursor] is not demand:
                cursor += 1
            accepted_mask[cursor] = True
            self._note_admission(demand_index, float(times[cursor]), time)
            cursor += 1
        for position, demand in enumerate(demands):
            self._queue.push(
                Arrival(
                    time=float(times[position]),
                    round=time,
                    box_id=int(demand.box_id),
                    video_id=int(demand.video_id),
                    accepted=bool(accepted_mask[position]),
                )
            )
        if accepted:
            latencies = (time + 1) - times[accepted_mask]
            self._round_latencies = latencies
            self._metrics.record_admission_latencies(latencies)
        return accepted

    def _accept_demand_arrays(
        self, box_ids: np.ndarray, video_ids: np.ndarray, time: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        from repro.sim.rules import admission_mask

        count = int(box_ids.size)
        times = self._draw_arrival_times(count, time)
        # The admission rule reads only pre-round state, so evaluating it
        # before the parent mutates the busy horizons reproduces exactly
        # the accept mask the parent is about to apply.
        accept = (
            admission_mask(self._busy_until, box_ids, time)
            if count
            else np.empty(0, dtype=bool)
        )
        demand_indices, boxes, videos = super()._accept_demand_arrays(
            box_ids, video_ids, time
        )
        self._round_arrivals += count
        self._round_accepted += int(demand_indices.size)
        for position in range(count):
            self._queue.push(
                Arrival(
                    time=float(times[position]),
                    round=time,
                    box_id=int(box_ids[position]),
                    video_id=int(video_ids[position]),
                    accepted=bool(accept[position]),
                )
            )
        if demand_indices.size:
            accepted_times = times[accept]
            lo = int(demand_indices[0])
            hi = lo + int(demand_indices.size)
            ensure_column_capacity(self, ("_arrival_time",), lo, hi)
            self._arrival_time[lo:hi] = accepted_times
            duration = self._catalog.duration
            for offset in range(hi - lo):
                self._queue.push(
                    Expiry(
                        time=float(time + duration),
                        round=time + duration,
                        box_id=int(boxes[offset]),
                        demand_index=lo + offset,
                    )
                )
            latencies = (time + 1) - accepted_times
            self._round_latencies = latencies
            self._metrics.record_admission_latencies(latencies)
        return demand_indices, boxes, videos

    # ------------------------------------------------------------------ #
    # Playback starts
    # ------------------------------------------------------------------ #
    def _detect_playback_starts(
        self, time: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        hits = super()._detect_playback_starts(time)
        if hits is None:
            return None
        ready_idx, playback_rounds, _ = hits
        self._round_playbacks += int(ready_idx.size)
        continuous = playback_rounds.astype(np.float64) - self._arrival_time[ready_idx]
        self._round_delays = continuous
        self._metrics.record_continuous_delays(continuous)
        for k in range(ready_idx.size):
            self._queue.push(
                PlaybackStart(
                    time=float(playback_rounds[k]),
                    round=time,
                    demand_index=int(ready_idx[k]),
                    startup_delay=float(continuous[k]),
                )
            )
        return hits

    # ------------------------------------------------------------------ #
    # Live mutations become fault events
    # ------------------------------------------------------------------ #
    def set_upload_capacity(self, box_id: int, upload: float) -> int:
        slots = super().set_upload_capacity(box_id, upload)
        time = self._clock.now
        self._queue.push(
            FaultInjection(
                time=float(time),
                round=time,
                action="set_upload_capacity",
                box_id=int(box_id),
            )
        )
        return slots

    def set_solver_budget(self, budget) -> None:
        super().set_solver_budget(budget)
        time = self._clock.now
        self._queue.push(
            FaultInjection(
                time=float(time),
                round=time,
                action="set_solver_budget" if budget is not None else "clear_budget",
                box_id=-1,
            )
        )
