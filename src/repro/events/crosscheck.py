"""Round-aggregation cross-check between the event and round engines.

The event engine's parity claim is structural — it inherits the round
engine's admission/matching/playback state machine — but structural
claims rot, so this harness proves the claim on live runs: it steps the
same ``(scenario, seed)`` through both engine modes and verifies, record
for record,

1. **engine parity** — every stepped :class:`~repro.api.session.
   RoundReport` agrees field for field (the eight ``RoundStats`` fields
   plus rejections, playback starts, offline boxes and the degradation
   flags) between the two engines;
2. **bin consistency** — the event engine's own round-binned event trace
   (:attr:`~repro.events.engine.EventDrivenVodSimulator.
   round_event_counts`) reproduces its reports: per round, accepted
   arrivals equal ``arrivals − rejected`` and binned playback starts
   equal the report's count;
3. **totals** — the final summaries agree on demand totals.

Together: binning the continuous event trace per round reproduces the
round engine's accept counts and playback starts exactly.  The CLI
(``python -m repro.scenarios crosscheck``) and the CI ``event-smoke``
job run this; the hypothesis property test sweeps it across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["CrosscheckReport", "crosscheck_scenario"]

#: RoundReport fields compared for engine parity — everything except the
#: event-only latency percentiles (the round engine cannot report them).
_PARITY_FIELDS = (
    "time",
    "active_requests",
    "new_requests",
    "matched",
    "unmatched",
    "feasible",
    "upload_used",
    "upload_capacity",
    "demands_injected",
    "demands_rejected",
    "playback_starts",
    "offline_boxes",
    "degraded",
    "repair_fallback",
    "shard_restarts",
)


@dataclass(frozen=True)
class CrosscheckReport:
    """Outcome of one scenario's event/round cross-check."""

    scenario: str
    seed: int
    rounds: int
    mismatches: Tuple[str, ...] = ()
    admission_latency_p50: Optional[float] = None
    admission_latency_p99: Optional[float] = None
    startup_delay_p50: Optional[float] = None
    startup_delay_p99: Optional[float] = None
    round_event_counts: Tuple[Dict[str, int], ...] = field(default=())

    @property
    def matched(self) -> bool:
        """Whether every record agreed (no mismatches)."""
        return not self.mismatches

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form (what the CLI prints)."""
        return {
            "scenario": self.scenario,
            "seed": int(self.seed),
            "rounds": int(self.rounds),
            "matched": self.matched,
            "mismatches": list(self.mismatches),
            "admission_latency_p50": self.admission_latency_p50,
            "admission_latency_p99": self.admission_latency_p99,
            "startup_delay_p50": self.startup_delay_p50,
            "startup_delay_p99": self.startup_delay_p99,
        }


def _run_session(spec: ScenarioSpec, seed: Optional[int], rounds: int):
    compiled = build_scenario(spec, seed=seed, min_horizon=rounds)
    session = compiled.session(horizon=rounds)
    reports = session.step_until(rounds=rounds)
    return compiled, reports, session.result()


def crosscheck_scenario(
    scenario: Union[str, ScenarioSpec],
    seed: Optional[int] = None,
    rounds: Optional[int] = None,
) -> CrosscheckReport:
    """Run ``scenario`` through both engine modes and compare them.

    ``seed`` defaults to the spec's; ``rounds`` to its horizon.  Works on
    fault-injecting (chaos) scenarios too — both sessions drive the same
    fault driver schedule, so parity must hold through the fault windows.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    rounds = spec.horizon if rounds is None else int(rounds)
    _, round_reports, round_result = _run_session(
        spec.with_overrides(engine="round"), seed, rounds
    )
    event_compiled, event_reports, event_result = _run_session(
        spec.with_overrides(engine="event"), seed, rounds
    )
    counts = event_compiled.simulator.round_event_counts

    mismatches: List[str] = []
    if len(round_reports) != len(event_reports):
        mismatches.append(
            f"round count: round engine {len(round_reports)}, "
            f"event engine {len(event_reports)}"
        )
    for index, (round_report, event_report) in enumerate(
        zip(round_reports, event_reports)
    ):
        for name in _PARITY_FIELDS:
            expected = getattr(round_report, name)
            got = getattr(event_report, name)
            if expected != got:
                mismatches.append(
                    f"round {index} field {name}: round engine {expected!r}, "
                    f"event engine {got!r}"
                )
    for index, (bins, event_report) in enumerate(zip(counts, event_reports)):
        rejected = bins["arrivals"] - bins["accepted"]
        if rejected != event_report.demands_rejected:
            mismatches.append(
                f"round {index} binned rejections {rejected} != report "
                f"{event_report.demands_rejected}"
            )
        if bins["playback_starts"] != event_report.playback_starts:
            mismatches.append(
                f"round {index} binned playback starts {bins['playback_starts']} "
                f"!= report {event_report.playback_starts}"
            )
    if len(counts) != len(event_reports):
        mismatches.append(
            f"event trace rounds {len(counts)} != reports {len(event_reports)}"
        )
    round_total = round_result.metrics.total_demands
    event_total = event_result.metrics.total_demands
    if round_total != event_total:
        mismatches.append(
            f"total demands: round engine {round_total}, event engine {event_total}"
        )
    binned_total = sum(b["accepted"] for b in counts)
    if binned_total != event_total:
        mismatches.append(
            f"binned accepted total {binned_total} != metrics {event_total}"
        )

    metrics = event_result.metrics
    return CrosscheckReport(
        scenario=spec.name,
        seed=int(seed if seed is not None else spec.default_seed),
        rounds=rounds,
        mismatches=tuple(mismatches),
        admission_latency_p50=metrics.admission_latency_p50,
        admission_latency_p99=metrics.admission_latency_p99,
        startup_delay_p50=metrics.startup_delay_p50,
        startup_delay_p99=metrics.startup_delay_p99,
        round_event_counts=counts,
    )
