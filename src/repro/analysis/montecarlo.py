"""Monte-Carlo estimation of obstruction probability and catalog feasibility.

The proofs bound the probability that a *random allocation* admits an
obstruction; these estimators measure the same quantity empirically:

* :func:`estimate_simulation_failure_probability` — draw allocations,
  run the full round-based simulator against a chosen workload and count
  the fraction of runs with at least one infeasible round;
* :func:`estimate_static_obstruction_probability` — a cheaper static
  probe: draw allocations and check the Lemma 1 condition for the
  cold-start request profile (every stripe of ``j`` distinct videos
  requested once, for a sweep of ``j``), which needs no simulation;
* :func:`find_max_feasible_catalog` — binary-search the largest catalog
  ``m`` for which the failure estimate stays below a tolerance; the
  empirical analogue of "achievable catalog size".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import (
    Allocation,
    AllocationError,
    random_independent_allocation,
    random_permutation_allocation,
)
from repro.core.matching import ConnectionMatcher, PossessionIndex, RequestSet, StripeRequest
from repro.core.parameters import BoxPopulation, homogeneous_population
from repro.core.video import Catalog
from repro.sim.engine import VodSimulator
from repro.util.rng import RandomState, spawn_generators
from repro.util.validation import check_positive_integer, check_probability
from repro.workloads.base import DemandGenerator

__all__ = [
    "MonteCarloResult",
    "estimate_static_obstruction_probability",
    "estimate_simulation_failure_probability",
    "find_max_feasible_catalog",
]

AllocatorFn = Callable[[Catalog, BoxPopulation, int, object], Allocation]
WorkloadFactory = Callable[[np.random.Generator], DemandGenerator]


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a Monte-Carlo estimation.

    Attributes
    ----------
    trials:
        Number of trials run.
    failures:
        Number of trials exhibiting at least one obstruction / infeasible
        round.
    failure_probability:
        ``failures / trials``.
    confidence_halfwidth:
        Half-width of the 95% normal-approximation confidence interval.
    details:
        Optional per-trial payload (kept small).
    """

    trials: int
    failures: int
    failure_probability: float
    confidence_halfwidth: float
    details: Tuple[Dict[str, float], ...] = ()

    def describe(self) -> Dict[str, float]:
        """Flat dictionary view for tables."""
        return {
            "trials": self.trials,
            "failures": self.failures,
            "failure_probability": self.failure_probability,
            "confidence_halfwidth": self.confidence_halfwidth,
        }


def _confidence_halfwidth(successes: int, trials: int) -> float:
    if trials == 0:
        return float("nan")
    p = successes / trials
    return 1.96 * math.sqrt(max(p * (1.0 - p), 1e-12) / trials)


def _allocator(scheme: str) -> Callable:
    if scheme == "permutation":
        return random_permutation_allocation
    if scheme == "independent":
        return random_independent_allocation
    raise ValueError(f"unknown allocation scheme {scheme!r}")


def estimate_static_obstruction_probability(
    n: int,
    u: float,
    d: float,
    c: int,
    k: int,
    num_cold_videos: Sequence[int],
    trials: int = 50,
    scheme: str = "permutation",
    random_state: RandomState = None,
    duration: int = 120,
) -> MonteCarloResult:
    """Probability that a random allocation fails the cold-start sourcing test.

    For each trial a fresh allocation is drawn on a homogeneous
    ``(n, u, d)`` population with catalog ``m = ⌊d·n/k⌋``.  For every
    ``j ∈ num_cold_videos`` the probe requests all ``c`` stripes of ``j``
    distinct videos (one viewer per video, no cache help) and checks the
    Lemma 1 feasibility through max flow.  A trial fails if any probe is
    infeasible — i.e. the allocation admits a cold-start obstruction.
    """
    check_positive_integer(trials, "trials")
    m = int(d * n // k)
    if m <= 0:
        raise ValueError(f"storage d·n={d * n} cannot hold k={k} replicas of any catalog")
    catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
    population = homogeneous_population(n, u, d)
    allocate = _allocator(scheme)
    generators = spawn_generators(random_state, trials)
    upload_slots = population.upload_slots(c)

    failures = 0
    details: List[Dict[str, float]] = []
    for trial, gen in enumerate(generators):
        allocation = allocate(catalog, population, k, gen)
        possession = PossessionIndex(allocation, cache_window=duration)
        matcher = ConnectionMatcher(upload_slots)
        trial_failed = False
        worst_unmatched = 0
        for j in num_cold_videos:
            j = int(j)
            if j <= 0 or j > min(m, n):
                raise ValueError(
                    f"num_cold_videos entries must lie in [1, min(m, n)] = "
                    f"[1, {min(m, n)}], got {j}"
                )
            videos = gen.choice(m, size=j, replace=False)
            viewers = gen.choice(n, size=j, replace=False)
            requests = RequestSet()
            for video, viewer in zip(videos, viewers):
                for stripe_index in range(c):
                    requests.add(
                        StripeRequest(
                            stripe_id=int(video) * c + stripe_index,
                            request_time=0,
                            box_id=int(viewer),
                        )
                    )
            matching = matcher.match(requests, possession, current_time=0)
            if not matching.feasible:
                trial_failed = True
                worst_unmatched = max(
                    worst_unmatched, len(requests) - matching.matched
                )
        if trial_failed:
            failures += 1
        details.append(
            {"trial": trial, "failed": float(trial_failed), "worst_unmatched": worst_unmatched}
        )
    return MonteCarloResult(
        trials=trials,
        failures=failures,
        failure_probability=failures / trials,
        confidence_halfwidth=_confidence_halfwidth(failures, trials),
        details=tuple(details),
    )


def estimate_simulation_failure_probability(
    population: BoxPopulation,
    catalog: Catalog,
    k: int,
    mu: float,
    workload_factory: WorkloadFactory,
    num_rounds: int,
    trials: int = 20,
    scheme: str = "permutation",
    random_state: RandomState = None,
    scheduler_factory: Optional[Callable[[Allocation], object]] = None,
    compensation_plan=None,
) -> MonteCarloResult:
    """Probability that a random allocation yields an infeasible simulated run.

    For each trial a fresh allocation is drawn, a fresh workload is created
    from ``workload_factory(rng)`` and the full simulator is run for
    ``num_rounds`` rounds; the trial fails if any round's matching is
    infeasible.
    """
    check_positive_integer(trials, "trials")
    check_positive_integer(num_rounds, "num_rounds")
    allocate = _allocator(scheme)
    generators = spawn_generators(random_state, 2 * trials)
    failures = 0
    details: List[Dict[str, float]] = []
    for trial in range(trials):
        alloc_gen = generators[2 * trial]
        workload_gen = generators[2 * trial + 1]
        allocation = allocate(catalog, population, k, alloc_gen)
        scheduler = scheduler_factory(allocation) if scheduler_factory else None
        simulator = VodSimulator(
            allocation,
            mu=mu,
            scheduler=scheduler,
            compensation_plan=compensation_plan,
            stop_on_infeasible=True,
        )
        workload = workload_factory(workload_gen)
        result = simulator.run(workload, num_rounds)
        failed = not result.feasible
        if failed:
            failures += 1
        details.append(
            {
                "trial": trial,
                "failed": float(failed),
                "infeasible_rounds": result.metrics.infeasible_rounds,
                "demands": result.metrics.total_demands,
            }
        )
    return MonteCarloResult(
        trials=trials,
        failures=failures,
        failure_probability=failures / trials,
        confidence_halfwidth=_confidence_halfwidth(failures, trials),
        details=tuple(details),
    )


def find_max_feasible_catalog(
    n: int,
    u: float,
    d: float,
    c: int,
    k: int,
    mu: float,
    workload_factory: WorkloadFactory,
    num_rounds: int,
    trials_per_point: int = 5,
    tolerance: float = 0.0,
    duration: int = 120,
    scheme: str = "permutation",
    random_state: RandomState = None,
    m_min: int = 1,
    m_max: Optional[int] = None,
) -> Dict[str, float]:
    """Binary-search the largest catalog whose empirical failure rate ≤ ``tolerance``.

    Returns a dictionary with the located catalog, the failure rate at
    that point and the search bounds.  The storage constraint
    ``m ≤ ⌊d·n/k⌋`` caps the search range.
    """
    check_probability(tolerance, "tolerance")
    storage_cap = int(d * n // k)
    if storage_cap < 1:
        raise ValueError("storage cannot hold even one video at this replication")
    hi = storage_cap if m_max is None else min(m_max, storage_cap)
    lo = max(m_min, 1)
    if lo > hi:
        raise ValueError(f"empty search range [{lo}, {hi}]")
    population = homogeneous_population(n, u, d)

    def failure_rate(m: int, seed_offset: int) -> float:
        catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
        result = estimate_simulation_failure_probability(
            population=population,
            catalog=catalog,
            k=k,
            mu=mu,
            workload_factory=workload_factory,
            num_rounds=num_rounds,
            trials=trials_per_point,
            scheme=scheme,
            random_state=None if random_state is None else int(random_state) + seed_offset,
        )
        return result.failure_probability

    best_m = 0
    best_rate = 1.0
    offset = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        rate = failure_rate(mid, offset)
        offset += 1
        if rate <= tolerance:
            best_m, best_rate = mid, rate
            lo = mid + 1
        else:
            hi = mid - 1
    return {
        "max_feasible_catalog": best_m,
        "failure_rate": best_rate,
        "storage_cap": storage_cap,
        "n": n,
        "u": u,
        "d": d,
        "c": c,
        "k": k,
        "mu": mu,
    }
