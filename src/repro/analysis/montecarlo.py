"""Monte-Carlo estimation of obstruction probability and catalog feasibility.

The proofs bound the probability that a *random allocation* admits an
obstruction; these estimators measure the same quantity empirically:

* :func:`estimate_simulation_failure_probability` — draw allocations,
  run the full round-based simulator against a chosen workload and count
  the fraction of runs with at least one infeasible round;
* :func:`estimate_static_obstruction_probability` — a cheaper static
  probe: draw allocations and check the Lemma 1 condition for the
  cold-start request profile (every stripe of ``j`` distinct videos
  requested once, for a sweep of ``j``), which needs no simulation;
* :func:`find_max_feasible_catalog` — binary-search the largest catalog
  ``m`` for which the failure estimate stays below a tolerance; the
  empirical analogue of "achievable catalog size".

Every estimator accepts ``n_jobs``: with ``n_jobs > 1`` the trials are
fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`.  Each
trial is driven by a :class:`numpy.random.SeedSequence` child spawned from
the master seed *before* the fan-out, and results are reduced in trial
order, so parallel runs are bit-identical to serial ones for a fixed seed.
Parallel simulation trials additionally require the ``workload_factory``
(and ``scheduler_factory`` / ``compensation_plan``, when given) to be
picklable — module-level callables rather than lambdas.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.registry import component_factory
from repro.api.system import VodSystem
from repro.core.allocation import Allocation, AllocationError
from repro.core.matching import ConnectionMatcher, PossessionIndex, RequestSet, StripeRequest
from repro.core.parameters import BoxPopulation, homogeneous_population
from repro.core.video import Catalog
from repro.util.rng import RandomState, spawn_seed_sequences
from repro.util.validation import check_positive_integer, check_probability
from repro.workloads.base import DemandGenerator

__all__ = [
    "MonteCarloResult",
    "estimate_static_obstruction_probability",
    "estimate_simulation_failure_probability",
    "find_max_feasible_catalog",
]

AllocatorFn = Callable[[Catalog, BoxPopulation, int, object], Allocation]
WorkloadFactory = Callable[[np.random.Generator], DemandGenerator]


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of a Monte-Carlo estimation.

    Attributes
    ----------
    trials:
        Number of trials run.
    failures:
        Number of trials exhibiting at least one obstruction / infeasible
        round.
    failure_probability:
        ``failures / trials``.
    confidence_halfwidth:
        Half-width of the 95% normal-approximation confidence interval.
    details:
        Optional per-trial payload (kept small; every value is a float).
    """

    trials: int
    failures: int
    failure_probability: float
    confidence_halfwidth: float
    details: Tuple[Dict[str, float], ...] = ()

    def describe(self) -> Dict[str, float]:
        """Flat dictionary view for tables."""
        return {
            "trials": self.trials,
            "failures": self.failures,
            "failure_probability": self.failure_probability,
            "confidence_halfwidth": self.confidence_halfwidth,
        }


def _confidence_halfwidth(successes: int, trials: int) -> float:
    if trials == 0:
        return float("nan")
    p = successes / trials
    return 1.96 * math.sqrt(max(p * (1.0 - p), 1e-12) / trials)


def _allocator(scheme: str) -> Callable:
    """Resolve an allocation scheme through the component registry.

    Returns a ``(catalog, population, k, rng) -> Allocation`` callable, the
    historical trial-function shape; any registered scheme name works
    (including the ``full_replication`` baseline).
    """
    try:
        factory = component_factory("allocation", scheme)
    except KeyError:
        raise ValueError(f"unknown allocation scheme {scheme!r}") from None

    def allocate(catalog: Catalog, population: BoxPopulation, k: int, rng) -> Allocation:
        return factory(catalog, population, k, {}, rng)

    return allocate


def _resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` spec to a concrete worker count."""
    if n_jobs is None:
        return 1
    if isinstance(n_jobs, bool) or not isinstance(n_jobs, (int, np.integer)):
        raise TypeError(f"n_jobs must be an integer, -1, or None, got {n_jobs!r}")
    if n_jobs == 1:
        return 1
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError("n_jobs must be a positive count, -1, or None")
    return int(n_jobs)


def _run_trials(worker: Callable, payloads: List[tuple], n_jobs: int) -> List[tuple]:
    """Run one payload per trial, serially or over a process pool.

    Results come back in trial order either way, so the reduction (and
    therefore failure counts, details and confidence intervals) is
    bit-identical between the serial and parallel paths.  A pool broken
    by a dying worker (OOM kill, SIGKILL, interpreter crash) degrades to
    a serial re-run of every payload rather than failing the estimate:
    trials are pure functions of their pre-spawned seeds, so the serial
    pass reproduces exactly what the pool would have returned.
    """
    jobs = _resolve_jobs(n_jobs)
    if jobs == 1 or len(payloads) <= 1:
        return [worker(payload) for payload in payloads]
    workers = min(jobs, len(payloads))
    # Chunking amortizes the per-payload pickling of the shared objects
    # (population, catalog, factories); map preserves order either way.
    chunksize = max(1, len(payloads) // (workers * 4))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, payloads, chunksize=chunksize))
    except BrokenProcessPool:
        return [worker(payload) for payload in payloads]


# ---------------------------------------------------------------------- #
# Static cold-start obstruction probe
# ---------------------------------------------------------------------- #
def _static_obstruction_trial(payload: tuple) -> Tuple[bool, int]:
    """One static-probe trial; top-level so process pools can pickle it."""
    (seed, n, u, d, c, k, m, num_cold_videos, scheme, duration, solver) = payload
    gen = np.random.default_rng(seed)
    catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
    population = homogeneous_population(n, u, d)
    allocation = _allocator(scheme)(catalog, population, k, gen)
    possession = PossessionIndex(allocation, cache_window=duration)
    matcher = ConnectionMatcher(population.upload_slots(c), solver=solver)
    trial_failed = False
    worst_unmatched = 0
    for j in num_cold_videos:
        videos = gen.choice(m, size=j, replace=False)
        viewers = gen.choice(n, size=j, replace=False)
        requests = RequestSet()
        for video, viewer in zip(videos, viewers):
            for stripe_index in range(c):
                requests.add(
                    StripeRequest(
                        stripe_id=int(video) * c + stripe_index,
                        request_time=0,
                        box_id=int(viewer),
                    )
                )
        matching = matcher.match(requests, possession, current_time=0)
        if not matching.feasible:
            trial_failed = True
            worst_unmatched = max(worst_unmatched, len(requests) - matching.matched)
    return trial_failed, worst_unmatched


def estimate_static_obstruction_probability(
    n: int,
    u: float,
    d: float,
    c: int,
    k: int,
    num_cold_videos: Sequence[int],
    trials: int = 50,
    scheme: str = "permutation",
    random_state: RandomState = None,
    duration: int = 120,
    n_jobs: int = 1,
    solver: str = "hopcroft_karp",
) -> MonteCarloResult:
    """Probability that a random allocation fails the cold-start sourcing test.

    For each trial a fresh allocation is drawn on a homogeneous
    ``(n, u, d)`` population with catalog ``m = ⌊d·n/k⌋``.  For every
    ``j ∈ num_cold_videos`` the probe requests all ``c`` stripes of ``j``
    distinct videos (one viewer per video, no cache help) and checks the
    Lemma 1 feasibility through max flow.  A trial fails if any probe is
    infeasible — i.e. the allocation admits a cold-start obstruction.

    ``n_jobs > 1`` fans the trials out over worker processes; the result
    is bit-identical to the serial run for a fixed ``random_state``.
    """
    check_positive_integer(trials, "trials")
    m = int(d * n // k)
    if m <= 0:
        raise ValueError(f"storage d·n={d * n} cannot hold k={k} replicas of any catalog")
    cold = [int(j) for j in num_cold_videos]
    for j in cold:
        if j <= 0 or j > min(m, n):
            raise ValueError(
                f"num_cold_videos entries must lie in [1, min(m, n)] = "
                f"[1, {min(m, n)}], got {j}"
            )
    _allocator(scheme)  # validate the scheme before spawning workers
    seeds = spawn_seed_sequences(random_state, trials)
    payloads = [
        (seed, n, u, d, c, k, m, cold, scheme, duration, solver) for seed in seeds
    ]
    outcomes = _run_trials(_static_obstruction_trial, payloads, n_jobs)

    failures = 0
    details: List[Dict[str, float]] = []
    for trial, (trial_failed, worst_unmatched) in enumerate(outcomes):
        if trial_failed:
            failures += 1
        details.append(
            {
                "trial": float(trial),
                "failed": float(trial_failed),
                "worst_unmatched": float(worst_unmatched),
            }
        )
    return MonteCarloResult(
        trials=trials,
        failures=failures,
        failure_probability=failures / trials,
        confidence_halfwidth=_confidence_halfwidth(failures, trials),
        details=tuple(details),
    )


# ---------------------------------------------------------------------- #
# Full simulation estimator
# ---------------------------------------------------------------------- #
def _simulation_trial(payload: tuple) -> Tuple[bool, int, int]:
    """One full-simulator trial; top-level so process pools can pickle it."""
    (
        alloc_seed,
        workload_seed,
        population,
        catalog,
        k,
        mu,
        workload_factory,
        num_rounds,
        scheme,
        scheduler_factory,
        compensation_plan,
    ) = payload
    alloc_gen = np.random.default_rng(alloc_seed)
    workload_gen = np.random.default_rng(workload_seed)
    allocation = _allocator(scheme)(catalog, population, k, alloc_gen)
    scheduler = scheduler_factory(allocation) if scheduler_factory else None
    simulator = VodSystem.for_allocation(allocation, mu=mu).build_simulator(
        scheduler=scheduler,
        compensation_plan=compensation_plan,
        stop_on_infeasible=True,
    )
    workload = workload_factory(workload_gen)
    result = simulator.run(workload, num_rounds)
    return (
        not result.feasible,
        result.metrics.infeasible_rounds,
        result.metrics.total_demands,
    )


def estimate_simulation_failure_probability(
    population: BoxPopulation,
    catalog: Catalog,
    k: int,
    mu: float,
    workload_factory: WorkloadFactory,
    num_rounds: int,
    trials: int = 20,
    scheme: str = "permutation",
    random_state: RandomState = None,
    scheduler_factory: Optional[Callable[[Allocation], object]] = None,
    compensation_plan=None,
    n_jobs: int = 1,
) -> MonteCarloResult:
    """Probability that a random allocation yields an infeasible simulated run.

    For each trial a fresh allocation is drawn, a fresh workload is created
    from ``workload_factory(rng)`` and the full simulator is run for
    ``num_rounds`` rounds; the trial fails if any round's matching is
    infeasible.

    ``n_jobs > 1`` fans the trials out over worker processes (requires the
    factories to be picklable); results are bit-identical to serial runs.
    """
    check_positive_integer(trials, "trials")
    check_positive_integer(num_rounds, "num_rounds")
    _allocator(scheme)  # validate the scheme before spawning workers
    seeds = spawn_seed_sequences(random_state, 2 * trials)
    payloads = [
        (
            seeds[2 * trial],
            seeds[2 * trial + 1],
            population,
            catalog,
            k,
            mu,
            workload_factory,
            num_rounds,
            scheme,
            scheduler_factory,
            compensation_plan,
        )
        for trial in range(trials)
    ]
    outcomes = _run_trials(_simulation_trial, payloads, n_jobs)

    failures = 0
    details: List[Dict[str, float]] = []
    for trial, (failed, infeasible_rounds, demands) in enumerate(outcomes):
        if failed:
            failures += 1
        details.append(
            {
                "trial": float(trial),
                "failed": float(failed),
                "infeasible_rounds": float(infeasible_rounds),
                "demands": float(demands),
            }
        )
    return MonteCarloResult(
        trials=trials,
        failures=failures,
        failure_probability=failures / trials,
        confidence_halfwidth=_confidence_halfwidth(failures, trials),
        details=tuple(details),
    )


def find_max_feasible_catalog(
    n: int,
    u: float,
    d: float,
    c: int,
    k: int,
    mu: float,
    workload_factory: WorkloadFactory,
    num_rounds: int,
    trials_per_point: int = 5,
    tolerance: float = 0.0,
    duration: int = 120,
    scheme: str = "permutation",
    random_state: RandomState = None,
    m_min: int = 1,
    m_max: Optional[int] = None,
    n_jobs: int = 1,
) -> Dict[str, float]:
    """Binary-search the largest catalog whose empirical failure rate ≤ ``tolerance``.

    Returns a dictionary with the located catalog, the failure rate at
    that point and the search bounds.  The storage constraint
    ``m ≤ ⌊d·n/k⌋`` caps the search range.  Each probed catalog size gets
    an independent child seed stream spawned from ``random_state`` (any
    :data:`~repro.util.rng.RandomState` spec, including a
    ``numpy.random.Generator``, is accepted).
    """
    check_probability(tolerance, "tolerance")
    storage_cap = int(d * n // k)
    if storage_cap < 1:
        raise ValueError("storage cannot hold even one video at this replication")
    hi = storage_cap if m_max is None else min(m_max, storage_cap)
    lo = max(m_min, 1)
    if lo > hi:
        raise ValueError(f"empty search range [{lo}, {hi}]")
    population = homogeneous_population(n, u, d)

    # One child stream per possible binary-search probe, spawned up front
    # so any RandomState spec (int, Generator, SeedSequence) works.
    max_evals = (hi - lo + 1).bit_length() + 1
    if random_state is None:
        streams: List[Optional[np.random.SeedSequence]] = [None] * max_evals
    else:
        streams = list(spawn_seed_sequences(random_state, max_evals))

    def failure_rate(m: int, seed_offset: int) -> float:
        catalog = Catalog(num_videos=m, num_stripes=c, duration=duration)
        result = estimate_simulation_failure_probability(
            population=population,
            catalog=catalog,
            k=k,
            mu=mu,
            workload_factory=workload_factory,
            num_rounds=num_rounds,
            trials=trials_per_point,
            scheme=scheme,
            random_state=streams[seed_offset],
            n_jobs=n_jobs,
        )
        return result.failure_probability

    best_m = 0
    best_rate = 1.0
    offset = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        rate = failure_rate(mid, offset)
        offset += 1
        if rate <= tolerance:
            best_m, best_rate = mid, rate
            lo = mid + 1
        else:
            hi = mid - 1
    return {
        "max_feasible_catalog": best_m,
        "failure_rate": best_rate,
        "storage_cap": storage_cap,
        "n": n,
        "u": u,
        "d": d,
        "c": c,
        "k": k,
        "mu": mu,
    }
