"""Analysis layer: bound numerics, Monte-Carlo estimation, sweeps and reports."""

from repro.analysis.bounds import (
    catalog_bound_vs_n,
    catalog_bound_vs_upload,
    heterogeneous_design_table,
    obstruction_bound_vs_k,
    quality_tradeoff_table,
    replication_vs_upload,
    threshold_design_table,
)
from repro.analysis.montecarlo import (
    MonteCarloResult,
    estimate_simulation_failure_probability,
    estimate_static_obstruction_probability,
    find_max_feasible_catalog,
)
from repro.analysis.report import (
    format_value,
    print_table,
    render_markdown_table,
    render_table,
)
from repro.analysis.sweep import ParameterSweep, SweepResult, cartesian_grid

__all__ = [
    "catalog_bound_vs_n",
    "catalog_bound_vs_upload",
    "heterogeneous_design_table",
    "obstruction_bound_vs_k",
    "quality_tradeoff_table",
    "replication_vs_upload",
    "threshold_design_table",
    "MonteCarloResult",
    "estimate_simulation_failure_probability",
    "estimate_static_obstruction_probability",
    "find_max_feasible_catalog",
    "format_value",
    "print_table",
    "render_markdown_table",
    "render_table",
    "ParameterSweep",
    "SweepResult",
    "cartesian_grid",
]
