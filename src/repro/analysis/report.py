"""Table rendering for experiment reports.

The benchmark harness prints every reproduced table in a fixed-width ASCII
(or Markdown) format so that the "rows/series the paper reports" are
visible directly in the benchmark output and can be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = ["format_value", "render_table", "render_markdown_table", "print_table"]


def format_value(value: Any, precision: int = 4) -> str:
    """Human-readable rendering of a cell value."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def _normalize(rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]]) -> tuple:
    if not rows:
        return list(columns or []), []
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    table = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    return list(columns), table


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width ASCII table."""
    cols, table = _normalize(rows, columns)
    if not cols:
        return title or "(empty table)"
    widths = [len(str(col)) for col in cols]
    for line in table:
        for idx, cell in enumerate(line):
            widths[idx] = max(widths[idx], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    header = " | ".join(str(col).ljust(w) for col, w in zip(cols, widths))
    body_lines = [
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in table
    ]
    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(header)
    parts.append(sep)
    parts.extend(body_lines)
    return "\n".join(parts)


def render_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    cols, table = _normalize(rows, columns)
    if not cols:
        return f"**{title}**\n\n(empty table)" if title else "(empty table)"
    header = "| " + " | ".join(str(c) for c in cols) + " |"
    divider = "| " + " | ".join("---" for _ in cols) + " |"
    body = ["| " + " | ".join(line) + " |" for line in table]
    parts: List[str] = []
    if title:
        parts.append(f"**{title}**")
        parts.append("")
    parts.append(header)
    parts.append(divider)
    parts.extend(body)
    return "\n".join(parts)


def print_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    """Print an ASCII table (convenience wrapper used by the benchmarks)."""
    print()
    print(render_table(rows, columns=columns, title=title))
    print()
