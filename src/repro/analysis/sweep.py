"""Generic parameter-sweep harness.

Every experiment in EXPERIMENTS.md is a sweep: a grid of parameter points,
a function evaluated at each point returning a flat record, and a table of
the collected records.  :class:`ParameterSweep` factors that pattern so
that benchmarks stay short and uniform.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["SweepResult", "ParameterSweep", "cartesian_grid"]


def cartesian_grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes as a list of dictionaries.

    >>> cartesian_grid(u=[1.5, 2.0], n=[10, 20])  # doctest: +NORMALIZE_WHITESPACE
    [{'u': 1.5, 'n': 10}, {'u': 1.5, 'n': 20},
     {'u': 2.0, 'n': 10}, {'u': 2.0, 'n': 20}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    for name, values in axes.items():
        if len(values) == 0:
            raise ValueError(f"axis {name!r} has no values")
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass
class SweepResult:
    """Collected records of a parameter sweep."""

    rows: List[Dict[str, Any]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def columns(self) -> List[str]:
        """Union of the column names across all rows (stable order)."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            for key in row:
                seen.setdefault(key, None)
        return list(seen)

    def column(self, name: str) -> List[Any]:
        """Values of one column across rows (``None`` where missing)."""
        return [row.get(name) for row in self.rows]

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "SweepResult":
        """Rows satisfying a predicate, as a new result."""
        return SweepResult(rows=[row for row in self.rows if predicate(row)])

    def sort_by(self, *keys: str) -> "SweepResult":
        """Rows sorted by the given column names, as a new result."""
        return SweepResult(rows=sorted(self.rows, key=lambda r: tuple(r.get(k) for k in keys)))


class ParameterSweep:
    """Evaluate a function over a parameter grid and collect flat records.

    Parameters
    ----------
    func:
        Callable invoked as ``func(**point)``; it must return either a flat
        mapping (merged with the point into one row) or a list of flat
        mappings (each merged with the point into its own row).
    """

    def __init__(self, func: Callable[..., Any]):
        self._func = func

    def run(
        self,
        grid: Iterable[Mapping[str, Any]],
        progress: Optional[Callable[[int, Mapping[str, Any]], None]] = None,
    ) -> SweepResult:
        """Evaluate every point of ``grid`` and collect the rows."""
        result = SweepResult()
        for index, point in enumerate(grid):
            if progress is not None:
                progress(index, point)
            outcome = self._func(**point)
            if isinstance(outcome, Mapping):
                outcomes: List[Mapping[str, Any]] = [outcome]
            elif isinstance(outcome, (list, tuple)):
                outcomes = list(outcome)
            else:
                raise TypeError(
                    "sweep function must return a mapping or a list of mappings, "
                    f"got {type(outcome).__name__}"
                )
            for record in outcomes:
                row = dict(point)
                row.update(record)
                result.rows.append(row)
        return result
