"""Sourcing-only baseline (the authors' preliminary work [3]).

The preliminary work "Achievable catalog size in peer-to-peer video-on-
demand systems" treats *sourcing* only: requests are assumed to concern
pairwise distinct videos and must be satisfied from the static allocation,
with no help from the playback caches of other viewers (no swarming).
Reproducing it amounts to running the same random allocation and matcher
while disabling the cache component of the possession relation — which is
what :class:`SourcingOnlyPossessionIndex` does — so the head-to-head
comparison in the baseline experiment isolates exactly the contribution of
mixing sourcing and swarming.
"""

from __future__ import annotations

from typing import Set

import numpy as np

from repro.core.allocation import Allocation
from repro.core.matching import PossessionIndex, StripeRequest
from repro.core.video import StripeId

__all__ = ["SourcingOnlyPossessionIndex", "sourcing_capacity_bound"]

_NO_SERVERS = np.empty(0, dtype=np.int64)


class SourcingOnlyPossessionIndex(PossessionIndex):
    """A possession index that ignores playback caches (pure sourcing).

    Only the static allocation (and relay caches, which are also static
    reservations) can serve a request.  Cache bookkeeping methods still
    accept updates so the index is a drop-in replacement inside the
    simulator, but :meth:`cache_servers` always reports no servers.
    """

    def _cache_boxes_array(
        self, stripe_id: int, request_time: int, current_time: int
    ) -> np.ndarray:
        """Sourcing-only: the playback caches of other viewers never help."""
        return _NO_SERVERS

    def cache_servers(
        self, stripe_id: StripeId, request_time: int, current_time: int
    ) -> Set[int]:
        """Sourcing-only: the playback caches of other viewers never help."""
        return set()


def sourcing_capacity_bound(allocation: Allocation) -> int:
    """Maximum simultaneous *distinct-video* viewers a sourcing-only system supports.

    Without swarming, the requests for one video's stripes can only be
    served by the ``k`` boxes holding each stripe, so the aggregate service
    rate for one video is at most ``Σ_{replicas} ⌊u_b·c⌋ / c`` streams.
    This helper returns a simple aggregate bound — the total upload of the
    population in stream units — which is the hard ceiling on simultaneous
    viewers regardless of allocation quality; the simulator measures how
    far below this ceiling the sourcing-only system actually saturates.
    """
    c = allocation.catalog.num_stripes_per_video
    upload_slots = allocation.population.upload_slots(c)
    return int(upload_slots.sum() // c)
