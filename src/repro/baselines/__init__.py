"""Baselines the paper compares against (conceptually).

* Full replication / Push-to-Peer (Suh et al. [22]) — constant catalog,
  pure sourcing (:mod:`repro.baselines.full_replication`);
* Sourcing-only random allocation (the authors' preliminary work [3]) —
  swarming disabled (:mod:`repro.baselines.sourcing_only`);
* Centralized / peer-assisted server (:mod:`repro.baselines.central_server`);
* Hierarchical CDN / vCDN / µCDN caches — the operator deployment shape
  (:mod:`repro.baselines.hierarchy`).
"""

from repro.baselines.central_server import CentralServerModel
from repro.baselines.full_replication import (
    full_replication_allocation,
    max_catalog_full_replication,
)
from repro.baselines.hierarchy import (
    TierLayout,
    hierarchical_cache_allocation,
    tier_layout,
    tiered_population,
)
from repro.baselines.sourcing_only import (
    SourcingOnlyPossessionIndex,
    sourcing_capacity_bound,
)

__all__ = [
    "CentralServerModel",
    "full_replication_allocation",
    "max_catalog_full_replication",
    "TierLayout",
    "hierarchical_cache_allocation",
    "tier_layout",
    "tiered_population",
    "SourcingOnlyPossessionIndex",
    "sourcing_capacity_bound",
]
