"""Full-replication baseline (Push-to-Peer style, Suh et al. [22]).

The seminal server-free proposal replicates the catalog so widely that all
requests are satisfied from *original copies* (pure sourcing): each box
stores a constant portion of every video.  With per-box storage ``d``
videos and minimal chunk size ``ℓ = 1/c``, a box can hold data of at most
``d·c`` videos, so the catalog is capped at ``m ≤ d·c`` — **constant**,
independent of ``n``.  This is exactly the regime the paper improves on
(catalog ``Ω(n)`` instead of ``O(1)`` as soon as ``u > 1``).

The module builds the corresponding allocation (every video striped across
all boxes, each box holding one stripe of each video in a rotating
pattern) so the same simulator and workloads can be run against it in the
baseline-comparison experiment.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.allocation import Allocation, AllocationError
from repro.core.parameters import BoxPopulation
from repro.core.video import Catalog
from repro.util.validation import check_positive, check_positive_integer

__all__ = ["max_catalog_full_replication", "full_replication_allocation"]


def max_catalog_full_replication(d: float, c: int) -> int:
    """Largest catalog a full-replication system supports: ``⌊d·c⌋`` videos.

    Every box must store at least one stripe (chunk of size ``1/c``) of
    every video, so the per-box storage of ``d·c`` stripe slots caps the
    catalog at ``⌊d·c⌋`` — a constant independent of the system size.
    """
    d = check_positive(d, "d")
    c = check_positive_integer(c, "c")
    return int(np.floor(d * c + 1e-9))


def full_replication_allocation(
    catalog: Catalog,
    population: BoxPopulation,
    replicas_per_stripe: Optional[int] = None,
) -> Allocation:
    """Build the Push-to-Peer-style allocation: every box holds a stripe of every video.

    Box ``b`` stores stripe ``(b + v) mod c`` of every video ``v`` (the
    rotation spreads stripes evenly), repeated so that each stripe reaches
    ``k = replicas_per_stripe`` distinct holders (default: ``⌊n/c⌋``, the
    natural value when every box stores exactly one stripe per video).

    Raises
    ------
    AllocationError
        If the catalog exceeds the per-box storage (``m > ⌊d_min·c⌋``) or
        the requested replication cannot be met.
    """
    c = catalog.num_stripes_per_video
    n = population.n
    m = catalog.num_videos
    slots = population.storage_slots(c)
    if np.any(slots < m):
        offender = int(np.argmin(slots))
        raise AllocationError(
            f"full replication requires every box to store one stripe of each of the "
            f"{m} videos, but box {offender} has only {int(slots[offender])} stripe slots "
            f"(catalog cap is {int(slots.min())} videos)"
        )
    if replicas_per_stripe is None:
        replicas_per_stripe = max(n // c, 1)
    k = check_positive_integer(replicas_per_stripe, "replicas_per_stripe")
    if k > n:
        raise AllocationError(
            f"cannot place {k} distinct replicas of a stripe on {n} boxes"
        )

    replica_box = np.empty(m * c * k, dtype=np.int64)
    for video_id in range(m):
        for stripe_index in range(c):
            stripe_id = video_id * c + stripe_index
            # Boxes holding this stripe: those with (b + video) ≡ stripe (mod c),
            # cycled until k replicas are placed.
            base_boxes = [
                b for b in range(n) if (b + video_id) % c == stripe_index
            ]
            if not base_boxes:
                base_boxes = list(range(n))
            holders = [base_boxes[j % len(base_boxes)] for j in range(k)]
            replica_box[stripe_id * k: (stripe_id + 1) * k] = holders
    return Allocation(
        catalog=catalog,
        population=population,
        replicas_per_stripe=k,
        replica_box=replica_box,
        scheme="full_replication",
    )
