"""Hierarchical CDN / vCDN / µCDN baseline (what operators deploy).

The paper's scheme spreads catalog and upload across *all* boxes; the
operator alternative is a capacity hierarchy (per the algotel2016 vCDN
placement spec shape): a few big **CDN** origin boxes that hold
everything they are asked to, a middle tier of **vCDN** helper caches,
and a wide edge of small **µCDN** caches, with ordinary client boxes
contributing nothing.  This module builds such populations and a
matching cache-aware allocation so the catalog-vs-replication tradeoff
can be measured against that deployment on the same engine, goldens and
campaign machinery as the paper's schemes.

Two registry components:

* population kind ``tiered`` — :func:`tiered_population`: boxes laid out
  deterministically as CDN, then vCDN, then µCDN, then clients, each
  tier with its own ``(u, d)``;
* allocation scheme ``hierarchical_cache`` —
  :func:`hierarchical_cache_allocation`: every video keeps one full copy
  on a CDN origin box, and its remaining ``k-1`` replicas are cached
  whole-video on helper boxes filled hottest-video-first (under a
  stationary Zipf law that greedy fill is exactly the LRU fixed point:
  the caches end up holding the most popular videos), preferring vCDN
  over µCDN over clients, with ``rng`` breaking ties uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.core.allocation import Allocation, AllocationError
from repro.core.parameters import BoxPopulation
from repro.core.video import Catalog
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_non_negative, check_non_negative_integer

__all__ = [
    "TIER_NAMES",
    "TierLayout",
    "tier_layout",
    "tiered_population",
    "hierarchical_cache_allocation",
]

#: Tier order is part of the contract: box ids are assigned in this order.
TIER_NAMES = ("cdn", "vcdn", "mucdn", "client")

#: Default tier shape, a scenario-sized scaling of the algotel2016 spec
#: family (6 CDNs of capacity 500 / 100 vCDNs of 30 / 500 µCDNs).
_DEFAULTS: Dict[str, Tuple[int, float, float]] = {
    # name: (count, upload u, storage d)
    "cdn": (2, 8.0, 24.0),
    "vcdn": (6, 3.0, 6.0),
    "mucdn": (12, 1.5, 2.0),
    "client": (16, 1.0, 0.0),
}


@dataclass(frozen=True)
class TierLayout:
    """Box-id ranges of each tier inside a tiered population."""

    counts: Tuple[int, int, int, int]

    @property
    def n(self) -> int:
        return sum(self.counts)

    def slice_of(self, tier: str) -> slice:
        """Contiguous ``slice`` of box ids belonging to ``tier``."""
        index = TIER_NAMES.index(tier)
        start = sum(self.counts[:index])
        return slice(start, start + self.counts[index])

    def boxes_of(self, tier: str) -> np.ndarray:
        """Box ids of ``tier`` as an array."""
        s = self.slice_of(tier)
        return np.arange(s.start, s.stop, dtype=np.int64)


def _tier_params(params: Mapping[str, Any]) -> Dict[str, Tuple[int, float, float]]:
    tiers: Dict[str, Tuple[int, float, float]] = {}
    for name in TIER_NAMES:
        count, upload, storage = _DEFAULTS[name]
        count = check_non_negative_integer(
            params.get(f"{name}_count", count), f"{name}_count"
        )
        upload = check_non_negative(params.get(f"{name}_u", upload), f"{name}_u")
        storage = check_non_negative(params.get(f"{name}_d", storage), f"{name}_d")
        tiers[name] = (count, upload, storage)
    return tiers


def tier_layout(params: Mapping[str, Any]) -> TierLayout:
    """The :class:`TierLayout` implied by tier parameters (or defaults)."""
    tiers = _tier_params(params)
    return TierLayout(counts=tuple(tiers[name][0] for name in TIER_NAMES))


def tiered_population(params: Mapping[str, Any]) -> BoxPopulation:
    """Build a CDN / vCDN / µCDN / client population.

    Parameters are ``<tier>_count``, ``<tier>_u`` and ``<tier>_d`` for
    each tier in :data:`TIER_NAMES`; omitted values fall back to the
    scenario-sized defaults.  Box ids are deterministic: all CDN boxes
    first, then vCDN, then µCDN, then clients.
    """
    tiers = _tier_params(params)
    if sum(count for count, _, _ in tiers.values()) <= 0:
        raise ValueError(
            "tiered population is empty: every <tier>_count is 0 — give at "
            "least one tier a positive count"
        )
    uploads: list = []
    storages: list = []
    for name in TIER_NAMES:
        count, upload, storage = tiers[name]
        uploads.extend([upload] * count)
        storages.extend([storage] * count)
    return BoxPopulation(uploads=uploads, storages=storages)


def hierarchical_cache_allocation(
    catalog: Catalog,
    population: BoxPopulation,
    replicas_per_stripe: int,
    params: Mapping[str, Any] | None = None,
    random_state: RandomState = None,
) -> Allocation:
    """Origin-plus-helper-cache allocation over a tiered population.

    For every video ``v`` (in popularity-rank order, hottest first —
    under a stationary Zipf law this greedy order is the LRU fixed point
    of the helper caches):

    1. replica 0 of each of its ``c`` stripes goes to a CDN origin box,
       round-robin by video with capacity fallback to the next CDN box;
    2. each of the remaining ``k-1`` replicas caches the *whole video*
       (all ``c`` stripes) on one helper box with at least ``c`` free
       slots, preferring vCDN over µCDN over client boxes, ``rng``
       picking uniformly inside the preferred tier; a box never holds
       two replicas of the same video.

    The tier geometry is read from ``params`` exactly as in
    :func:`tiered_population`, so a scenario passes the same tier
    parameters to both components.  Raises :class:`AllocationError`
    with an actionable message when the hierarchy cannot absorb the
    requested catalog.
    """
    params = params or {}
    k = int(replicas_per_stripe)
    layout = tier_layout(params)
    if layout.n != population.n:
        raise AllocationError(
            f"tier layout describes {layout.n} boxes but the population has "
            f"{population.n}; pass the same <tier>_count parameters to the "
            "'tiered' population and the 'hierarchical_cache' allocation"
        )
    cdn = layout.boxes_of("cdn")
    if cdn.size == 0:
        raise AllocationError(
            "hierarchical_cache needs at least one CDN origin box "
            "(cdn_count >= 1): every video keeps one full copy at the origin"
        )
    c = catalog.num_stripes_per_video
    m = catalog.num_videos
    free = population.storage_slots(c).astype(np.int64).copy()
    helper_order = [layout.boxes_of(t) for t in ("vcdn", "mucdn", "client")]
    rng = as_generator(random_state)

    replica_box = np.empty(catalog.total_stripes * k, dtype=np.int64)
    for v in range(m):
        # 1. origin copy on the CDN tier.
        origin = -1
        for probe in range(cdn.size):
            box = int(cdn[(v + probe) % cdn.size])
            if free[box] >= c:
                origin = box
                break
        if origin < 0:
            raise AllocationError(
                f"CDN tier overflow at video {v}/{m}: no origin box has {c} "
                f"free slots left — raise cdn_d or cdn_count (or shrink the "
                "catalog); the origin tier must hold one full copy of every "
                "video"
            )
        free[origin] -= c
        chosen = [origin]
        # 2. helper caches, whole-video, tier-preferred.
        for _replica in range(k - 1):
            box = -1
            for tier_boxes in helper_order:
                eligible = tier_boxes[
                    (free[tier_boxes] >= c)
                    & ~np.isin(tier_boxes, chosen, assume_unique=True)
                ]
                if eligible.size:
                    box = int(rng.choice(eligible))
                    break
            else:
                raise AllocationError(
                    f"helper tiers overflow at video {v}/{m}: no vCDN/µCDN/"
                    f"client box has {c} free slots for replica "
                    f"{len(chosen)}/{k} — raise vcdn_d/mucdn_d, add helper "
                    "boxes, or lower the replication factor k"
                )
            free[box] -= c
            chosen.append(box)
        for stripe in range(c):
            base = (v * c + stripe) * k
            for j, box in enumerate(chosen):
                replica_box[base + j] = box
    return Allocation(
        catalog=catalog,
        population=population,
        replicas_per_stripe=k,
        replica_box=replica_box,
        scheme="hierarchical_cache",
    )
