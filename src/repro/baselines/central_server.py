"""Centralized-server reference model.

The paper positions the fully distributed system as an alternative to
centralized (or peer-assisted) VoD, where a server farm stores the whole
catalog and its uplink is the bottleneck.  This tiny analytical model
provides the comparison points used in the baseline experiment:

* a pure server of capacity ``U`` (in stream units) serves at most ``U``
  simultaneous viewers regardless of the catalog size;
* a *peer-assisted* server additionally harvests the upload of the ``n``
  viewing boxes, serving up to ``U + Σ_b u_b`` concurrent streams, but
  still stores the whole catalog centrally (so the catalog is bounded by
  server storage, not by ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.util.validation import check_non_negative, check_positive

__all__ = ["CentralServerModel"]


@dataclass(frozen=True)
class CentralServerModel:
    """A centralized (optionally peer-assisted) VoD server.

    Attributes
    ----------
    upload_capacity:
        Server uplink in units of the video bitrate.
    storage_capacity:
        Server storage in number of videos (the catalog it can offer).
    peer_assisted:
        Whether viewing boxes contribute their upload to the service.
    """

    upload_capacity: float
    storage_capacity: float
    peer_assisted: bool = False

    def __post_init__(self) -> None:
        check_positive(self.upload_capacity, "upload_capacity")
        check_positive(self.storage_capacity, "storage_capacity")

    @property
    def catalog_size(self) -> int:
        """Catalog offered by the server (its storage, in videos)."""
        return int(self.storage_capacity)

    def max_concurrent_viewers(self, peer_upload_total: float = 0.0) -> float:
        """Maximum simultaneous unit-rate streams the system can sustain.

        ``peer_upload_total`` is the aggregate upload of the currently
        viewing boxes; it only counts when the server is peer-assisted.
        """
        check_non_negative(peer_upload_total, "peer_upload_total")
        if self.peer_assisted:
            return self.upload_capacity + peer_upload_total
        return self.upload_capacity

    def can_serve(self, num_viewers: int, peer_upload_total: float = 0.0) -> bool:
        """Whether ``num_viewers`` simultaneous viewers can be served."""
        if num_viewers < 0:
            raise ValueError("num_viewers must be non-negative")
        return num_viewers <= self.max_concurrent_viewers(peer_upload_total) + 1e-9

    def required_server_upload(self, num_viewers: int, peer_upload_total: float = 0.0) -> float:
        """Server upload needed to serve ``num_viewers`` given peer assistance."""
        if num_viewers < 0:
            raise ValueError("num_viewers must be non-negative")
        assist = peer_upload_total if self.peer_assisted else 0.0
        return max(float(num_viewers) - assist, 0.0)

    def describe(self) -> Dict[str, float]:
        """Flat dictionary view for tables."""
        return {
            "upload_capacity": self.upload_capacity,
            "storage_capacity": self.storage_capacity,
            "peer_assisted": self.peer_assisted,
            "catalog_size": self.catalog_size,
        }
