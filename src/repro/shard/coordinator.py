"""The sharded simulator: a coordinator over per-shard worker processes.

:class:`ShardedVodSimulator` partitions the *box-side* state of the
engine across ``n_shards`` workers while keeping every digest-critical
sequential decision on the coordinator.  Per round:

* **Phase A (partition)** — the round's demand arrivals are split by the
  owning shard of each demanding box (:class:`~repro.shard.plan.ShardPlan`
  preserves arrival order within each slice) and every worker admits its
  slice against its own busy horizons with the shared
  :func:`~repro.sim.rules.admission_mask` rule.  The coordinator gathers
  the accept masks back into global arrival order and assigns *global*
  demand ids in global acceptance order — exactly the demand-log indices
  the single-process engine would have assigned.
* **Matching (coordinate)** — request generation, the global request
  pool and the connection matching run unchanged on the coordinator,
  inherited from :class:`~repro.sim.engine.VodSimulator`.  This is what
  makes the sharded run *digest-identical* to the single-process run:
  the preloading scheduler's per-video stripe rotation and the matcher's
  choice among maximum matchings (which ``peak_box_load`` observes) are
  global sequential state that cannot be partitioned without changing
  the trajectory.
* **Phase B (reconcile)** — each worker receives its shard's slice of
  the round's new request blocks and the set of its rows first served
  this round, mirrors them into its mini pool, and runs playback
  detection over its own demand log.  The coordinator aggregates the
  per-shard playback starts and start-up delays into the one global
  metrics collector, and records the round's cross-shard reconciliation
  statistics (videos whose active swarm spans shards, connections served
  across a shard boundary).

Workers hold the per-box data plane (busy horizons, demand logs, mini
pools, playback detection) — the state that dominates memory at the
millions-of-boxes tiers — in their own processes; the supervising host
rebuilds a crashed worker from its last checkpoint without perturbing
the digest (see :mod:`repro.shard.host`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.preloading import Demand, PreloadingScheduler
from repro.sim.engine import VodSimulator
from repro.sim.events import DemandEvent, PlaybackStartEvent, RequestEvent
from repro.shard.host import (
    InlineShardHost,
    ProcessShardHost,
    ShardHostError,
    ShardTopologyError,
)
from repro.shard.plan import ShardPlan
from repro.shard.worker import ShardWorker
from repro.util.soa import ensure_column_capacity

__all__ = ["ShardedVodSimulator"]

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY_BLOCK = {"stripes": _EMPTY, "boxes": _EMPTY, "demands": _EMPTY}


class ShardedVodSimulator(VodSimulator):
    """A :class:`VodSimulator` whose box-side state runs on shard workers.

    Accepts every :class:`VodSimulator` parameter except that the
    scheduler must be the plain homogeneous
    :class:`~repro.core.preloading.PreloadingScheduler` (without
    ``skip_locally_stored``) and no compensation plan is allowed — the
    relayed timeline routes requests through relay boxes, which breaks
    the "a demand's requests live in its own box's shard" partition
    invariant the workers rely on.

    Parameters (sharding)
    ---------------------
    n_shards:
        Number of box shards (contiguous, near-equal ranges).
    shard_host:
        ``"process"`` (default): one forked worker process per shard,
        supervised with checkpoint + replay recovery.  ``"inline"``: all
        workers in this process (tests, reference runs).
    shard_random_state:
        Entropy source for the per-shard RNG streams (identity tokens);
        compiled scenarios pass a dedicated child of the master seed.
    shard_checkpoint_every:
        Rounds between worker checkpoint captures in the process host.
    shard_call_timeout:
        Optional per-command timeout (seconds) in the process host; a
        worker that exceeds it is treated as crashed and rebuilt.
    """

    def __init__(
        self,
        allocation,
        mu: float,
        scheduler=None,
        compensation_plan=None,
        record_connections: bool = False,
        stop_on_infeasible: bool = False,
        churn=None,
        warm_start: bool = True,
        solver="hopcroft_karp",
        round_observer=None,
        trace_level: str = "full",
        incremental_matching: bool = True,
        *,
        n_shards: int,
        shard_host: str = "process",
        shard_random_state=None,
        shard_checkpoint_every: int = 8,
        shard_call_timeout: Optional[float] = None,
    ):
        if compensation_plan is not None:
            raise ValueError(
                "sharded simulation does not support compensation plans: "
                "relayed requests cross the box-shard partition"
            )
        super().__init__(
            allocation,
            mu,
            scheduler=scheduler,
            compensation_plan=None,
            record_connections=record_connections,
            stop_on_infeasible=stop_on_infeasible,
            churn=churn,
            warm_start=warm_start,
            solver=solver,
            round_observer=round_observer,
            trace_level=trace_level,
            incremental_matching=incremental_matching,
        )
        if type(self._scheduler) is not PreloadingScheduler or (
            self._scheduler.skip_locally_stored
        ):
            raise ValueError(
                "sharded simulation requires the plain PreloadingScheduler "
                "(without skip_locally_stored); got "
                f"{type(self._scheduler).__name__}"
            )
        if shard_host not in ("process", "inline"):
            raise ValueError(
                f"shard_host must be 'process' or 'inline', got {shard_host!r}"
            )
        self._shard_plan = ShardPlan(
            self._population.n, n_shards, shard_random_state
        )
        self._host_kind = shard_host
        self._checkpoint_every = int(shard_checkpoint_every)
        self._call_timeout = shard_call_timeout
        workers = [
            ShardWorker(
                shard_index=s,
                box_lo=self._shard_plan.range_of(s)[0],
                box_hi=self._shard_plan.range_of(s)[1],
                duration=self._catalog.duration,
                expected_stripes=self._catalog.num_stripes_per_video,
                seed_sequence=self._shard_plan.seed_sequences[s],
            )
            for s in range(n_shards)
        ]
        self._host: Optional[Any] = self._build_host(workers=workers)
        self._worker_states: Optional[List[bytes]] = None

        # Global demand id -> (owning shard, shard-local demand id).
        self._gd_shard = np.empty(64, dtype=np.int64)
        self._gd_local = np.empty(64, dtype=np.int64)
        # Per pool row (parallel to the global pool, same order):
        # owning shard and the row's index in that shard's mini pool.
        self._row_shard = np.empty(64, dtype=np.int64)
        self._row_local = np.empty(64, dtype=np.int64)
        # Per-shard request blocks of the current round, staged between
        # request generation and Phase B.
        self._pending_blocks: Optional[List[Tuple[Dict, Dict]]] = None

        self._reconciled_rounds = 0
        self._cross_shard_total = 0
        self._last_round_cross_shard = 0
        self._last_round_boundary_videos = 0
        self._shard_restarts_total = 0
        self._last_round_shard_restarts = 0
        self._host_restarts_seen = 0

    # ------------------------------------------------------------------ #
    # Host plumbing
    # ------------------------------------------------------------------ #
    def _build_host(self, workers=None, states=None):
        if self._host_kind == "inline":
            if workers is None:
                return InlineShardHost.from_states(states)
            return InlineShardHost(workers)
        if workers is None:
            return ProcessShardHost.from_states(
                states,
                checkpoint_every=self._checkpoint_every,
                call_timeout=self._call_timeout,
            )
        return ProcessShardHost(
            workers,
            checkpoint_every=self._checkpoint_every,
            call_timeout=self._call_timeout,
        )

    def _ensure_host(self):
        """The live shard host, rebuilt from worker states after a restore."""
        if self._host is None:
            if self._worker_states is None:
                raise ShardHostError(
                    "shard host is closed and no worker states are available"
                )
            if len(self._worker_states) != self._shard_plan.n_shards:
                raise ShardTopologyError(
                    f"snapshot carries {len(self._worker_states)} shard worker "
                    f"state(s) but this coordinator's shard plan expects "
                    f"{self._shard_plan.n_shards}; restore the checkpoint onto "
                    "a simulator built with the same n_shards, or re-record "
                    "it from a matching run"
                )
            self._host = self._build_host(states=self._worker_states)
            self._worker_states = None
            self._host_restarts_seen = 0
            self._validate_workers()
        return self._host

    def _validate_workers(self) -> None:
        """Check every worker's identity token against the shard plan.

        A checkpoint restored into the wrong shard slot (or from another
        run's plan) would silently corrupt the partition; the per-shard
        RNG tokens make that a hard error instead.
        """
        for s in range(self._shard_plan.n_shards):
            info = self._host.call(s, "info", {})
            if info["shard_index"] != s or info["token"] != self._shard_plan.tokens[s]:
                raise ShardHostError(
                    f"worker in shard slot {s} does not match the shard plan "
                    f"(got shard {info['shard_index']}, token {info['token']}); "
                    "the checkpoint was recorded by a different run or its "
                    "worker states were reordered — restore it onto the "
                    "coordinator that recorded it"
                )

    def close(self) -> None:
        """Shut the shard host down (worker processes exit)."""
        if self._host is not None:
            self._host.close()
            self._host = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of box shards."""
        return self._shard_plan.n_shards

    @property
    def shard_plan(self) -> ShardPlan:
        """The box partition in use."""
        return self._shard_plan

    @property
    def shard_host_kind(self) -> str:
        """``"process"`` or ``"inline"``."""
        return self._host_kind

    @property
    def shard_restarts(self) -> int:
        """Worker-process restarts performed so far (crash recoveries)."""
        return self._shard_restarts_total

    @property
    def last_round_shard_restarts(self) -> int:
        """Worker restarts performed during the most recent round."""
        return self._last_round_shard_restarts

    @property
    def reconciled_rounds(self) -> int:
        """Rounds in which at least one video's active swarm spanned shards."""
        return self._reconciled_rounds

    @property
    def cross_shard_connections(self) -> int:
        """Connections served across a shard boundary so far."""
        return self._cross_shard_total

    @property
    def last_round_cross_shard_connections(self) -> int:
        """Cross-shard connections in the most recent round's matching."""
        return self._last_round_cross_shard

    @property
    def last_round_boundary_videos(self) -> int:
        """Videos whose active requests spanned shards in the last round."""
        return self._last_round_boundary_videos

    def shard_pids(self) -> List[int]:
        """Hosting process id per shard."""
        return self._ensure_host().pids()

    def shard_rss(self) -> List[Dict[str, Any]]:
        """Per-shard ``{"pid", "rss_kib"}`` resident-memory probes."""
        host = self._ensure_host()
        return [
            host.call(s, "rss", {}) for s in range(self._shard_plan.n_shards)
        ]

    def shard_info(self) -> List[Dict[str, Any]]:
        """Per-shard state summaries (box range, pool rows, counters)."""
        host = self._ensure_host()
        return [
            host.call(s, "info", {}) for s in range(self._shard_plan.n_shards)
        ]

    # ------------------------------------------------------------------ #
    # Phase A: partitioned demand admission
    # ------------------------------------------------------------------ #
    def _dispatch_admissions(
        self, box_ids: np.ndarray, video_ids: np.ndarray, time: int
    ):
        """Send every shard its arrival slice; gather the accept masks.

        Every worker is called every round — ``begin_round`` also expires
        the shard's mini-pool rows, which must stay in lockstep with the
        coordinator's pool even on rounds without arrivals for the shard.
        """
        host = self._ensure_host()
        parts = self._shard_plan.partition_indices(box_ids)
        accept = np.empty(box_ids.size, dtype=bool)
        bases: List[int] = []
        rejected = 0
        for s, idx in enumerate(parts):
            response = host.call(
                s,
                "begin_round",
                {
                    "time": int(time),
                    "boxes": box_ids[idx],
                    "videos": video_ids[idx],
                },
            )
            accept[idx] = response["accept"]
            bases.append(int(response["demand_base"]))
            rejected += int(response["rejected"])
        return accept, parts, bases, rejected

    def _register_accepted(
        self,
        box_ids: np.ndarray,
        video_ids: np.ndarray,
        accept: np.ndarray,
        parts: List[np.ndarray],
        bases: List[int],
        time: int,
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """Assign global demand ids in global acceptance order.

        The ids equal the demand-log indices the single-process engine
        would assign, so everything downstream (scheduler demand columns,
        postponed-request resolution) sees identical values.  Updates the
        id translation maps and the coordinator's admission mirrors (busy
        horizons, last-demand map).
        """
        kept = int(accept.sum())
        lo = self._demand_count
        hi = lo + kept
        if kept == 0:
            self._demand_count = hi
            return _EMPTY, _EMPTY, lo, hi
        ensure_column_capacity(self, ("_gd_shard", "_gd_local"), lo, hi)
        rank = np.cumsum(accept) - 1  # acceptance rank of each arrival
        for s, idx in enumerate(parts):
            if not idx.size:
                continue
            accepted_positions = idx[accept[idx]]
            if not accepted_positions.size:
                continue
            gids = lo + rank[accepted_positions]
            self._gd_shard[gids] = s
            self._gd_local[gids] = bases[s] + np.arange(
                accepted_positions.size, dtype=np.int64
            )
        boxes = box_ids[accept]
        videos = video_ids[accept]
        self._busy_until[boxes] = time + self._catalog.duration
        demand_last = self._demand_last
        for offset, key in enumerate(zip(boxes.tolist(), videos.tolist())):
            demand_last[key] = lo + offset
        self._demand_count = hi
        return boxes, videos, lo, hi

    def _accept_demand_arrays(
        self, box_ids: np.ndarray, video_ids: np.ndarray, time: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = int(box_ids.size)
        if n and int(video_ids.max()) >= self._catalog.num_videos:
            bad = int(video_ids[video_ids >= self._catalog.num_videos][0])
            raise ValueError(
                f"demand for video {bad} outside catalog of size "
                f"{self._catalog.num_videos}"
            )
        accept, parts, bases, rejected = self._dispatch_admissions(
            box_ids, video_ids, time
        )
        self._rejected_demands += rejected
        boxes, videos, lo, hi = self._register_accepted(
            box_ids, video_ids, accept, parts, bases, time
        )
        if hi == lo:
            return _EMPTY, _EMPTY, _EMPTY
        self._swarms.enter_batch(videos, boxes, time)
        return np.arange(lo, hi, dtype=np.int64), boxes, videos

    def _accept_demands(
        self, demands: Sequence[Demand], time: int
    ) -> List[Tuple[int, Demand]]:
        demands = list(demands)
        for demand in demands:
            if demand.time != time:
                raise ValueError(
                    f"workload produced a demand for round {demand.time} "
                    f"during round {time}"
                )
            if demand.video_id >= self._catalog.num_videos:
                raise ValueError(
                    f"demand for video {demand.video_id} outside catalog of "
                    f"size {self._catalog.num_videos}"
                )
        box_ids = np.fromiter(
            (d.box_id for d in demands), dtype=np.int64, count=len(demands)
        )
        video_ids = np.fromiter(
            (d.video_id for d in demands), dtype=np.int64, count=len(demands)
        )
        accept, parts, bases, rejected = self._dispatch_admissions(
            box_ids, video_ids, time
        )
        self._rejected_demands += rejected
        _, _, lo, _ = self._register_accepted(
            box_ids, video_ids, accept, parts, bases, time
        )
        accepted: List[Tuple[int, Demand]] = []
        gid = lo
        for k, demand in enumerate(demands):
            if not accept[k]:
                continue
            self._swarms.enter(demand.video_id, demand.box_id, time)
            if self._full_trace:
                self._trace.record(
                    DemandEvent(
                        time=time, box_id=demand.box_id, video_id=demand.video_id
                    )
                )
            accepted.append((gid, demand))
            gid += 1
        return accepted

    # ------------------------------------------------------------------ #
    # Request generation: stage each shard's slice of the new rows
    # ------------------------------------------------------------------ #
    def _drop_expired_requests(self, time: int) -> Optional[np.ndarray]:
        keep = self._pool.drop_expired_keeping(time)
        if keep is not None:
            kept = int(keep.sum())
            self._row_shard[:kept] = self._row_shard[: keep.size][keep]
            self._recompute_row_locals(kept)
        return keep

    def _recompute_row_locals(self, count: int) -> None:
        """Re-rank surviving rows within their shard (order is stable).

        Workers expire exactly the same rows (same per-row expiry rule on
        the same columns), so the k-th surviving row of shard ``s`` here
        is the k-th surviving row of worker ``s``'s mini pool.
        """
        shards = self._row_shard[:count]
        for s in range(self._shard_plan.n_shards):
            positions = np.flatnonzero(shards == s)
            self._row_local[positions] = np.arange(positions.size, dtype=np.int64)

    def _to_local_demand_ids(self, gids: np.ndarray) -> np.ndarray:
        """Translate global demand ids to shard-local ones (``-1`` kept)."""
        if not gids.size:
            return gids
        safe = np.where(gids >= 0, gids, 0)
        return np.where(gids >= 0, self._gd_local[safe], -1)

    def _finish_request_generation(
        self,
        pre_stripes: np.ndarray,
        pre_boxes: np.ndarray,
        pre_demand: np.ndarray,
        time: int,
    ) -> int:
        post_stripes, post_boxes, post_demand = self._scheduler.due_arrays(time)
        if post_demand.size and (post_demand < 0).any():
            post_demand = post_demand.copy()
            for k in np.flatnonzero(post_demand < 0).tolist():
                found = self._find_demand_index(
                    int(post_boxes[k]), int(post_stripes[k]), time
                )
                post_demand[k] = -1 if found is None else found
        survivors = len(self._pool)
        self._pool.extend_from_arrays(pre_stripes, time, pre_boxes, pre_demand, True)
        self._pool.extend_from_arrays(
            post_stripes, time, post_boxes, post_demand, False
        )
        self._possession.record_downloads(pre_stripes, pre_boxes, time)
        self._possession.record_downloads(post_stripes, post_boxes, time)
        if self._full_trace:
            for stripes, preload in ((pre_stripes, True), (post_stripes, False)):
                boxes = pre_boxes if preload else post_boxes
                for s, b in zip(stripes.tolist(), boxes.tolist()):
                    self._trace.record(
                        RequestEvent(
                            time=time, box_id=b, stripe_id=s, is_preload=preload
                        )
                    )
        self._stage_new_rows(
            survivors,
            pre_stripes,
            pre_boxes,
            pre_demand,
            post_stripes,
            post_boxes,
            post_demand,
        )
        return int(pre_stripes.size + post_stripes.size)

    def _stage_new_rows(
        self,
        survivors: int,
        pre_stripes: np.ndarray,
        pre_boxes: np.ndarray,
        pre_demand: np.ndarray,
        post_stripes: np.ndarray,
        post_boxes: np.ndarray,
        post_demand: np.ndarray,
    ) -> None:
        """Record shard ownership of the new pool rows; stage Phase B blocks.

        Workers extend their mini pools preload block first, postponed
        block second — the same order the coordinator extends the global
        pool — so a shard's mini-pool rows stay a perfect order-preserving
        projection of the global pool's rows of that shard.
        """
        plan = self._shard_plan
        n_shards = plan.n_shards
        if survivors:
            shard_rows = np.bincount(
                self._row_shard[:survivors], minlength=n_shards
            )
        else:
            shard_rows = np.zeros(n_shards, dtype=np.int64)
        pre_parts = plan.partition_indices(pre_boxes)
        post_parts = plan.partition_indices(post_boxes)
        total = survivors + int(pre_stripes.size) + int(post_stripes.size)
        ensure_column_capacity(self, ("_row_shard", "_row_local"), survivors, total)
        blocks: List[Tuple[Dict, Dict]] = []
        for s in range(n_shards):
            pi = pre_parts[s]
            qi = post_parts[s]
            base = int(shard_rows[s])
            pre_rows = survivors + pi
            post_rows = survivors + int(pre_stripes.size) + qi
            self._row_shard[pre_rows] = s
            self._row_shard[post_rows] = s
            self._row_local[pre_rows] = base + np.arange(pi.size, dtype=np.int64)
            self._row_local[post_rows] = base + pi.size + np.arange(
                qi.size, dtype=np.int64
            )
            blocks.append(
                (
                    {
                        "stripes": pre_stripes[pi],
                        "boxes": pre_boxes[pi],
                        "demands": self._to_local_demand_ids(pre_demand[pi]),
                    },
                    {
                        "stripes": post_stripes[qi],
                        "boxes": post_boxes[qi],
                        "demands": self._to_local_demand_ids(post_demand[qi]),
                    },
                )
            )
        self._pending_blocks = blocks

    # ------------------------------------------------------------------ #
    # Phase B: reconcile matching results, detect playback starts
    # ------------------------------------------------------------------ #
    def _detect_playback_starts(self, time: int) -> None:
        host = self._ensure_host()
        blocks = self._pending_blocks
        self._pending_blocks = None
        if blocks is None:
            blocks = [
                (_EMPTY_BLOCK, _EMPTY_BLOCK)
                for _ in range(self._shard_plan.n_shards)
            ]
        n = len(self._pool)
        row_shard = self._row_shard[:n]
        row_local = self._row_local[:n]
        # Rows first served this round: apply_matching just stamped them.
        newly = np.flatnonzero(self._pool.first_matched == time)
        want_events = self._full_trace
        for s in range(self._shard_plan.n_shards):
            shard_newly = newly[row_shard[newly] == s]
            response = host.call(
                s,
                "end_round",
                {
                    "time": int(time),
                    "pre": blocks[s][0],
                    "post": blocks[s][1],
                    "matched_rows": row_local[shard_newly],
                    "want_events": want_events,
                },
            )
            if response["playbacks"]:
                self._playbacks_started += int(response["playbacks"])
                self._metrics.record_startup_delays(response["delays"])
                if want_events:
                    event_boxes, event_videos, event_rounds = response["events"]
                    delays = response["delays"]
                    for k in range(event_boxes.size):
                        self._trace.record(
                            PlaybackStartEvent(
                                time=int(event_rounds[k]),
                                box_id=int(event_boxes[k]),
                                video_id=int(event_videos[k]),
                                startup_delay=int(delays[k]),
                            )
                        )
        self._update_reconciliation_stats()
        self._sync_restart_counters()
        host.checkpoint()

    def _update_reconciliation_stats(self) -> None:
        """Measure this round's cross-shard coupling.

        *Boundary videos* are videos whose active requests live in more
        than one shard (their swarm spans the partition); a round with
        any counts as reconciled.  *Cross-shard connections* are served
        requests whose server box lives in a different shard than the
        requesting box — the traffic a real deployment would route
        between shard hosts.
        """
        n = len(self._pool)
        self._last_round_cross_shard = 0
        self._last_round_boundary_videos = 0
        if not n:
            return
        plan = self._shard_plan
        row_shard = self._row_shard[:n]
        assigned = self._pool.assigned_boxes
        served = assigned >= 0
        if served.any():
            server_shards = plan.shard_of(assigned[served])
            cross = int((server_shards != row_shard[served]).sum())
            self._last_round_cross_shard = cross
            self._cross_shard_total += cross
        videos = self._pool.stripe_ids // self._catalog.num_stripes_per_video
        pairs = np.unique(videos * plan.n_shards + row_shard)
        _, shard_counts = np.unique(pairs // plan.n_shards, return_counts=True)
        boundary = int((shard_counts > 1).sum())
        self._last_round_boundary_videos = boundary
        if boundary:
            self._reconciled_rounds += 1

    def _sync_restart_counters(self) -> None:
        current = self._ensure_host().restarts
        delta = current - self._host_restarts_seen
        self._host_restarts_seen = current
        self._last_round_shard_restarts = delta
        self._shard_restarts_total += delta

    # ------------------------------------------------------------------ #
    # Unsupported live reconfiguration
    # ------------------------------------------------------------------ #
    def join_boxes(self, uploads, storages):
        raise NotImplementedError(
            "join_boxes is not supported in sharded mode: the box partition "
            "is fixed when the shard plan is built"
        )

    def add_videos(self, num_videos, random_state=None):
        raise NotImplementedError(
            "add_videos is not supported in sharded mode"
        )

    # ------------------------------------------------------------------ #
    # Snapshot support (v2 per-shard checkpoint/restore)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        state = {k: v for k, v in self.__dict__.items() if k != "_host"}
        if self._host is not None:
            state["_worker_states"] = self._host.get_states()
        state["_host_restarts_seen"] = 0
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._host = None  # rebuilt lazily from _worker_states
