"""The per-shard worker: the box-partitioned slice of the engine state.

A :class:`ShardWorker` owns, for one contiguous box range:

* the busy horizons of its boxes (demand admission is box-local, so the
  accept/reject decision partitions exactly across shards);
* its slice of the demand log (time, box, video, started — the state the
  playback detector consumes), indexed by *shard-local* demand ids;
* a mini request pool mirroring the coordinator's global pool rows whose
  requesting box lives in this shard (same per-row ``first``/``rtime``
  columns, so both sides expire exactly the same rows every round);
* playback detection and start-up-delay computation for its demands, via
  the same :mod:`repro.sim.rules` kernels the single-process engine runs.

Workers are deterministic state machines over the two per-round commands
(``begin_round``, ``end_round``): replaying the same command log from the
same checkpoint always reproduces the same state, which is what lets
:class:`~repro.shard.host.ProcessShardHost` rebuild a crashed worker
process mid-run without perturbing the run's digest.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict

import numpy as np

from repro.sim.rules import admission_mask, detect_playback_starts
from repro.sim.scheduler import ActiveRequestPool
from repro.util.soa import ensure_column_capacity

__all__ = ["ShardWorker"]

_EMPTY = np.empty(0, dtype=np.int64)


class ShardWorker:
    """The deterministic data plane of one shard (see module docstring)."""

    def __init__(
        self,
        shard_index: int,
        box_lo: int,
        box_hi: int,
        duration: int,
        expected_stripes: int,
        seed_sequence,
    ):
        if box_hi <= box_lo:
            raise ValueError(f"empty box range [{box_lo}, {box_hi})")
        self.shard_index = int(shard_index)
        self.box_lo = int(box_lo)
        self.box_hi = int(box_hi)
        self._duration = int(duration)
        self._expected_stripes = int(expected_stripes)
        self._rng = np.random.default_rng(seed_sequence)
        #: Identity token: the stream's first draw.  Deterministic per
        #: (master seed, shard), validated when a checkpoint is restored.
        self.token = int(self._rng.integers(0, 2**63))

        self._busy_until = np.zeros(self.box_hi - self.box_lo, dtype=np.int64)
        self._pool = ActiveRequestPool(self._duration)
        self._demand_count = 0
        self._demand_time = np.empty(64, dtype=np.int64)
        self._demand_box = np.empty(64, dtype=np.int64)
        self._demand_video = np.empty(64, dtype=np.int64)
        self._demand_started = np.empty(64, dtype=bool)
        self.rejected_demands = 0
        self.playbacks_started = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def demand_count(self) -> int:
        """Shard-local demands logged so far."""
        return self._demand_count

    @property
    def pool_rows(self) -> int:
        """Active mini-pool rows (mirrors the coordinator's rows of this shard)."""
        return len(self._pool)

    # ------------------------------------------------------------------ #
    # Per-round phases
    # ------------------------------------------------------------------ #
    def begin_round(
        self, time: int, box_ids: np.ndarray, video_ids: np.ndarray
    ) -> Dict[str, Any]:
        """Phase A: expire mini-pool rows, admit this shard's demand arrivals.

        ``box_ids`` are global identifiers (all within this shard's
        range), in the round's global arrival order restricted to this
        shard.  Returns the accept mask over that order, the number of
        rejections and the local demand-id base of the accepted block —
        accepted arrival ``j`` got local id ``demand_base + j``.
        """
        self._pool.drop_expired_keeping(time)
        base = self._demand_count
        n = int(box_ids.size)
        if n == 0:
            return {"accept": np.empty(0, dtype=bool), "rejected": 0, "demand_base": base}
        local_boxes = box_ids - self.box_lo
        accept = admission_mask(self._busy_until, local_boxes, time)
        kept = int(accept.sum())
        self.rejected_demands += n - kept
        if kept:
            boxes = box_ids[accept]
            videos = video_ids[accept]
            ensure_column_capacity(
                self,
                ("_demand_time", "_demand_box", "_demand_video", "_demand_started"),
                base,
                base + kept,
            )
            self._demand_time[base: base + kept] = time
            self._demand_box[base: base + kept] = boxes
            self._demand_video[base: base + kept] = videos
            self._demand_started[base: base + kept] = False
            self._demand_count = base + kept
            self._busy_until[boxes - self.box_lo] = time + self._duration
        return {"accept": accept, "rejected": n - kept, "demand_base": base}

    def end_round(
        self,
        time: int,
        pre: Dict[str, np.ndarray],
        post: Dict[str, np.ndarray],
        matched_rows: np.ndarray,
        want_events: bool,
    ) -> Dict[str, Any]:
        """Phase B: mirror new rows and served rows, detect playback starts.

        ``pre``/``post`` hold this shard's slices of the round's preload
        and postponed request blocks (``stripes``, ``boxes``, ``demands``
        with *local* demand ids), in the coordinator's order, so the
        mini-pool rows stay aligned with the global pool's rows of this
        shard.  ``matched_rows`` are the local row indices (post-expiry,
        post-extension) first served this round; their ``first`` column is
        set through the pool's own ``apply_matching`` rule.  Returns the
        playback starts of the round and their start-up delays (plus the
        per-start box/video/round arrays when ``want_events``, feeding the
        coordinator's full event trace).
        """
        self._pool.extend_from_arrays(
            pre["stripes"], time, pre["boxes"], pre["demands"], True
        )
        self._pool.extend_from_arrays(
            post["stripes"], time, post["boxes"], post["demands"], False
        )
        if matched_rows.size:
            assignment = np.full(len(self._pool), -1, dtype=np.int64)
            assignment[matched_rows] = 0  # synthetic server; only ``first`` matters
            self._pool.apply_matching(assignment, time)
        hits = None
        if len(self._pool):
            hits = detect_playback_starts(
                self._pool.demand_indices,
                self._pool.first_matched,
                self._demand_count,
                self._demand_time,
                self._demand_started,
                self._expected_stripes,
                time,
            )
        if hits is None:
            out: Dict[str, Any] = {"playbacks": 0, "delays": _EMPTY}
            if want_events:
                out["events"] = (_EMPTY, _EMPTY, _EMPTY)
            return out
        ready_idx, playback_rounds, delays = hits
        self.playbacks_started += int(ready_idx.size)
        out = {"playbacks": int(ready_idx.size), "delays": delays}
        if want_events:
            out["events"] = (
                self._demand_box[ready_idx].copy(),
                self._demand_video[ready_idx].copy(),
                playback_rounds,
            )
        return out

    # ------------------------------------------------------------------ #
    # Command dispatch (the host protocol)
    # ------------------------------------------------------------------ #
    def dispatch(self, command: str, payload: Dict[str, Any]) -> Any:
        """Execute one host command; the single entry point of the protocol."""
        if command == "begin_round":
            return self.begin_round(
                payload["time"], payload["boxes"], payload["videos"]
            )
        if command == "end_round":
            return self.end_round(
                payload["time"],
                payload["pre"],
                payload["post"],
                payload["matched_rows"],
                payload["want_events"],
            )
        if command == "get_state":
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        if command == "rss":
            return {"pid": os.getpid(), "rss_kib": _process_rss_kib()}
        if command == "info":
            return {
                "shard_index": self.shard_index,
                "token": self.token,
                "box_range": (self.box_lo, self.box_hi),
                "pool_rows": self.pool_rows,
                "demands": self.demand_count,
                "rejected_demands": self.rejected_demands,
                "playbacks_started": self.playbacks_started,
            }
        raise ValueError(f"unknown shard command {command!r}")


def _process_rss_kib() -> float:
    """Resident set size of the calling process, in KiB (Linux statm)."""
    try:
        with open("/proc/self/statm") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE") / 1024.0
    except (OSError, ValueError, IndexError):
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
