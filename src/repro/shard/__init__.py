"""Sharded multi-process engine.

Partitions the box space of a VoD system into ``N`` contiguous shards,
each holding its slice of the engine's box-side state (busy horizons,
demand log, playback detection) in its own worker process, under a
coordinator (:class:`ShardedVodSimulator`) that owns the sequential
control plane — workload consumption, the preloading scheduler, the
global request pool and the exact connection matching — and therefore
stays digest-identical to the single-process engine on every scenario.

See ``docs/architecture.md`` ("Sharded multi-process engine") for the
partition/reconcile data flow and the determinism argument.
"""

from repro.shard.coordinator import ShardedVodSimulator
from repro.shard.host import (
    InlineShardHost,
    ProcessShardHost,
    ShardHostError,
    ShardTopologyError,
)
from repro.shard.plan import ShardPlan
from repro.shard.worker import ShardWorker

__all__ = [
    "ShardPlan",
    "ShardWorker",
    "InlineShardHost",
    "ProcessShardHost",
    "ShardHostError",
    "ShardTopologyError",
    "ShardedVodSimulator",
]
