"""Shard partition plan: contiguous box ranges plus derived RNG streams.

The box space ``[0, n)`` is split into ``n_shards`` contiguous ranges of
near-equal size.  Contiguity makes the shard of a box a single integer
division-free lookup (``searchsorted`` on the range bounds) and keeps
every per-box array slice of the engine a dense view.

Each shard also receives its own :class:`numpy.random.SeedSequence`,
derived with :func:`repro.util.rng.spawn_seed_sequences` from one parent
stream — the same spawn discipline every other stochastic component of a
compiled scenario uses, so shard streams never collide with workload,
churn or fault streams and are reproducible from the master seed.  The
shard data plane is deterministic and consumes no randomness during a
run; the stream seeds each worker's generator and mints its *identity
token* (the first draw), which checkpoint restore validates so a shard
can never be rebuilt from another shard's snapshot.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.util.rng import spawn_seed_sequences

__all__ = ["ShardPlan"]


class ShardPlan:
    """Contiguous partition of ``n_boxes`` into ``n_shards`` ranges."""

    def __init__(self, n_boxes: int, n_shards: int, random_state=None):
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if n_boxes < n_shards:
            raise ValueError(
                f"cannot split {n_boxes} boxes into {n_shards} shards: "
                "every shard needs at least one box"
            )
        self._n_boxes = int(n_boxes)
        self._n_shards = int(n_shards)
        # bounds[i] .. bounds[i+1] is shard i's box range.
        self._bounds = np.linspace(0, n_boxes, n_shards + 1).astype(np.int64)
        self._seed_sequences = spawn_seed_sequences(random_state, n_shards)
        self._tokens = tuple(
            int(np.random.default_rng(seq).integers(0, 2**63))
            for seq in self._seed_sequences
        )

    @property
    def n_boxes(self) -> int:
        """Total number of boxes partitioned."""
        return self._n_boxes

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self._n_shards

    @property
    def bounds(self) -> np.ndarray:
        """Range bounds: shard ``i`` owns boxes ``[bounds[i], bounds[i+1])``."""
        return self._bounds

    @property
    def seed_sequences(self) -> List[np.random.SeedSequence]:
        """Per-shard seed sequences (``spawn_seed_sequences`` children)."""
        return list(self._seed_sequences)

    @property
    def tokens(self) -> Tuple[int, ...]:
        """Deterministic per-shard identity tokens (first draw per stream)."""
        return self._tokens

    def range_of(self, shard: int) -> Tuple[int, int]:
        """The ``[lo, hi)`` box range of ``shard``."""
        if not 0 <= shard < self._n_shards:
            raise ValueError(f"shard {shard} out of range")
        return int(self._bounds[shard]), int(self._bounds[shard + 1])

    def shard_of(self, box_ids: np.ndarray) -> np.ndarray:
        """Shard index of each box in ``box_ids`` (vectorized)."""
        return np.searchsorted(self._bounds, box_ids, side="right") - 1

    def shard_of_box(self, box_id: int) -> int:
        """Shard index of one box."""
        if not 0 <= box_id < self._n_boxes:
            raise ValueError(f"box_id {box_id} out of range")
        return int(np.searchsorted(self._bounds, box_id, side="right") - 1)

    def partition_indices(self, box_ids: np.ndarray) -> List[np.ndarray]:
        """Positions of each shard's entries in ``box_ids``, order-preserving.

        ``partition_indices(b)[s]`` are the indices ``i`` (ascending, so
        relative order survives) with ``b[i]`` owned by shard ``s`` — the
        round-trip used to scatter per-round arrays to workers and gather
        their responses back into global arrival order.
        """
        shards = self.shard_of(box_ids)
        return [
            np.flatnonzero(shards == s).astype(np.int64)
            for s in range(self._n_shards)
        ]
