"""Shard hosts: where the shard workers run and how they survive crashes.

Two hosts implement the same command interface:

* :class:`InlineShardHost` — workers live in the coordinator's process
  and commands are direct method calls.  No parallelism, no IPC, no
  crash domain; the reference host for tests and the degenerate
  ``n_shards=1`` configuration.
* :class:`ProcessShardHost` — one forked process per shard, commands
  flow over :class:`multiprocessing.Pipe`.  The host supervises its
  workers with the checkpoint-and-replay discipline of the orchestrate
  pool: every ``checkpoint_every`` rounds it captures each worker's
  pickled state, and it logs every state-mutating command since the last
  capture.  When a worker process dies mid-run (crash, OOM kill,
  injected ``SIGKILL``), the host respawns it from the last checkpoint,
  replays the logged commands — workers are deterministic state
  machines, so the replayed state is bit-identical — reissues the failed
  command, and counts the restart.  The run's digest is unchanged by
  construction.

Worker processes run :func:`repro.faults.process.maybe_inject_worker_fault`
before every command with the label ``shard-<i>:<command>``, so the
``REPRO_FAULTS`` chaos machinery can kill a specific shard at a specific
point, exactly like the campaign workers.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any, Dict, List, Optional, Sequence

from repro.shard.worker import ShardWorker

__all__ = [
    "ShardHostError",
    "ShardTopologyError",
    "InlineShardHost",
    "ProcessShardHost",
]

#: Commands that do not mutate worker state (not logged for replay).
_PURE_COMMANDS = frozenset({"get_state", "rss", "info"})


class ShardHostError(RuntimeError):
    """A shard worker failed in a way supervision could not repair."""


class ShardTopologyError(ShardHostError):
    """Restored worker states do not fit the coordinator's shard plan.

    Raised before any worker is built, so a checkpoint recorded with a
    different ``n_shards`` (or with missing/extra worker states) fails
    loudly instead of corrupting the box partition — previously this
    surfaced as a bare ``IndexError`` deep inside the host.
    """


class _WorkerTimeout(Exception):
    """A worker exceeded the host's call timeout (treated as a crash)."""


class InlineShardHost:
    """All shards in the coordinator's process; the reference host."""

    kind = "inline"

    def __init__(self, workers: Sequence[ShardWorker]):
        if not workers:
            raise ValueError("at least one shard worker is required")
        self._workers = list(workers)

    @classmethod
    def from_states(cls, states: Sequence[bytes]) -> "InlineShardHost":
        """Rebuild a host from pickled worker states (snapshot restore)."""
        return cls([pickle.loads(state) for state in states])

    @property
    def n_shards(self) -> int:
        """Number of shards hosted."""
        return len(self._workers)

    @property
    def restarts(self) -> int:
        """Worker restarts performed so far (always 0 inline)."""
        return 0

    def call(self, shard: int, command: str, payload: Dict[str, Any]) -> Any:
        """Execute one command on one shard and return its result."""
        return self._workers[shard].dispatch(command, payload)

    def get_states(self) -> List[bytes]:
        """Pickled state of every worker (between rounds: a checkpoint)."""
        return [
            pickle.dumps(worker, protocol=pickle.HIGHEST_PROTOCOL)
            for worker in self._workers
        ]

    def checkpoint(self) -> None:
        """No-op: inline workers share the coordinator's crash domain."""

    def pids(self) -> List[int]:
        """Hosting process id per shard (the coordinator's, inline)."""
        import os

        return [os.getpid()] * len(self._workers)

    def close(self) -> None:
        """Release the workers."""
        self._workers = []


def _worker_main(conn, state: bytes) -> None:
    """Entry point of a shard worker process: a command/response loop."""
    from repro.faults.process import maybe_inject_worker_fault

    worker = pickle.loads(state)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        command, payload = message
        maybe_inject_worker_fault(f"shard-{worker.shard_index}:{command}")
        try:
            result = worker.dispatch(command, payload)
        except Exception as exc:  # surfaced to the coordinator, not lost
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
            continue
        conn.send(("ok", result))


class ProcessShardHost:
    """One forked process per shard, supervised with checkpoint + replay."""

    kind = "process"

    def __init__(
        self,
        workers: Optional[Sequence[ShardWorker]] = None,
        *,
        states: Optional[Sequence[bytes]] = None,
        checkpoint_every: int = 8,
        call_timeout: Optional[float] = None,
    ):
        if (workers is None) == (states is None):
            raise ValueError("provide exactly one of workers= or states=")
        self._call_timeout = call_timeout
        if workers is not None:
            states = [
                pickle.dumps(worker, protocol=pickle.HIGHEST_PROTOCOL)
                for worker in workers
            ]
        self._checkpoints: List[bytes] = list(states)
        self._logs: List[List[tuple]] = [[] for _ in self._checkpoints]
        self._checkpoint_every = int(checkpoint_every)
        self._rounds_since_checkpoint = 0
        self._restarts = 0
        self._ctx = multiprocessing.get_context("fork")
        self._procs: List[Any] = [None] * len(self._checkpoints)
        self._conns: List[Any] = [None] * len(self._checkpoints)
        for shard in range(len(self._checkpoints)):
            self._spawn(shard, self._checkpoints[shard])

    @classmethod
    def from_states(
        cls,
        states: Sequence[bytes],
        checkpoint_every: int = 8,
        call_timeout: Optional[float] = None,
    ) -> "ProcessShardHost":
        """Rebuild a host from pickled worker states (snapshot restore)."""
        return cls(
            states=states,
            checkpoint_every=checkpoint_every,
            call_timeout=call_timeout,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of shards hosted."""
        return len(self._checkpoints)

    @property
    def restarts(self) -> int:
        """Worker-process restarts performed so far."""
        return self._restarts

    def pids(self) -> List[int]:
        """Worker process id per shard (targets for chaos tests)."""
        return [proc.pid for proc in self._procs]

    # ------------------------------------------------------------------ #
    # Supervision
    # ------------------------------------------------------------------ #
    def _spawn(self, shard: int, state: bytes) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child, state), daemon=True
        )
        proc.start()
        child.close()
        self._procs[shard] = proc
        self._conns[shard] = parent

    def _recover(self, shard: int) -> None:
        """Rebuild a dead worker from its checkpoint and replay the log."""
        proc = self._procs[shard]
        try:
            self._conns[shard].close()
        except OSError:
            pass
        if proc is not None:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
        self._restarts += 1
        self._spawn(shard, self._checkpoints[shard])
        for command, payload in self._logs[shard]:
            self._roundtrip(shard, command, payload)

    def _roundtrip(self, shard: int, command: str, payload: Dict[str, Any]) -> Any:
        conn = self._conns[shard]
        conn.send((command, payload))
        if self._call_timeout is not None and not conn.poll(self._call_timeout):
            raise _WorkerTimeout(shard)  # hung worker: treated as crashed
        status, result = conn.recv()
        if status != "ok":
            raise ShardHostError(f"shard {shard} failed {command}: {result}")
        return result

    def call(self, shard: int, command: str, payload: Dict[str, Any]) -> Any:
        """Execute one command, recovering the worker once if it died."""
        try:
            result = self._roundtrip(shard, command, payload)
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError, _WorkerTimeout):
            self._recover(shard)
            result = self._roundtrip(shard, command, payload)
        if command not in _PURE_COMMANDS:
            self._logs[shard].append((command, payload))
        return result

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def get_states(self) -> List[bytes]:
        """Pickled state of every worker (between rounds: a checkpoint)."""
        return [
            self.call(shard, "get_state", {}) for shard in range(self.n_shards)
        ]

    def checkpoint(self) -> None:
        """Advance the round counter; capture fresh checkpoints when due.

        Called by the coordinator once per completed round.  Capturing
        every round would double the per-round IPC, so captures happen
        every ``checkpoint_every`` rounds and recovery replays at most
        that many rounds' commands (``checkpoint_every <= 0`` disables
        periodic captures; recovery then replays from the initial state).
        """
        self._rounds_since_checkpoint += 1
        if (
            self._checkpoint_every > 0
            and self._rounds_since_checkpoint >= self._checkpoint_every
        ):
            self._checkpoints = self.get_states()
            self._logs = [[] for _ in self._checkpoints]
            self._rounds_since_checkpoint = 0

    def close(self) -> None:
        """Shut every worker process down."""
        for conn, proc in zip(self._conns, self._procs):
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for conn, proc in zip(self._conns, self._procs):
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=5.0)
            try:
                conn.close()
            except OSError:
                pass

    def __del__(self):  # best-effort cleanup; close() is the real API
        try:
            self.close()
        except Exception:
            pass
