"""Declarative scenario specifications.

A :class:`ScenarioSpec` names everything a reproducible end-to-end run
needs — catalog, box population, allocation scheme, a phased workload
mix, an optional churn model, the growth bound, the horizon and the
matching solver — as plain data.  Specs are JSON-round-trippable
(:meth:`ScenarioSpec.to_dict` / :meth:`ScenarioSpec.from_dict`) so golden
traces can embed the exact configuration they were recorded under, and
every stochastic ingredient is derived from one master seed at build time
(:mod:`repro.scenarios.build`), which is what makes replays bit-identical.

The shape follows the declarative CDN/client scenario files of the
`algotel2016` experiments: a scenario is configuration, not code; the
compiler (:func:`repro.scenarios.build.build_scenario`) wires it into a
live :class:`~repro.sim.engine.VodSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.util.validation import (
    check_in_range,
    check_non_negative_integer,
    check_positive_integer,
    check_probability,
)

__all__ = [
    "POPULATION_KINDS",
    "ALLOCATION_SCHEMES",
    "WORKLOAD_KINDS",
    "CatalogSpec",
    "PopulationSpec",
    "AllocationSpec",
    "WorkloadPhaseSpec",
    "ChurnSpec",
    "FaultSpec",
    "ScenarioSpec",
]

#: Population constructors the compiler knows how to build.
POPULATION_KINDS = ("homogeneous", "two_class", "pareto", "tiered")

#: Allocation schemes the compiler knows how to draw.
ALLOCATION_SCHEMES = ("permutation", "independent", "round_robin", "hierarchical_cache")

#: Workload generators usable as scenario phases.
WORKLOAD_KINDS = (
    "zipf",
    "uniform",
    "flashcrowd",
    "staggered_flashcrowd",
    "sequential",
    "missing_video",
    "least_replicated",
    "cold_start",
    "drift",
    "flash_rotation",
    "trace",
)

#: Matching kernels a scenario may pin.
SCENARIO_SOLVERS = ("hopcroft_karp", "dinic", "push_relabel", "edmonds_karp")


def _freeze_params(params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    return dict(params) if params else {}


@dataclass(frozen=True)
class CatalogSpec:
    """The video catalog: ``m`` videos of ``c`` stripes and duration ``T``."""

    num_videos: int
    num_stripes: int
    duration: int

    def __post_init__(self) -> None:
        check_positive_integer(self.num_videos, "num_videos")
        check_positive_integer(self.num_stripes, "num_stripes")
        check_positive_integer(self.duration, "duration")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_videos": self.num_videos,
            "num_stripes": self.num_stripes,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CatalogSpec":
        return cls(
            num_videos=int(data["num_videos"]),
            num_stripes=int(data["num_stripes"]),
            duration=int(data["duration"]),
        )


@dataclass(frozen=True)
class PopulationSpec:
    """A box population: ``kind`` plus its constructor parameters.

    Kinds and their parameters (defaults in the constructors of
    :mod:`repro.core.parameters`):

    * ``"homogeneous"`` — ``n``, ``u``, ``d``;
    * ``"two_class"`` — ``n``, ``rich_fraction``, ``u_rich``, ``u_poor``,
      ``d_rich``, ``d_poor``, optional ``shuffle`` (seeded from the
      scenario master seed);
    * ``"pareto"`` — ``n``, ``u_min``, ``shape``, ``storage_per_upload``,
      optional ``u_cap`` (seeded from the scenario master seed).
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in POPULATION_KINDS:
            raise ValueError(
                f"population kind must be one of {POPULATION_KINDS}, got {self.kind!r}"
            )
        object.__setattr__(self, "params", _freeze_params(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PopulationSpec":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class AllocationSpec:
    """The static replica placement: scheme and replication factor ``k``."""

    scheme: str = "permutation"
    replicas_per_stripe: int = 2
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scheme not in ALLOCATION_SCHEMES:
            raise ValueError(
                f"allocation scheme must be one of {ALLOCATION_SCHEMES}, got {self.scheme!r}"
            )
        check_positive_integer(self.replicas_per_stripe, "replicas_per_stripe")
        object.__setattr__(self, "params", _freeze_params(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "replicas_per_stripe": self.replicas_per_stripe,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AllocationSpec":
        return cls(
            scheme=str(data.get("scheme", "permutation")),
            replicas_per_stripe=int(data.get("replicas_per_stripe", 2)),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class WorkloadPhaseSpec:
    """One phase of the workload mix.

    The phase's generator is active during rounds ``[start, stop)``
    (``stop=None`` means until the horizon).  ``params`` are forwarded to
    the generator constructor; the generator's own ``start_time`` is set
    to ``start`` and its random state to a per-phase child stream of the
    scenario master seed.
    """

    kind: str
    start: int = 0
    stop: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"workload kind must be one of {WORKLOAD_KINDS}, got {self.kind!r}"
            )
        check_non_negative_integer(self.start, "start")
        if self.stop is not None:
            check_positive_integer(self.stop, "stop")
            if self.stop <= self.start:
                raise ValueError(
                    f"phase stop ({self.stop}) must be after its start ({self.start})"
                )
        object.__setattr__(self, "params", _freeze_params(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "stop": self.stop,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadPhaseSpec":
        stop = data.get("stop")
        return cls(
            kind=str(data["kind"]),
            start=int(data.get("start", 0)),
            stop=None if stop is None else int(stop),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class ChurnSpec:
    """Random churn: per-round failure probability and outage duration."""

    failure_probability: float
    outage_duration: int
    protected_boxes: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        check_probability(self.failure_probability, "failure_probability")
        check_positive_integer(self.outage_duration, "outage_duration")
        object.__setattr__(
            self, "protected_boxes", tuple(int(b) for b in self.protected_boxes)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "failure_probability": self.failure_probability,
            "outage_duration": self.outage_duration,
            "protected_boxes": list(self.protected_boxes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChurnSpec":
        return cls(
            failure_probability=float(data["failure_probability"]),
            outage_duration=int(data["outage_duration"]),
            protected_boxes=tuple(int(b) for b in data.get("protected_boxes", ())),
        )


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault injection: registry kind plus parameters.

    ``kind`` names a registered ``"fault"`` component (built-ins in
    :mod:`repro.faults.plan`: ``"box_crash"``, ``"brownout"``,
    ``"solver_budget"``); ``params`` are forwarded to its factory.  All
    randomness the plan needs is drawn from a dedicated child stream of
    the scenario master seed, so faulted runs replay bit-identically.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise ValueError("fault kind must not be empty")
        object.__setattr__(self, "params", _freeze_params(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully declarative end-to-end scenario.

    Attributes
    ----------
    name:
        Registry key and CLI handle.
    description:
        One-line human description.
    paper_claim:
        The paper claim (theorem, lemma, regime) the scenario stresses —
        rendered in EXPERIMENTS.md and by ``python -m repro.scenarios list``.
    catalog, population, allocation, workload, churn:
        The component specs; ``workload`` is a tuple of phases.
    mu:
        Swarm-growth bound the run is measured against.
    horizon:
        Default number of rounds.
    solver:
        Matching kernel (``"hopcroft_karp"`` or a max-flow oracle).
    warm_start:
        Whether rounds warm-start from the previous assignment.
    default_seed:
        Seed used when the caller does not supply one.
    trace_level:
        Engine event-trace verbosity: ``"full"`` (default) or ``"lean"``
        (infeasibility markers only — what the 10k+-box scale tiers use
        to keep memory bounded).  Serialized only when non-default, so
        pre-existing golden recordings stay byte-identical.
    faults:
        Deterministic fault injections (:class:`FaultSpec` tuple) applied
        by the compiled scenario: box crash/rejoin bursts, capacity
        brownouts, solver-budget windows.  Serialized only when
        non-empty, for the same golden-compatibility reason.
    engine:
        Engine clock mode: ``"round"`` (default, the paper's round
        engine) or ``"event"`` (the continuous-time event-queue engine of
        :mod:`repro.events` — round records stay bit-identical, and
        per-request latency percentiles are additionally reported).
        Serialized only when non-default, for the same
        golden-compatibility reason.
    """

    name: str
    description: str
    catalog: CatalogSpec
    population: PopulationSpec
    allocation: AllocationSpec
    workload: Tuple[WorkloadPhaseSpec, ...]
    paper_claim: str = ""
    churn: Optional[ChurnSpec] = None
    mu: float = 1.5
    horizon: int = 20
    solver: str = "hopcroft_karp"
    warm_start: bool = True
    default_seed: int = 0
    trace_level: str = "full"
    faults: Tuple[FaultSpec, ...] = ()
    engine: str = "round"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must not be empty")
        object.__setattr__(self, "workload", tuple(self.workload))
        object.__setattr__(self, "faults", tuple(self.faults))
        if not self.workload:
            raise ValueError("scenario must declare at least one workload phase")
        check_in_range(self.mu, "mu", 1.0, float("inf"))
        check_positive_integer(self.horizon, "horizon")
        if self.solver not in SCENARIO_SOLVERS:
            raise ValueError(
                f"solver must be one of {SCENARIO_SOLVERS}, got {self.solver!r}"
            )
        check_non_negative_integer(self.default_seed, "default_seed")
        if self.trace_level not in ("full", "lean"):
            raise ValueError(
                f"trace_level must be 'full' or 'lean', got {self.trace_level!r}"
            )
        if self.engine not in ("round", "event"):
            raise ValueError(
                f"engine must be 'round' or 'event', got {self.engine!r}"
            )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready, round-trips through :meth:`from_dict`)."""
        payload = {
            "name": self.name,
            "description": self.description,
            "paper_claim": self.paper_claim,
            "catalog": self.catalog.to_dict(),
            "population": self.population.to_dict(),
            "allocation": self.allocation.to_dict(),
            "workload": [phase.to_dict() for phase in self.workload],
            "churn": None if self.churn is None else self.churn.to_dict(),
            "mu": self.mu,
            "horizon": self.horizon,
            "solver": self.solver,
            "warm_start": self.warm_start,
            "default_seed": self.default_seed,
        }
        # Serialized only when non-default: golden traces recorded before
        # the fields existed must keep comparing spec-identical.
        if self.trace_level != "full":
            payload["trace_level"] = self.trace_level
        if self.faults:
            payload["faults"] = [fault.to_dict() for fault in self.faults]
        if self.engine != "round":
            payload["engine"] = self.engine
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        churn = data.get("churn")
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            paper_claim=str(data.get("paper_claim", "")),
            catalog=CatalogSpec.from_dict(data["catalog"]),
            population=PopulationSpec.from_dict(data["population"]),
            allocation=AllocationSpec.from_dict(data["allocation"]),
            workload=tuple(
                WorkloadPhaseSpec.from_dict(phase) for phase in data["workload"]
            ),
            churn=None if churn is None else ChurnSpec.from_dict(churn),
            mu=float(data.get("mu", 1.5)),
            horizon=int(data.get("horizon", 20)),
            solver=str(data.get("solver", "hopcroft_karp")),
            warm_start=bool(data.get("warm_start", True)),
            default_seed=int(data.get("default_seed", 0)),
            trace_level=str(data.get("trace_level", "full")),
            faults=tuple(
                FaultSpec.from_dict(fault) for fault in data.get("faults", ())
            ),
            engine=str(data.get("engine", "round")),
        )

    def with_overrides(
        self,
        horizon: Optional[int] = None,
        solver: Optional[str] = None,
        warm_start: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> "ScenarioSpec":
        """Copy with selected fields replaced (used by the CLI and tests)."""
        return ScenarioSpec(
            name=self.name,
            description=self.description,
            paper_claim=self.paper_claim,
            catalog=self.catalog,
            population=self.population,
            allocation=self.allocation,
            workload=self.workload,
            churn=self.churn,
            mu=self.mu,
            horizon=self.horizon if horizon is None else horizon,
            solver=self.solver if solver is None else solver,
            warm_start=self.warm_start if warm_start is None else warm_start,
            default_seed=self.default_seed,
            trace_level=self.trace_level,
            faults=self.faults,
            engine=self.engine if engine is None else engine,
        )
