"""Phased workload composition.

A scenario's workload is a mix of phases: each phase owns a demand
generator and an active window ``[start, stop)``.  :class:`PhasedWorkload`
multiplexes them into the single :class:`~repro.workloads.base.DemandGenerator`
the engine expects, querying every phase whose window covers the current
round and dropping duplicate demands for the same box (first phase wins —
the engine would reject the duplicate anyway, since a box plays at most
one video).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.preloading import Demand
from repro.workloads.base import DemandGenerator, SystemView

__all__ = ["WorkloadPhase", "PhasedWorkload"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class WorkloadPhase:
    """A generator together with its active round window ``[start, stop)``."""

    generator: DemandGenerator
    start: int = 0
    stop: Optional[int] = None

    def active_at(self, time: int) -> bool:
        """Whether the phase produces demands at round ``time``."""
        if time < self.start:
            return False
        return self.stop is None or time < self.stop


class PhasedWorkload:
    """Multiplex several windowed demand generators into one.

    Phases are queried in declaration order; a box demanded by an earlier
    phase in the same round is withheld from later phases' output.  A
    phase outside its window is *not* queried at all, so its internal
    random stream advances only during its own window — this keeps
    replays of multi-phase scenarios deterministic round by round.
    """

    def __init__(self, phases: Sequence[WorkloadPhase]):
        if not phases:
            raise ValueError("PhasedWorkload requires at least one phase")
        self._phases: Tuple[WorkloadPhase, ...] = tuple(phases)

    @property
    def phases(self) -> Tuple[WorkloadPhase, ...]:
        """The phases, in declaration (priority) order."""
        return self._phases

    def demand_arrays_for_round(
        self, view: SystemView
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Array-path arrivals when exactly one array-capable phase is active.

        With several phases active (or a generator without the array
        protocol) this returns ``None`` *without touching any random
        stream*, and the caller must fall back to
        :meth:`demands_for_round` — the cross-phase duplicate-box
        filtering only exists on the object path.
        """
        active = [p for p in self._phases if p.active_at(view.time)]
        if not active:
            return _EMPTY, _EMPTY
        if len(active) > 1:
            return None
        supplier = getattr(active[0].generator, "demand_arrays_for_round", None)
        if supplier is None:
            return None
        return supplier(view)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        """Collect demands from every phase active at ``view.time``."""
        demands: List[Demand] = []
        taken_boxes: set = set()
        for phase in self._phases:
            if not phase.active_at(view.time):
                continue
            for demand in phase.generator.demands_for_round(view):
                if demand.box_id in taken_boxes:
                    continue
                taken_boxes.add(demand.box_id)
                demands.append(demand)
        return demands
