"""Scale-tier scenario family and the stress/soak harness.

The paper's threshold results are asymptotic — statements about catalogs
of ``n``-box systems as ``n`` grows — so the registry's toy regression
scenarios cannot exercise them.  The *scale tiers* below instantiate the
same homogeneous regime (``u = 2``, ``d = 3``, ``k = 4`` permutation
allocation, Zipf demand) at 10k / 100k / 500k boxes with proportionally
sized catalogs (``m = n/8``, comfortably under the ``d·n/k`` storage
cap), exercising the vectorized struct-of-arrays engine core at sizes
where a per-object hot loop would take minutes per round.  All tiers run
with ``trace_level="lean"`` so memory stays bounded over long horizons.

:func:`run_soak` is the long-horizon stress harness behind
``python -m repro.scenarios soak`` and ``tests/test_scale_stress.py``:
it checks digest stability across repeated runs, bounds per-round memory
growth with tracemalloc watermarks, and differentially re-solves every
K-th round's matching instance with the max-flow oracle solvers.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.scenarios.spec import (
    AllocationSpec,
    CatalogSpec,
    ChurnSpec,
    PopulationSpec,
    ScenarioSpec,
    WorkloadPhaseSpec,
)

__all__ = ["SCALE_TIERS", "scale_tier_spec", "soak_spec", "SoakReport", "run_soak"]

#: Tier name -> (boxes, videos, Zipf arrival rate, replicas per stripe).
#: The replication factor grows with the tier — the paper's whp-feasibility
#: needs k ~ O(log n), and at 500k boxes the absolute round-0 mass on the
#: Zipf head exceeds what k = 4 static replicas can serve before the
#: playback caches warm up.
SCALE_TIERS: Dict[str, tuple] = {
    "10k": (10_000, 1_250, 200.0, 4),
    "100k": (100_000, 12_500, 2_000.0, 4),
    "500k": (500_000, 62_500, 5_000.0, 6),
    # The millions-of-boxes tier targets the sharded multi-process engine
    # (run it with --shards); single-process runs work but hold the whole
    # box-side state in one heap.  The arrival rate grows sublinearly from
    # the 500k tier: the Zipf head video's absolute round-0 mass scales
    # with rate/ln(m), and k = 6 static replicas must carry it until the
    # playback caches warm up.
    "2m": (2_000_000, 250_000, 6_000.0, 6),
}

#: Soak stress profiles (what the long-horizon runs are stressed with).
SOAK_PROFILES = ("steady", "churn_storm", "flashcrowd_spike")


def scale_tier_spec(tier: str, horizon: int = 50) -> ScenarioSpec:
    """The scenario spec of one scale tier (``"10k"``…``"2m"``)."""
    if tier not in SCALE_TIERS:
        raise KeyError(f"unknown scale tier {tier!r}; known: {sorted(SCALE_TIERS)}")
    boxes, videos, rate, replicas = SCALE_TIERS[tier]
    return ScenarioSpec(
        name=f"scale_tier_{tier}",
        description=(
            f"Scale tier: {boxes:,} boxes, {videos:,}-video catalog, "
            "Zipf demand on the vectorized engine core."
        ),
        paper_claim=(
            "Asymptotic thresholds: the u > 1 catalog-feasibility statements "
            "are about n -> infinity; this tier exercises the same regime at "
            f"n = {boxes:,} instead of toy sizes."
        ),
        catalog=CatalogSpec(num_videos=videos, num_stripes=4, duration=12),
        population=PopulationSpec("homogeneous", {"n": boxes, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=replicas),
        workload=(WorkloadPhaseSpec("zipf", params={"arrival_rate": rate}),),
        mu=1.5,
        horizon=horizon,
        trace_level="lean",
    )


def soak_spec(
    boxes: int = 10_000,
    profile: str = "steady",
    horizon: int = 500,
) -> ScenarioSpec:
    """A long-horizon stress spec: the 10k-tier regime plus a stress profile.

    Profiles: ``"steady"`` (Zipf only), ``"churn_storm"`` (random outages
    take replicas and upload offline throughout the run) and
    ``"flashcrowd_spike"`` (two mu-rate flash crowds on top of background
    demand).  Catalog and arrival rate scale with ``boxes`` exactly like
    the scale tiers.
    """
    if profile not in SOAK_PROFILES:
        raise ValueError(f"profile must be one of {SOAK_PROFILES}, got {profile!r}")
    videos = max(boxes // 8, 1)
    rate = boxes / 50.0
    workload: tuple = (WorkloadPhaseSpec("zipf", params={"arrival_rate": rate}),)
    churn = None
    if profile == "churn_storm":
        churn = ChurnSpec(failure_probability=0.01, outage_duration=6)
    elif profile == "flashcrowd_spike":
        crowd = max(boxes // 50, 10)
        workload = (
            WorkloadPhaseSpec("zipf", params={"arrival_rate": rate / 2}),
            WorkloadPhaseSpec(
                "flashcrowd", start=5, params={"target_videos": [0], "max_members": crowd}
            ),
            WorkloadPhaseSpec(
                "flashcrowd",
                start=max(horizon // 2, 6),
                params={"target_videos": [1], "max_members": crowd},
            ),
        )
    return ScenarioSpec(
        name=f"soak_{profile}_{boxes}",
        description=f"Soak: {boxes:,} boxes under the {profile} profile.",
        paper_claim=(
            "Operational robustness of the asymptotic regime over long "
            "horizons: feasibility and memory must be stable, not just "
            "per-round correct."
        ),
        catalog=CatalogSpec(num_videos=videos, num_stripes=4, duration=12),
        population=PopulationSpec("homogeneous", {"n": boxes, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=workload,
        churn=churn,
        mu=1.5,
        horizon=horizon,
        trace_level="lean",
    )


def _heap_probe(kind: str):
    """Return ``(sample, cleanup)`` for the requested heap probe."""
    if kind == "tracemalloc":
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()

        def cleanup() -> None:
            if started_here:
                tracemalloc.stop()

        return (lambda: tracemalloc.get_traced_memory()[0]), cleanup
    if kind == "rss":
        try:
            with open("/proc/self/statm") as handle:
                handle.read()
            import os

            page = os.sysconf("SC_PAGESIZE")

            def sample_statm() -> int:
                with open("/proc/self/statm") as handle:
                    return int(handle.read().split()[1]) * page

            return sample_statm, (lambda: None)
        except OSError:
            import resource

            def sample_peak() -> int:
                return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

            return sample_peak, (lambda: None)
    raise ValueError(f"memory_probe must be 'tracemalloc' or 'rss', got {kind!r}")


@dataclass
class SoakReport:
    """Outcome of one :func:`run_soak` sweep."""

    scenario: str
    seed: int
    rounds: int
    digest: str
    infeasible_rounds: int = 0
    #: (round, traced bytes) watermarks sampled during the measured run.
    memory_watermarks: List[tuple] = field(default_factory=list)
    #: Sharded runs only: per-process RSS watermarks sampled at the same
    #: rounds — ``(round, [rss_kib of shard 0, shard 1, ...])``, probing
    #: each worker process through the shard host.
    shard_rss_watermarks: List[tuple] = field(default_factory=list)
    #: Number of shards the measured run used (0 = single-process).
    n_shards: int = 0
    #: Traced-heap growth per round over the post-warmup window.
    bytes_per_round: float = 0.0
    memory_budget_bytes_per_round: float = 0.0
    memory_ok: bool = True
    #: Digests of the repeated runs (all must equal ``digest``).
    repeat_digests: List[str] = field(default_factory=list)
    digests_stable: bool = True
    oracle_rounds_checked: int = 0
    oracle_disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every soak check passed."""
        return self.memory_ok and self.digests_stable and not self.oracle_disagreements

    def describe(self) -> str:
        """Multi-line human summary."""
        lines = [
            f"soak[{self.scenario} seed={self.seed}]: {self.rounds} rounds, "
            f"digest {self.digest[:16]}, {self.infeasible_rounds} infeasible",
            f"  memory: {self.bytes_per_round / 1024:.1f} KiB/round "
            f"(budget {self.memory_budget_bytes_per_round / 1024:.1f}) -> "
            + ("OK" if self.memory_ok else "FAIL"),
            f"  digest stability over {1 + len(self.repeat_digests)} runs -> "
            + ("OK" if self.digests_stable else "FAIL"),
            f"  oracle: {self.oracle_rounds_checked} rounds re-solved -> "
            + ("OK" if not self.oracle_disagreements else
               f"{len(self.oracle_disagreements)} DISAGREEMENTS"),
        ]
        if self.n_shards and self.shard_rss_watermarks:
            _, last = self.shard_rss_watermarks[-1]
            peaks = [
                max(sample[1][s] for sample in self.shard_rss_watermarks)
                for s in range(len(last))
            ]
            lines.append(
                f"  shards: {self.n_shards} worker processes, per-process RSS "
                "peaks [" + ", ".join(f"{p / 1024:.1f}" for p in peaks) + "] MiB"
            )
        return "\n".join(lines)


def run_soak(
    spec: ScenarioSpec,
    num_rounds: Optional[int] = None,
    seed: Optional[int] = None,
    oracle_every: int = 0,
    oracle_max_flow_requests: int = 2_000,
    repeats: int = 1,
    memory_budget_bytes_per_round: float = 256 * 1024,
    memory_probe: str = "tracemalloc",
    warmup_fraction: float = 0.4,
    progress: Optional[Callable[[str], None]] = None,
    n_shards: Optional[int] = None,
    shard_host: str = "process",
) -> SoakReport:
    """Run the long-horizon soak checks against ``spec``.

    The measured run steps ``num_rounds`` rounds under tracemalloc,
    sampling heap watermarks; after a warmup window (caches filling,
    buffers reaching steady size) the traced heap may only grow by the
    per-round budget on average — unbounded per-round allocations (event
    traces, leaked records) fail the check.  ``repeats`` extra runs must
    reproduce the metric digest bit for bit, and with ``oracle_every > 0``
    every K-th round's live matching instance is differentially re-solved
    with the max-flow oracle solvers (cardinality, feasibility, min-cut
    certificates and assignment validity).  Instances larger than
    ``oracle_max_flow_requests`` get a cold Hopcroft–Karp maximality
    check on the full instance plus the full differential battery on a
    seeded random sub-instance of that size (the object-graph max-flow
    oracles cost minutes on 10k-request rounds).

    ``memory_probe`` selects the heap probe: ``"tracemalloc"`` (default)
    traces Python allocations exactly but slows the engine's
    NumPy-allocation-heavy rounds ~20x; ``"rss"`` samples the process's
    resident set from ``/proc/self/statm`` (peak RSS via ``getrusage`` as
    a fallback) at full speed — what the CI scale-smoke budgeted runs use.

    ``n_shards`` runs the soak on the sharded multi-process engine; the
    report then additionally carries per-worker-process RSS watermarks
    (``shard_rss_watermarks``), sampled through the shard host at the
    same rounds as the coordinator's heap watermarks.  Digest-stability
    repeats run sharded too — the sharded digest equals the
    single-process one, so stability checks compose.
    """
    from repro.scenarios.build import build_scenario
    from repro.scenarios.oracle import check_matching_instance
    from repro.scenarios.replay import digest_result

    rounds = spec.horizon if num_rounds is None else int(num_rounds)
    if seed is None:
        seed = spec.default_seed
    say = progress or (lambda message: None)

    report = SoakReport(
        scenario=spec.name,
        seed=int(seed),
        rounds=rounds,
        digest="",
        memory_budget_bytes_per_round=float(memory_budget_bytes_per_round),
    )

    observer = None
    if oracle_every > 0:
        import numpy as np

        from repro.flow.hopcroft_karp import hopcroft_karp_matching

        def observer(observation) -> None:
            if observation.time == 0 or observation.time % oracle_every:
                return
            report.oracle_rounds_checked += 1
            context = f"soak round {observation.time}"
            num_left = len(observation.request_set)
            indptr, indices = observation.possession.adjacency_for(
                observation.request_set, observation.time
            )
            if num_left <= oracle_max_flow_requests:
                report.oracle_disagreements.extend(
                    check_matching_instance(
                        num_left,
                        observation.capacities.size,
                        indptr,
                        indices,
                        observation.capacities,
                        reference_assignment=observation.matching.assignment,
                        context=context,
                    )
                )
                return
            # Large instance: the object-graph max-flow oracles cost
            # minutes here, so (i) a cold Hopcroft–Karp re-solve pins the
            # engine's warm-started matching to maximum cardinality on the
            # full instance, and (ii) the full differential battery runs
            # on a seeded random sub-instance.
            cold = hopcroft_karp_matching(
                num_left,
                int(observation.capacities.size),
                indptr,
                indices,
                observation.capacities,
            )
            engine_matched = int((observation.matching.assignment >= 0).sum())
            if engine_matched != cold.matched:
                report.oracle_disagreements.append(
                    f"engine [{context}]: matched {engine_matched} but a cold "
                    f"maximum matching has {cold.matched}"
                )
            rng = np.random.default_rng(observation.time)
            chosen = np.sort(
                rng.choice(num_left, size=oracle_max_flow_requests, replace=False)
            )
            lens = (indptr[chosen + 1] - indptr[chosen]).astype(np.int64)
            sub_indptr = np.zeros(chosen.size + 1, dtype=np.int64)
            np.cumsum(lens, out=sub_indptr[1:])
            gather = (
                np.arange(int(lens.sum()), dtype=np.int64)
                - np.repeat(sub_indptr[:-1], lens)
                + np.repeat(indptr[chosen], lens)
            )
            # Compress the right side to the boxes the sub-instance can
            # actually reach — edgeless boxes only bloat the flow networks.
            sub_boxes, sub_indices = np.unique(indices[gather], return_inverse=True)
            report.oracle_disagreements.extend(
                check_matching_instance(
                    int(chosen.size),
                    int(sub_boxes.size),
                    sub_indptr,
                    sub_indices,
                    observation.capacities[sub_boxes],
                    context=f"{context} (sub-instance of {chosen.size})",
                )
            )

    compiled = build_scenario(
        spec,
        seed=seed,
        min_horizon=rounds,
        round_observer=observer,
        n_shards=n_shards,
        shard_host=shard_host,
    )
    report.n_shards = int(n_shards or 0)
    warmup = max(int(rounds * warmup_fraction), 1)
    sample_every = max(rounds // 20, 1)

    sample, cleanup = _heap_probe(memory_probe)
    try:
        baseline = sample()
        for r in range(rounds):
            compiled.simulator.step(compiled.workload)
            if r + 1 == warmup or (r + 1) % sample_every == 0 or r + 1 == rounds:
                current = sample()
                report.memory_watermarks.append((r + 1, current - baseline))
                if n_shards:
                    probes = compiled.simulator.shard_rss()
                    report.shard_rss_watermarks.append(
                        (r + 1, [float(p["rss_kib"]) for p in probes])
                    )
                if (r + 1) % max(sample_every * 4, 1) == 0:
                    say(f"  round {r + 1}/{rounds}: heap +{(current - baseline) / 1e6:.1f} MB")
    finally:
        cleanup()

    result = compiled.simulator.result()
    report.infeasible_rounds = int(result.metrics.infeasible_rounds)
    report.digest = digest_result(spec, compiled.seed, rounds, result).digest

    # Memory: post-warmup growth per round must stay under budget.
    post = [(r, b) for r, b in report.memory_watermarks if r >= warmup]
    if len(post) >= 2:
        (r0, b0), (r1, b1) = post[0], post[-1]
        if r1 > r0:
            report.bytes_per_round = (b1 - b0) / (r1 - r0)
    report.memory_ok = report.bytes_per_round <= memory_budget_bytes_per_round

    closer = getattr(compiled.simulator, "close", None)
    if closer is not None:
        closer()

    # Digest stability: same (spec, seed) must reproduce bit for bit.
    for k in range(repeats):
        say(f"  repeat run {k + 1}/{repeats}")
        rerun = build_scenario(
            spec, seed=seed, min_horizon=rounds, n_shards=n_shards, shard_host=shard_host
        )
        rerun_result = rerun.run(rounds)
        report.repeat_digests.append(
            digest_result(rerun.spec, rerun.seed, rounds, rerun_result).digest
        )
        closer = getattr(rerun.simulator, "close", None)
        if closer is not None:
            closer()
    report.digests_stable = all(d == report.digest for d in report.repeat_digests)
    return report
