"""Deterministic replay and golden traces.

A scenario run is summarized by a *digest*: the per-round metric records
(all integers) plus the run summary, hashed with SHA-256 over a canonical
JSON encoding.  Because every stochastic component of a compiled scenario
derives from the master seed (:mod:`repro.scenarios.build`), replaying
``(spec, seed)`` reproduces the digest bit for bit — any divergence means
the simulator, a workload, or a solver changed behaviour.

Golden traces persist a digest (with the full spec embedded) to JSON;
:func:`diff_golden` replays and reports the first divergence at round
granularity, which is what the regression tests under ``tests/golden/``
and the ``verify`` CLI command consume.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.engine import SimulationResult

__all__ = [
    "GOLDEN_FORMAT_VERSION",
    "ScenarioRun",
    "run_scenario",
    "digest_result",
    "write_golden",
    "load_golden",
    "diff_golden",
    "verify_golden_file",
]

GOLDEN_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ScenarioRun:
    """The digestible outcome of one scenario run."""

    spec: ScenarioSpec
    seed: int
    rounds: int
    digest: str
    summary: Dict[str, Any]
    round_records: Tuple[Dict[str, int], ...]
    result: Optional[SimulationResult] = None

    def to_golden_dict(self) -> Dict[str, Any]:
        """The JSON payload written to a golden-trace file."""
        return {
            "format": GOLDEN_FORMAT_VERSION,
            "scenario": self.spec.name,
            "seed": self.seed,
            "rounds": self.rounds,
            "digest": self.digest,
            "summary": dict(self.summary),
            "round_records": [dict(r) for r in self.round_records],
            "spec": self.spec.to_dict(),
        }


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _round_records(result: SimulationResult) -> List[Dict[str, int]]:
    records: List[Dict[str, int]] = []
    for stats in result.metrics.round_stats:
        records.append(
            {
                "t": int(stats.time),
                "active": int(stats.active_requests),
                "new": int(stats.new_requests),
                "matched": int(stats.matched),
                "unmatched": int(stats.unmatched),
                "feasible": int(stats.feasible),
                "upload_used": int(stats.upload_used),
                "upload_capacity": int(stats.upload_capacity),
            }
        )
    return records


def _summary(result: SimulationResult) -> Dict[str, Any]:
    metrics = result.metrics
    summary = {
        "rounds": int(metrics.rounds),
        "total_demands": int(metrics.total_demands),
        "total_requests": int(metrics.total_requests),
        "infeasible_rounds": int(metrics.infeasible_rounds),
        "unmatched_requests": int(metrics.unmatched_requests),
        "rejected_demands": int(result.rejected_demands),
        "swarm_growth_violations": int(metrics.swarm_growth_violations),
        "peak_box_load": int(metrics.peak_box_load),
        "max_startup_delay": None
        if metrics.max_startup_delay is None
        else int(metrics.max_startup_delay),
        "mean_startup_delay": None
        if metrics.mean_startup_delay is None
        else float(metrics.mean_startup_delay),
        "stopped_early": bool(result.stopped_early),
        "trace_events": len(result.trace),
    }
    # Latency percentiles exist only on event-engine runs; round-engine
    # summaries (and their recorded digests) keep the historical key set.
    for name in (
        "admission_latency_p50",
        "admission_latency_p99",
        "startup_delay_p50",
        "startup_delay_p99",
    ):
        value = getattr(metrics, name, None)
        if value is not None:
            summary[name] = float(value)
    return summary


def digest_result(
    spec: ScenarioSpec, seed: int, rounds: int, result: SimulationResult
) -> ScenarioRun:
    """Digest a finished run into a :class:`ScenarioRun`."""
    records = _round_records(result)
    summary = _summary(result)
    payload = {
        "scenario": spec.name,
        "seed": int(seed),
        "rounds": int(rounds),
        "solver": spec.solver,
        "warm_start": spec.warm_start,
        "round_records": records,
        "summary": summary,
    }
    digest = hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()
    return ScenarioRun(
        spec=spec,
        seed=int(seed),
        rounds=int(rounds),
        digest=digest,
        summary=summary,
        round_records=tuple(records),
        result=result,
    )


def run_scenario(
    scenario: Union[str, ScenarioSpec],
    seed: Optional[int] = None,
    num_rounds: Optional[int] = None,
    incremental: Optional[bool] = None,
    n_shards: Optional[int] = None,
    shard_host: str = "process",
    engine: Optional[str] = None,
) -> ScenarioRun:
    """Build, run and digest a scenario (by name or explicit spec).

    ``incremental`` pins the engine's incremental-matching toggle:
    ``True``/``False`` force the delta-repair path on/off, ``None``
    (default) leaves the engine default.  ``n_shards`` runs the scenario
    on the sharded multi-process engine (``shard_host`` ``"process"`` or
    ``"inline"``); the digest is identical to the single-process run of
    the same ``(scenario, seed)``.  ``engine`` overrides the spec's clock
    mode (``"round"``/``"event"``): round records are engine-independent,
    but event-mode summaries carry the latency-percentile keys, so the
    digest reflects the mode that actually ran.
    """
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if engine is not None:
        spec = spec.with_overrides(engine=engine)
    rounds = spec.horizon if num_rounds is None else int(num_rounds)
    compiled = build_scenario(
        spec, seed=seed, min_horizon=rounds, n_shards=n_shards, shard_host=shard_host
    )
    if incremental is not None:
        compiled.simulator.set_incremental_matching(incremental)
    try:
        result = compiled.run(rounds)
    finally:
        closer = getattr(compiled.simulator, "close", None)
        if closer is not None:
            closer()
    return digest_result(spec, compiled.seed, rounds, result)


# ---------------------------------------------------------------------- #
# Golden traces
# ---------------------------------------------------------------------- #
def write_golden(run: ScenarioRun, path: Union[str, Path]) -> Path:
    """Write ``run`` as a golden-trace JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(run.to_golden_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_golden(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a golden-trace file, checking its format version."""
    data = json.loads(Path(path).read_text())
    version = data.get("format")
    if version != GOLDEN_FORMAT_VERSION:
        raise ValueError(
            f"golden trace {path} has format {version!r}, "
            f"expected {GOLDEN_FORMAT_VERSION}"
        )
    return data


def diff_golden(run: ScenarioRun, golden: Dict[str, Any]) -> List[str]:
    """Compare a fresh run against a golden trace.

    Returns a list of human-readable differences (empty = bit-identical).
    The digest comparison is authoritative; the per-round and summary
    diffs only narrow down *where* the divergence started.
    """
    diffs: List[str] = []
    if run.spec.name != golden.get("scenario"):
        diffs.append(
            f"scenario name: ran {run.spec.name!r}, golden {golden.get('scenario')!r}"
        )
    if run.seed != golden.get("seed"):
        diffs.append(f"seed: ran {run.seed}, golden {golden.get('seed')}")
    if run.rounds != golden.get("rounds"):
        diffs.append(f"rounds: ran {run.rounds}, golden {golden.get('rounds')}")
    golden_spec = golden.get("spec")
    if golden_spec is not None and run.spec.to_dict() != golden_spec:
        diffs.append(
            "spec drift: the registered spec no longer matches the recorded one "
            "(regenerate the golden if the change is intentional)"
        )

    golden_records = [dict(r) for r in golden.get("round_records", [])]
    records = [dict(r) for r in run.round_records]
    for index, (current, recorded) in enumerate(zip(records, golden_records)):
        if current != recorded:
            changed = sorted(
                key
                for key in set(current) | set(recorded)
                if current.get(key) != recorded.get(key)
            )
            diffs.append(
                f"round {index} diverges on {changed}: ran {current}, "
                f"golden {recorded}"
            )
            break
    if len(records) != len(golden_records):
        diffs.append(
            f"round count: ran {len(records)}, golden {len(golden_records)}"
        )

    golden_summary = golden.get("summary", {})
    for key in sorted(set(run.summary) | set(golden_summary)):
        if run.summary.get(key) != golden_summary.get(key):
            diffs.append(
                f"summary[{key}]: ran {run.summary.get(key)!r}, "
                f"golden {golden_summary.get(key)!r}"
            )
    if run.digest != golden.get("digest"):
        diffs.append(
            f"digest: ran {run.digest}, golden {golden.get('digest')}"
        )
    return diffs


def verify_golden_file(
    path: Union[str, Path], use_registry: bool = True
) -> Tuple[ScenarioRun, List[str]]:
    """Replay a golden trace and return ``(fresh_run, differences)``.

    With ``use_registry`` (default) the scenario is replayed from the
    *registered* spec of the recorded name — so drift between the registry
    and the recording is caught — falling back to the embedded spec for
    unregistered scenarios.  Run-level overrides the recording CLI offers
    (``solver``, ``warm_start``, ``horizon``) are taken from the embedded
    spec, so goldens recorded with ``--solver``/``--cold-start`` verify
    cleanly; any *other* divergence from the registry is reported as drift.
    """
    golden = load_golden(path)
    embedded = ScenarioSpec.from_dict(golden["spec"])
    spec = embedded
    if use_registry:
        try:
            registered = get_scenario(str(golden["scenario"]))
        except KeyError:
            pass
        else:
            spec = registered.with_overrides(
                horizon=embedded.horizon,
                solver=embedded.solver,
                warm_start=embedded.warm_start,
                engine=embedded.engine,
            )
    run = run_scenario(spec, seed=int(golden["seed"]), num_rounds=int(golden["rounds"]))
    return run, diff_golden(run, golden)
