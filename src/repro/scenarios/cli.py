"""Command-line interface: ``python -m repro.scenarios <command>``.

Commands
--------
``list``
    Table of registered scenarios with the paper claim each one stresses.
``run NAME``
    Build + run a scenario and print its digest and summary; optionally
    record a golden trace.
``verify PATH``
    Replay a golden-trace file and diff it (exit code 1 on divergence).
``crosscheck NAME``
    Run a scenario on both the round-synchronous and the event-driven
    engine and diff the round-binned traces record for record (exit
    code 1 on divergence).
``oracle NAME``
    Differentially re-solve sampled rounds with Dinic and push–relabel
    (exit code 1 on any disagreement).
``session NAME``
    Step a scenario round by round through the :mod:`repro.api` session
    layer, checkpoint mid-run, restore, and verify that the restored
    continuation and the batch ``run()`` agree bit for bit (exit code 1
    on divergence).
``soak``
    Long-horizon stress run at scale (10k+ boxes): digest stability over
    repeated runs, tracemalloc memory-growth watermarks, and differential
    solver spot-checks every K-th round (exit code 1 on any failure).
``smoke``
    Run every registered scenario for a few rounds — the CI canary.
    Each scenario runs twice, with the incremental delta-repair path on
    and forced off, and the per-round records must agree bit for bit.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.scenarios.oracle import run_differential_oracle
from repro.scenarios.registry import all_scenarios, get_scenario, scenario_names
from repro.scenarios.replay import (
    diff_golden,
    load_golden,
    run_scenario,
    verify_golden_file,
    write_golden,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Named, reproducible end-to-end scenarios for the VoD repro.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios")

    run_p = sub.add_parser("run", help="run a scenario and print its digest")
    run_p.add_argument("name", help="registered scenario name")
    run_p.add_argument("--seed", type=int, default=None, help="master seed")
    run_p.add_argument("--rounds", type=int, default=None, help="override horizon")
    run_p.add_argument(
        "--solver",
        default=None,
        choices=["hopcroft_karp", "dinic", "push_relabel", "edmonds_karp"],
        help="override the matching kernel",
    )
    run_p.add_argument(
        "--cold-start",
        action="store_true",
        help="disable warm-started rounds for this run",
    )
    run_p.add_argument(
        "--write-golden", metavar="PATH", default=None, help="record a golden trace"
    )
    run_p.add_argument(
        "--json", action="store_true", help="emit the full digest payload as JSON"
    )
    run_p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run on the sharded multi-process engine with N worker shards "
        "(digest-identical to the single-process run)",
    )
    run_p.add_argument(
        "--shard-host",
        default="process",
        choices=["process", "inline"],
        help="shard worker host: separate processes (default) or in-process "
        "workers (debugging)",
    )
    run_p.add_argument(
        "--engine",
        default=None,
        choices=["round", "event"],
        help="override the spec's clock mode: the round-synchronous engine "
        "or the event-driven continuous-time engine (adds admission-latency "
        "and startup-delay percentiles to the summary)",
    )

    crosscheck_p = sub.add_parser(
        "crosscheck",
        help="run a scenario on both engines and diff the round-binned traces",
    )
    crosscheck_p.add_argument("name", help="registered scenario name")
    crosscheck_p.add_argument("--seed", type=int, default=None, help="master seed")
    crosscheck_p.add_argument(
        "--rounds", type=int, default=None, help="override horizon"
    )
    crosscheck_p.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )

    verify_p = sub.add_parser("verify", help="replay and diff a golden trace")
    verify_p.add_argument("golden", help="path to the golden-trace JSON file")
    verify_p.add_argument(
        "--embedded-spec",
        action="store_true",
        help="replay from the spec embedded in the file instead of the registry",
    )

    oracle_p = sub.add_parser("oracle", help="differential solver cross-check")
    oracle_p.add_argument("name", help="registered scenario name")
    oracle_p.add_argument("--seed", type=int, default=None)
    oracle_p.add_argument("--rounds", type=int, default=None)
    oracle_p.add_argument(
        "--sample-every", type=int, default=1, help="check every k-th round"
    )
    oracle_p.add_argument(
        "--incremental",
        choices=("on", "off"),
        default=None,
        help="pin the engine's incremental delta-repair path (default: "
        "engine default, i.e. on) so both paths can be certified",
    )

    session_p = sub.add_parser(
        "session", help="step a scenario through the repro.api session layer"
    )
    session_p.add_argument("name", help="registered scenario name")
    session_p.add_argument("--seed", type=int, default=None, help="master seed")
    session_p.add_argument("--rounds", type=int, default=None, help="override horizon")
    session_p.add_argument(
        "--solver",
        default=None,
        choices=["hopcroft_karp", "dinic", "push_relabel", "edmonds_karp"],
        help="override the matching kernel",
    )
    session_p.add_argument(
        "--cold-start",
        action="store_true",
        help="disable warm-started rounds for this run",
    )
    session_p.add_argument(
        "--checkpoint-at",
        type=int,
        default=None,
        metavar="ROUND",
        help="snapshot after this many rounds (default: mid-run), then restore "
        "and verify the continuation replays bit-identically",
    )
    session_p.add_argument(
        "--json", action="store_true", help="emit the per-round reports as JSON"
    )

    soak_p = sub.add_parser(
        "soak", help="long-horizon stress run with memory/digest/oracle checks"
    )
    soak_p.add_argument(
        "--boxes", type=int, default=10_000, help="population size (default 10k)"
    )
    soak_p.add_argument(
        "--profile",
        default="churn_storm",
        choices=["steady", "churn_storm", "flashcrowd_spike"],
        help="stress profile layered on the scale-tier regime",
    )
    soak_p.add_argument(
        "--rounds", type=int, default=500, help="horizon (default 500)"
    )
    soak_p.add_argument("--seed", type=int, default=None, help="master seed")
    soak_p.add_argument(
        "--oracle-every",
        type=int,
        default=0,
        metavar="K",
        help="differentially re-solve every K-th round (0 = off)",
    )
    soak_p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="extra runs that must reproduce the digest bit for bit",
    )
    soak_p.add_argument(
        "--memory-budget-kib",
        type=float,
        default=256.0,
        help="allowed post-warmup heap growth per round, in KiB",
    )
    soak_p.add_argument(
        "--memory-probe",
        default="tracemalloc",
        choices=["tracemalloc", "rss"],
        help="heap probe: exact Python-allocation tracing (slows rounds "
        "~20x) or full-speed resident-set sampling",
    )
    soak_p.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run on the sharded multi-process engine with N worker shards; "
        "the report then includes per-process RSS watermarks",
    )
    soak_p.add_argument(
        "--shard-host",
        default="process",
        choices=["process", "inline"],
        help="shard worker host for --shards (default: process)",
    )

    smoke_p = sub.add_parser("smoke", help="run every scenario briefly")
    smoke_p.add_argument("names", nargs="*", help="subset of scenarios (default: all)")
    smoke_p.add_argument("--rounds", type=int, default=3)
    smoke_p.add_argument("--seed", type=int, default=None)
    return parser


def _cmd_list() -> int:
    width = max(len(name) for name in scenario_names())
    for spec in all_scenarios():
        print(f"{spec.name:<{width}}  {spec.description}")
        claim = spec.paper_claim or "(no paper claim recorded)"
        print(f"{'':<{width}}  ↳ {claim}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = get_scenario(args.name).with_overrides(
        solver=args.solver, warm_start=False if args.cold_start else None
    )
    run = run_scenario(
        spec,
        seed=args.seed,
        num_rounds=args.rounds,
        n_shards=args.shards,
        shard_host=args.shard_host,
        engine=args.engine,
    )
    if args.json:
        print(json.dumps(run.to_golden_dict(), indent=2, sort_keys=True))
    else:
        print(f"scenario : {run.spec.name}")
        print(f"seed     : {run.seed}")
        print(f"rounds   : {run.rounds}")
        print(f"digest   : {run.digest}")
        for key, value in run.summary.items():
            print(f"  {key} = {value}")
    if args.write_golden:
        path = write_golden(run, args.write_golden)
        print(f"golden trace written to {path}", file=sys.stderr)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    run, diffs = verify_golden_file(args.golden, use_registry=not args.embedded_spec)
    if not diffs:
        print(f"OK: {run.spec.name} seed={run.seed} replays bit-identically "
              f"({run.digest})")
        return 0
    print(f"DIVERGED: {run.spec.name} seed={run.seed}")
    for diff in diffs:
        print(f"  - {diff}")
    return 1


def _cmd_crosscheck(args: argparse.Namespace) -> int:
    # Imported lazily: the events package pulls in the scenario compiler,
    # and the other subcommands should not pay for it.
    from repro.events.crosscheck import crosscheck_scenario

    report = crosscheck_scenario(args.name, seed=args.seed, rounds=args.rounds)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"scenario : {report.scenario}")
        print(f"seed     : {report.seed}")
        print(f"rounds   : {report.rounds}")
        for name in (
            "admission_latency_p50",
            "admission_latency_p99",
            "startup_delay_p50",
            "startup_delay_p99",
        ):
            value = getattr(report, name)
            if value is not None:
                print(f"  {name} = {value:.6f}")
        if report.matched:
            print("round/event parity: OK (record-for-record)")
        else:
            print(f"round/event parity: DIVERGED ({len(report.mismatches)} mismatches)")
            for mismatch in report.mismatches:
                print(f"  - {mismatch}")
    return 0 if report.matched else 1


def _cmd_oracle(args: argparse.Namespace) -> int:
    report = run_differential_oracle(
        args.name,
        seed=args.seed,
        num_rounds=args.rounds,
        sample_every=args.sample_every,
        incremental=None if args.incremental is None else args.incremental == "on",
    )
    print(report.describe())
    for disagreement in report.disagreements:
        print(f"  - {disagreement}")
    return 0 if report.ok else 1


def _cmd_session(args: argparse.Namespace) -> int:
    from repro.api import VodSession
    from repro.scenarios.build import build_scenario

    spec = get_scenario(args.name).with_overrides(
        solver=args.solver, warm_start=False if args.cold_start else None
    )
    rounds = spec.horizon if args.rounds is None else int(args.rounds)
    if rounds <= 0:
        print(f"--rounds must be positive, got {rounds}", file=sys.stderr)
        return 2
    checkpoint_at = args.checkpoint_at
    if checkpoint_at is None:
        checkpoint_at = rounds // 2
    if not 0 <= checkpoint_at <= rounds:
        print(f"--checkpoint-at must be in [0, {rounds}]", file=sys.stderr)
        return 2

    compiled = build_scenario(spec, seed=args.seed, min_horizon=rounds)
    session = compiled.session(horizon=rounds)

    reports = list(session.step_until(round=checkpoint_at))
    snapshot = session.snapshot()
    reports += list(session.step_until(round=rounds))

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2, sort_keys=True))
    else:
        print(f"scenario : {spec.name}")
        print(f"seed     : {compiled.seed}")
        print(f"rounds   : {rounds}  (checkpoint at {checkpoint_at})")
        for report in reports:
            flag = "ok " if report.feasible else "OBS"
            print(
                f"  t={report.time:<3d} {flag} active={report.active_requests:<4d} "
                f"matched={report.matched:<4d} unmatched={report.unmatched:<3d} "
                f"util={report.utilization:.3f}"
            )
        print(f"digest   : {session.digest()}")

    failures = 0
    # With --json, stdout is exactly the report array; status goes to stderr.
    status_stream = sys.stderr if args.json else sys.stdout

    # Restore the mid-run checkpoint and replay the tail.
    restored = VodSession.restore(snapshot)
    restored.step_until(round=rounds)
    if restored.digest() == session.digest():
        print(
            f"checkpoint/restore parity: OK (round {checkpoint_at})",
            file=status_stream,
        )
    else:
        print("checkpoint/restore parity: DIVERGED", file=status_stream)
        failures += 1

    # The stepwise rounds must equal a fresh batch run of the same build.
    batch = build_scenario(spec, seed=args.seed, min_horizon=rounds).run(rounds)
    batch_rounds = [stats.to_dict() for stats in batch.metrics.round_stats]
    session_rounds = [r.to_round_stats().to_dict() for r in reports]
    if session_rounds == batch_rounds:
        print("batch parity: OK", file=status_stream)
    else:
        print("batch parity: DIVERGED", file=status_stream)
        failures += 1
    return 1 if failures else 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.scenarios.scale import run_soak, soak_spec

    spec = soak_spec(
        boxes=args.boxes, profile=args.profile, horizon=args.rounds
    )
    print(f"soak: {spec.name}, {args.rounds} rounds")
    report = run_soak(
        spec,
        num_rounds=args.rounds,
        seed=args.seed,
        oracle_every=args.oracle_every,
        repeats=args.repeat,
        memory_budget_bytes_per_round=args.memory_budget_kib * 1024,
        memory_probe=args.memory_probe,
        n_shards=args.shards,
        shard_host=args.shard_host,
        progress=print,
    )
    print(report.describe())
    for disagreement in report.oracle_disagreements:
        print(f"  - {disagreement}")
    return 0 if report.ok else 1


def _cmd_smoke(args: argparse.Namespace) -> int:
    # Unknown names are a usage error (exit 2), expected run failures
    # (bad specs, infeasible builds — ValueError/ApiError) are counted
    # and reported (exit 1), and anything else is a programming error
    # whose traceback must NOT be swallowed: a smoke canary that prints
    # "ERROR" and moves on would hide real regressions from CI.
    from repro.api.errors import ApiError

    # Tiers too large for the smoke canary: skipped (with a printed line,
    # so coverage audits still see the name) unless requested explicitly.
    skip_by_default = {"scale_tier_2m"}
    names = args.names or scenario_names()
    unknown = [name for name in names if name not in scenario_names()]
    if unknown:
        print(
            f"error: unknown scenario(s): {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for name in names:
        if not args.names and name in skip_by_default:
            print(f"{name:<22} SKIPPED (too large for smoke; run explicitly)")
            continue
        try:
            run = run_scenario(name, seed=args.seed, num_rounds=args.rounds)
            # The smoke-level oracle on the incremental path: re-run with
            # the delta repair forced off and require every round's
            # matched cardinality (and the full record: feasibility,
            # upload usage) to agree with the full per-round solve.
            full = run_scenario(
                name, seed=run.seed, num_rounds=args.rounds, incremental=False
            )
        except (ValueError, ApiError) as exc:
            print(f"{name:<22} ERROR {type(exc).__name__}: {exc}")
            failures += 1
            continue
        if run.round_records != full.round_records:
            diverged = sum(
                1
                for a, b in zip(run.round_records, full.round_records)
                if a != b
            )
            print(
                f"{name:<22} ERROR incremental/full divergence in "
                f"{diverged} of {len(run.round_records)} rounds"
            )
            failures += 1
            continue
        feasible = "feasible" if run.summary["infeasible_rounds"] == 0 else (
            f"{run.summary['infeasible_rounds']} infeasible rounds"
        )
        print(f"{name:<22} {run.digest[:16]}  {feasible}  inc==full")
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "crosscheck":
        return _cmd_crosscheck(args)
    if args.command == "oracle":
        return _cmd_oracle(args)
    if args.command == "session":
        return _cmd_session(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "smoke":
        return _cmd_smoke(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
