"""Compile a :class:`~repro.scenarios.spec.ScenarioSpec` into a live run.

The compiler derives every stochastic ingredient from one master seed:
``SeedSequence(seed)`` is spawned into named child streams — population,
allocation, churn, then one stream per workload phase, in that fixed
order — so the same ``(spec, seed)`` pair always wires byte-identical
components regardless of which ones are actually random.  This is the
foundation of the deterministic replay layer
(:mod:`repro.scenarios.replay`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.core.allocation import (
    Allocation,
    random_independent_allocation,
    random_permutation_allocation,
    round_robin_allocation,
)
from repro.core.parameters import (
    BoxPopulation,
    homogeneous_population,
    pareto_population,
    two_class_population,
)
from repro.core.video import Catalog
from repro.scenarios.phases import PhasedWorkload, WorkloadPhase
from repro.scenarios.spec import ScenarioSpec, WorkloadPhaseSpec
from repro.sim.churn import ChurnSchedule, random_churn_schedule
from repro.sim.engine import RoundObservation, VodSimulator
from repro.workloads.adversarial import (
    ColdStartAdversary,
    LeastReplicatedAdversary,
    MissingVideoAdversary,
)
from repro.workloads.flashcrowd import FlashCrowdWorkload, StaggeredFlashCrowdWorkload
from repro.workloads.popularity import UniformDemandWorkload, ZipfDemandWorkload
from repro.workloads.sequential import SequentialViewingWorkload

__all__ = ["CompiledScenario", "build_scenario"]


@dataclass
class CompiledScenario:
    """A scenario wired and ready to run.

    ``run()`` executes the simulator for the spec's horizon (or an
    override) and returns the engine's
    :class:`~repro.sim.engine.SimulationResult`.  A compiled scenario is
    single-use: the simulator carries state, so build a fresh one per run.
    """

    spec: ScenarioSpec
    seed: int
    catalog: Catalog
    population: BoxPopulation
    allocation: Allocation
    churn: Optional[ChurnSchedule]
    workload: PhasedWorkload
    simulator: VodSimulator

    def run(self, num_rounds: Optional[int] = None):
        """Run the compiled simulator for ``num_rounds`` (default: horizon)."""
        rounds = self.spec.horizon if num_rounds is None else int(num_rounds)
        return self.simulator.run(self.workload, rounds)


# ---------------------------------------------------------------------- #
# Component factories
# ---------------------------------------------------------------------- #
def _build_population(
    kind: str, params: Dict[str, Any], rng: np.random.Generator
) -> BoxPopulation:
    if kind == "homogeneous":
        return homogeneous_population(
            n=int(params["n"]), u=float(params["u"]), d=float(params["d"])
        )
    if kind == "two_class":
        return two_class_population(
            n=int(params["n"]),
            rich_fraction=float(params["rich_fraction"]),
            u_rich=float(params["u_rich"]),
            u_poor=float(params["u_poor"]),
            d_rich=float(params["d_rich"]),
            d_poor=float(params["d_poor"]),
            random_state=rng,
            shuffle=bool(params.get("shuffle", False)),
        )
    if kind == "pareto":
        u_cap = params.get("u_cap")
        return pareto_population(
            n=int(params["n"]),
            u_min=float(params["u_min"]),
            shape=float(params["shape"]),
            storage_per_upload=float(params["storage_per_upload"]),
            u_cap=None if u_cap is None else float(u_cap),
            random_state=rng,
        )
    raise ValueError(f"unknown population kind {kind!r}")


def _build_allocation(
    spec: ScenarioSpec,
    catalog: Catalog,
    population: BoxPopulation,
    rng: np.random.Generator,
) -> Allocation:
    alloc = spec.allocation
    if alloc.scheme == "permutation":
        return random_permutation_allocation(
            catalog, population, alloc.replicas_per_stripe, random_state=rng
        )
    if alloc.scheme == "independent":
        return random_independent_allocation(
            catalog,
            population,
            alloc.replicas_per_stripe,
            random_state=rng,
            on_full=str(alloc.params.get("on_full", "redraw")),
        )
    if alloc.scheme == "round_robin":
        return round_robin_allocation(
            catalog,
            population,
            alloc.replicas_per_stripe,
            offset=int(alloc.params.get("offset", 0)),
        )
    raise ValueError(f"unknown allocation scheme {alloc.scheme!r}")


def _build_phase_generator(
    phase: WorkloadPhaseSpec, spec: ScenarioSpec, rng: np.random.Generator
):
    p = phase.params
    mu = float(p.get("mu", spec.mu))
    if phase.kind == "zipf":
        return ZipfDemandWorkload(
            arrival_rate=float(p["arrival_rate"]),
            exponent=float(p.get("exponent", 0.8)),
            start_time=phase.start,
            random_state=rng,
        )
    if phase.kind == "uniform":
        return UniformDemandWorkload(
            arrival_rate=float(p["arrival_rate"]),
            start_time=phase.start,
            random_state=rng,
        )
    if phase.kind == "flashcrowd":
        max_members = p.get("max_members")
        return FlashCrowdWorkload(
            mu=mu,
            target_videos=tuple(int(v) for v in p.get("target_videos", (0,))),
            start_time=phase.start,
            max_members=None if max_members is None else int(max_members),
            random_state=rng,
        )
    if phase.kind == "staggered_flashcrowd":
        max_members = p.get("max_members")
        return StaggeredFlashCrowdWorkload(
            mu=mu,
            target_videos=tuple(int(v) for v in p["target_videos"]),
            start_times=tuple(int(t) for t in p["start_times"]),
            max_members=None if max_members is None else int(max_members),
            random_state=rng,
        )
    if phase.kind == "sequential":
        boxes = p.get("boxes")
        playlist = p.get("playlist")
        return SequentialViewingWorkload(
            boxes=None if boxes is None else tuple(int(b) for b in boxes),
            playlist=None if playlist is None else tuple(int(v) for v in playlist),
            start_time=phase.start,
            random_state=rng,
        )
    if phase.kind == "missing_video":
        cap = p.get("max_demands_per_round")
        return MissingVideoAdversary(
            start_time=phase.start,
            max_demands_per_round=None if cap is None else int(cap),
            respect_growth=bool(p.get("respect_growth", False)),
            mu=mu,
            random_state=rng,
        )
    if phase.kind == "least_replicated":
        return LeastReplicatedAdversary(
            mu=mu,
            num_target_videos=int(p.get("num_target_videos", 1)),
            start_time=phase.start,
            random_state=rng,
        )
    if phase.kind == "cold_start":
        cap = p.get("max_demands_per_round")
        return ColdStartAdversary(
            start_time=phase.start,
            max_demands_per_round=None if cap is None else int(cap),
            random_state=rng,
        )
    raise ValueError(f"unknown workload kind {phase.kind!r}")


# ---------------------------------------------------------------------- #
# The compiler
# ---------------------------------------------------------------------- #
def build_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    record_connections: bool = False,
    stop_on_infeasible: bool = False,
    round_observer: Optional[Callable[[RoundObservation], None]] = None,
    min_horizon: Optional[int] = None,
) -> CompiledScenario:
    """Compile ``spec`` into a fully wired simulator run.

    ``seed`` defaults to ``spec.default_seed``.  All randomness —
    population draw, allocation draw, churn schedule, every workload
    phase — is derived from child streams of ``SeedSequence(seed)``
    spawned in a fixed order, so two builds with the same arguments
    produce bit-identical runs.

    ``min_horizon`` extends the churn schedule beyond ``spec.horizon``
    when the caller intends to run more rounds than the spec declares
    (otherwise the extra rounds would silently be churn-free).  The
    per-round churn draw is prefix-stable, so a longer schedule never
    changes the outages of the earlier rounds.
    """
    if seed is None:
        seed = spec.default_seed
    seed = int(seed)
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")

    root = np.random.SeedSequence(seed)
    streams = root.spawn(3 + len(spec.workload))
    population_rng = np.random.default_rng(streams[0])
    allocation_rng = np.random.default_rng(streams[1])
    churn_rng = np.random.default_rng(streams[2])

    catalog = Catalog(
        num_videos=spec.catalog.num_videos,
        num_stripes=spec.catalog.num_stripes,
        duration=spec.catalog.duration,
    )
    population = _build_population(
        spec.population.kind, spec.population.params, population_rng
    )
    allocation = _build_allocation(spec, catalog, population, allocation_rng)

    churn: Optional[ChurnSchedule] = None
    if spec.churn is not None:
        churn = random_churn_schedule(
            num_boxes=population.n,
            horizon=max(spec.horizon, min_horizon or 0),
            failure_probability=spec.churn.failure_probability,
            outage_duration=spec.churn.outage_duration,
            random_state=churn_rng,
            protected_boxes=spec.churn.protected_boxes,
        )

    phases = [
        WorkloadPhase(
            generator=_build_phase_generator(
                phase, spec, np.random.default_rng(streams[3 + index])
            ),
            start=phase.start,
            stop=phase.stop,
        )
        for index, phase in enumerate(spec.workload)
    ]
    workload = PhasedWorkload(phases)

    simulator = VodSimulator(
        allocation,
        mu=spec.mu,
        record_connections=record_connections,
        stop_on_infeasible=stop_on_infeasible,
        churn=churn,
        warm_start=spec.warm_start,
        solver=spec.solver,
        round_observer=round_observer,
    )
    return CompiledScenario(
        spec=spec,
        seed=seed,
        catalog=catalog,
        population=population,
        allocation=allocation,
        churn=churn,
        workload=workload,
        simulator=simulator,
    )
