"""Compile a :class:`~repro.scenarios.spec.ScenarioSpec` into a live run.

The compiler derives every stochastic ingredient from one master seed:
``SeedSequence(seed)`` is spawned into named child streams — population,
allocation, churn, then one stream per workload phase, in that fixed
order — so the same ``(spec, seed)`` pair always wires byte-identical
components regardless of which ones are actually random.  This is the
foundation of the deterministic replay layer
(:mod:`repro.scenarios.replay`).

Components are resolved by name through the :mod:`repro.api.registry`
(populations, allocation schemes, workload kinds, churn models) and the
engine is constructed through the :class:`~repro.api.system.VodSystem`
facade — registering a new component name makes it immediately usable
from scenario specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.api.registry import create_component
from repro.api.session import VodSession
from repro.api.system import VodSystem
from repro.core.allocation import Allocation
from repro.core.parameters import BoxPopulation
from repro.core.video import Catalog
from repro.scenarios.phases import PhasedWorkload, WorkloadPhase
from repro.scenarios.spec import ScenarioSpec
from repro.sim.churn import ChurnSchedule
from repro.sim.engine import RoundObservation, VodSimulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.faults.plan import FaultDriver

__all__ = ["CompiledScenario", "build_scenario"]


@dataclass
class CompiledScenario:
    """A scenario wired and ready to run.

    ``run()`` executes the simulator for the spec's horizon (or an
    override) and returns the engine's
    :class:`~repro.sim.engine.SimulationResult`; ``session()`` wraps the
    same engine and workload in a stepwise
    :class:`~repro.api.session.VodSession`.  A compiled scenario is
    single-use either way: the simulator carries state, so build a fresh
    one per run.
    """

    spec: ScenarioSpec
    seed: int
    system: VodSystem
    catalog: Catalog
    population: BoxPopulation
    allocation: Allocation
    churn: Optional[ChurnSchedule]
    workload: PhasedWorkload
    simulator: VodSimulator
    fault_driver: Optional["FaultDriver"] = None

    def run(self, num_rounds: Optional[int] = None):
        """Run the compiled simulator for ``num_rounds`` (default: horizon)."""
        rounds = self.spec.horizon if num_rounds is None else int(num_rounds)
        if self.fault_driver is None:
            return self.simulator.run(self.workload, rounds)
        # Faulted runs are driven through a session so the fault driver
        # fires before every round; the session steps the exact same
        # per-round path the batch loop uses, so a fault-free driver
        # (or none) yields the identical result either way.
        session = self.session(horizon=rounds)
        session.step_until(round=rounds)
        return session.result()

    def session(self, horizon: Optional[int] = None) -> VodSession:
        """Open a stepwise session over the compiled engine and workload.

        The session drives the exact same per-round path ``run()`` uses, so
        stepping it to the horizon reproduces the batch result bit for bit.
        ``horizon`` defaults to the spec's; pass a different budget to bound
        (or, with ``None`` explicitly via :class:`VodSession`, unbound) the
        session.
        """
        rounds = self.spec.horizon if horizon is None else int(horizon)
        return VodSession(
            self.simulator,
            workload=self.workload,
            horizon=rounds,
            fault_driver=self.fault_driver,
        )


# ---------------------------------------------------------------------- #
# The compiler
# ---------------------------------------------------------------------- #
def build_scenario(
    spec: ScenarioSpec,
    seed: Optional[int] = None,
    record_connections: bool = False,
    stop_on_infeasible: bool = False,
    round_observer: Optional[Callable[[RoundObservation], None]] = None,
    min_horizon: Optional[int] = None,
    n_shards: Optional[int] = None,
    shard_host: str = "process",
) -> CompiledScenario:
    """Compile ``spec`` into a fully wired simulator run.

    ``seed`` defaults to ``spec.default_seed``.  All randomness —
    population draw, allocation draw, churn schedule, every workload
    phase — is derived from child streams of ``SeedSequence(seed)``
    spawned in a fixed order, so two builds with the same arguments
    produce bit-identical runs.

    ``min_horizon`` extends the churn schedule beyond ``spec.horizon``
    when the caller intends to run more rounds than the spec declares
    (otherwise the extra rounds would silently be churn-free).  The
    per-round churn draw is prefix-stable, so a longer schedule never
    changes the outages of the earlier rounds.

    ``n_shards`` compiles the scenario onto the sharded multi-process
    engine (:mod:`repro.shard`) with ``shard_host`` workers.  Sharded
    runs are digest-identical to single-process runs of the same
    ``(spec, seed)``: the shard entropy is a dedicated child stream
    spawned after every other stream (append-stable), and the shard
    data plane consumes no randomness during the run.

    ``spec.engine`` selects the clock: ``"event"`` compiles onto the
    continuous-time engine (:mod:`repro.events`), whose intra-round
    arrival offsets come from a dedicated child stream spawned after
    every other stream — so event-mode compilation never perturbs a
    round-mode digest of the same seed, and vice versa.
    """
    if seed is None:
        seed = spec.default_seed
    seed = int(seed)
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")

    root = np.random.SeedSequence(seed)
    streams = root.spawn(3 + len(spec.workload))
    # Fault streams are spawned *after* every pre-existing stream:
    # SeedSequence.spawn is append-stable, so adding faults to a spec
    # never perturbs the population/allocation/churn/workload draws, and
    # fault-free specs keep their recorded randomness bit-identical.
    fault_streams = root.spawn(len(spec.faults)) if spec.faults else []
    # Shard entropy comes after every earlier stream for the same
    # append-stability reason; it is spawned even for unsharded builds so
    # that turning sharding on (or off) never perturbs any later spawn.
    shard_stream = root.spawn(1)[0]
    # Event-engine entropy (the intra-round arrival offsets) comes last
    # and is likewise spawned unconditionally: adding the event engine
    # perturbed no pre-existing digest, and any stream added later must
    # follow it.
    event_stream = root.spawn(1)[0]
    population_rng = np.random.default_rng(streams[0])
    allocation_rng = np.random.default_rng(streams[1])
    churn_rng = np.random.default_rng(streams[2])

    catalog = Catalog(
        num_videos=spec.catalog.num_videos,
        num_stripes=spec.catalog.num_stripes,
        duration=spec.catalog.duration,
    )
    population = create_component(
        "population", spec.population.kind, spec.population.params, population_rng
    )

    system = VodSystem(catalog=catalog, population=population, mu=spec.mu)
    allocation = system.allocate(
        spec.allocation.scheme,
        replicas_per_stripe=spec.allocation.replicas_per_stripe,
        seed=allocation_rng,
        **spec.allocation.params,
    )

    churn: Optional[ChurnSchedule] = None
    if spec.churn is not None:
        churn = create_component(
            "churn",
            "random",
            population.n,
            max(spec.horizon, min_horizon or 0),
            spec.churn.to_dict(),
            churn_rng,
        )

    phases = [
        WorkloadPhase(
            generator=create_component(
                "workload",
                phase.kind,
                phase.params,
                phase.start,
                float(phase.params.get("mu", spec.mu)),
                np.random.default_rng(streams[3 + index]),
            ),
            start=phase.start,
            stop=phase.stop,
        )
        for index, phase in enumerate(spec.workload)
    ]
    workload = PhasedWorkload(phases)

    fault_driver = None
    if spec.faults:
        # Imported lazily: importing the module registers the built-in
        # "fault" components, and fault-free builds skip the cost.
        from repro.faults.plan import build_fault_driver

        fault_driver = build_fault_driver(
            spec.faults,
            population,
            spec.horizon,
            [np.random.default_rng(stream) for stream in fault_streams],
        )

    simulator = system.build_simulator(
        record_connections=record_connections,
        stop_on_infeasible=stop_on_infeasible,
        churn=churn,
        warm_start=spec.warm_start,
        solver=spec.solver,
        round_observer=round_observer,
        trace_level=spec.trace_level,
        n_shards=n_shards,
        shard_host=shard_host,
        shard_random_state=shard_stream,
        engine=spec.engine,
        event_random_state=event_stream,
    )
    return CompiledScenario(
        spec=spec,
        seed=seed,
        system=system,
        catalog=catalog,
        population=population,
        allocation=allocation,
        churn=churn,
        workload=workload,
        simulator=simulator,
        fault_driver=fault_driver,
    )
