"""Differential solver oracles.

The engine's hot path is the Hopcroft–Karp CSR kernel (PR 1); its slow,
independent oracles are the max-flow reductions solved by Dinic and FIFO
push–relabel.  This module cross-checks them at simulation scale:

* :func:`check_matching_instance` re-solves one bipartite instance with
  all three kernels and verifies (i) matching cardinality agreement,
  (ii) feasibility agreement, (iii) max-flow = min-cut certificates on
  both flow networks, (iv) assignment validity (every pair is an actual
  possession edge, no box over capacity) and (v) on infeasible
  instances, that the Hopcroft–Karp Hall witness really violates the
  generalized Hall condition ``U_{B(X)} ≥ |X|`` (in upload-slot units);
* :func:`run_differential_oracle` replays a scenario with a
  round-observer that captures each sampled round's exact instance
  (adjacency, effective capacities, the engine's own — possibly
  warm-started — matching) and runs the instance check against it.

Any disagreement is reported as a human-readable string; an empty report
means the fast path is exact on everything the scenario exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.flow.dinic import dinic_max_flow
from repro.flow.hopcroft_karp import hopcroft_karp_matching
from repro.flow.mincut import verify_max_flow_min_cut
from repro.flow.network import build_bipartite_network
from repro.flow.push_relabel import push_relabel_max_flow
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.engine import RoundObservation

__all__ = ["OracleReport", "check_matching_instance", "run_differential_oracle"]


@dataclass
class OracleReport:
    """Outcome of a differential-oracle sweep."""

    scenario: str
    seed: int
    rounds_checked: int = 0
    instances_checked: int = 0
    requests_checked: int = 0
    disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every checked instance agreed across all solvers."""
        return not self.disagreements

    def describe(self) -> str:
        """One-line human summary."""
        status = "OK" if self.ok else f"{len(self.disagreements)} DISAGREEMENTS"
        return (
            f"oracle[{self.scenario} seed={self.seed}]: "
            f"{self.instances_checked} instances / {self.requests_checked} requests "
            f"over {self.rounds_checked} rounds -> {status}"
        )


def _edges_from_csr(
    indptr: np.ndarray, indices: np.ndarray, num_left: int
) -> List[Tuple[int, int]]:
    edges: List[Tuple[int, int]] = []
    for i in range(num_left):
        for e in range(int(indptr[i]), int(indptr[i + 1])):
            edges.append((i, int(indices[e])))
    return edges


def _validate_assignment(
    label: str,
    assignment: Sequence[int],
    indptr: np.ndarray,
    indices: np.ndarray,
    capacities: Sequence[int],
    num_right: int,
    errors: List[str],
) -> None:
    load = [0] * num_right
    for i, box in enumerate(assignment):
        box = int(box)
        if box < 0:
            continue
        row = set(int(x) for x in indices[int(indptr[i]): int(indptr[i + 1])])
        if box not in row:
            errors.append(
                f"{label}: request {i} assigned to box {box} outside its "
                f"possession neighbourhood {sorted(row)}"
            )
            continue
        load[box] += 1
        if load[box] > int(capacities[box]):
            errors.append(
                f"{label}: box {box} serves {load[box]} requests over its "
                f"capacity {int(capacities[box])}"
            )


def check_matching_instance(
    num_left: int,
    num_right: int,
    indptr: Sequence[int],
    indices: Sequence[int],
    capacities: Sequence[int],
    reference_assignment: Optional[Sequence[int]] = None,
    context: str = "",
) -> List[str]:
    """Differentially solve one unit-demand b-matching instance.

    Returns a list of disagreement descriptions (empty = all solvers and
    certificates agree).  ``reference_assignment`` optionally checks a
    caller-provided assignment (e.g. the engine's warm-started matching)
    for validity and for cardinality equality with the cold solves.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    caps = [int(x) for x in capacities]
    errors: List[str] = []
    where = f" [{context}]" if context else ""

    hk = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
    _validate_assignment(
        f"hopcroft_karp{where}", hk.assignment, indptr, indices, caps, num_right, errors
    )

    edges = _edges_from_csr(indptr, indices, num_left)
    flow_values = {}
    for name, solver in (("dinic", dinic_max_flow), ("push_relabel", push_relabel_max_flow)):
        network, source, sink = build_bipartite_network(
            num_left, num_right, edges, [1] * num_left, caps
        )
        flow_values[name] = solver(network, source, sink)
        if not verify_max_flow_min_cut(network, source, sink):
            errors.append(
                f"{name}{where}: max-flow/min-cut certificate failed "
                f"(flow {flow_values[name]})"
            )

    for name, value in flow_values.items():
        if value != hk.matched:
            errors.append(
                f"cardinality{where}: hopcroft_karp matched {hk.matched} but "
                f"{name} max flow is {value}"
            )
    feasible_flow = flow_values["dinic"] == num_left
    if hk.feasible != feasible_flow:
        errors.append(
            f"feasibility{where}: hopcroft_karp says {hk.feasible}, "
            f"max flow says {feasible_flow}"
        )

    if not hk.feasible:
        if hk.unsatisfied_witness is None:
            errors.append(f"witness{where}: infeasible instance without a Hall witness")
        else:
            witness = list(hk.unsatisfied_witness)
            neighbourhood: set = set()
            for i in witness:
                neighbourhood.update(
                    int(x) for x in indices[int(indptr[i]): int(indptr[i + 1])]
                )
            capacity = sum(caps[b] for b in neighbourhood)
            if capacity >= len(witness):
                errors.append(
                    f"witness{where}: claimed Hall violation |X|={len(witness)} "
                    f"has neighbourhood capacity {capacity} >= |X|"
                )

    if reference_assignment is not None:
        reference = [int(x) for x in reference_assignment]
        if len(reference) != num_left:
            errors.append(
                f"reference{where}: assignment length {len(reference)} != {num_left}"
            )
        else:
            _validate_assignment(
                f"engine{where}", reference, indptr, indices, caps, num_right, errors
            )
            matched = sum(1 for b in reference if b >= 0)
            if matched != hk.matched:
                errors.append(
                    f"engine{where}: matched {matched} requests but the cold "
                    f"maximum matching has {hk.matched}"
                )
    return errors


def run_differential_oracle(
    scenario: Union[str, ScenarioSpec],
    seed: Optional[int] = None,
    num_rounds: Optional[int] = None,
    sample_every: int = 1,
    max_instances: Optional[int] = None,
    max_errors: int = 20,
    incremental: Optional[bool] = None,
) -> OracleReport:
    """Replay a scenario, re-solving sampled rounds with the oracle solvers.

    Every ``sample_every``-th round's exact matching instance (adjacency
    from the live possession index, capacities after churn, the engine's
    warm-started assignment) is differentially checked.  The run itself
    uses the spec's configured solver and warm-start policy, so this
    validates the production path, not a sanitized copy.  ``incremental``
    pins the engine's delta-repair toggle (``None`` keeps the engine
    default): with it on, every checked round certifies the incremental
    matching's cardinality against the cold solves.
    """
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    report = OracleReport(scenario=spec.name, seed=0)

    def observer(observation: RoundObservation) -> None:
        report.rounds_checked += 1
        if (observation.time % sample_every) != 0:
            return
        if max_instances is not None and report.instances_checked >= max_instances:
            return
        if len(report.disagreements) >= max_errors:
            # Error budget exhausted: stop solving (and stop counting, so
            # the report never overstates what was actually checked).
            return
        requests = list(observation.request_set)
        indptr, indices = observation.possession.adjacency_for(
            requests, observation.time
        )
        report.instances_checked += 1
        report.requests_checked += len(requests)
        errors = check_matching_instance(
            num_left=len(requests),
            num_right=int(observation.capacities.size),
            indptr=indptr,
            indices=indices,
            capacities=observation.capacities,
            reference_assignment=observation.matching.assignment,
            context=f"{spec.name} t={observation.time}",
        )
        report.disagreements.extend(errors)

    rounds = spec.horizon if num_rounds is None else int(num_rounds)
    compiled = build_scenario(
        spec, seed=seed, round_observer=observer, min_horizon=rounds
    )
    if incremental is not None:
        compiled.simulator.set_incremental_matching(incremental)
    report.seed = compiled.seed
    compiled.run(rounds)
    return report
