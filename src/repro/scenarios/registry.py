"""The registry of named end-to-end scenarios.

Each entry composes population, allocation, a phased workload mix, churn
and a horizon into one reproducible run keyed by name.  The parameters
are deliberately small (tens of boxes, tens of rounds) so that the full
registry replays in seconds — these are regression scenarios for the
matching engine and simulator, not scale benchmarks; the `paper_claim`
field says which claim of the paper each one stresses.

Use :func:`get_scenario` / :func:`scenario_names` to look entries up and
:func:`register` to add project-local ones.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (
    AllocationSpec,
    CatalogSpec,
    ChurnSpec,
    FaultSpec,
    PopulationSpec,
    ScenarioSpec,
    WorkloadPhaseSpec,
)

__all__ = ["register", "get_scenario", "scenario_names", "all_scenarios"]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, overwrite: bool = False) -> ScenarioSpec:
    """Add ``spec`` to the registry (refusing silent redefinitions)."""
    if not overwrite and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


# ---------------------------------------------------------------------- #
# Built-in scenarios
# ---------------------------------------------------------------------- #
register(
    ScenarioSpec(
        name="steady_state",
        description="Zipf-popular Poisson demand on a comfortable homogeneous system.",
        paper_claim=(
            "Theorem 1 baseline regime: u > 1 with moderate replication keeps "
            "every round feasible under benign demand."
        ),
        catalog=CatalogSpec(num_videos=16, num_stripes=4, duration=12),
        population=PopulationSpec("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(WorkloadPhaseSpec("zipf", params={"arrival_rate": 3.0}),),
        mu=1.5,
        horizon=24,
    )
)

register(
    ScenarioSpec(
        name="flashcrowd_spike",
        description="A mu-rate flash crowd on one video over light background demand.",
        paper_claim=(
            "Lemma 2 tightness: a swarm growing at the maximal rate mu is fed by "
            "the previous generation's preloaded stripes."
        ),
        catalog=CatalogSpec(num_videos=12, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 40, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(
            WorkloadPhaseSpec("zipf", params={"arrival_rate": 1.0}),
            WorkloadPhaseSpec(
                "flashcrowd",
                start=2,
                params={"target_videos": [0], "max_members": 25},
            ),
        ),
        mu=1.5,
        horizon=20,
    )
)

register(
    ScenarioSpec(
        name="adaptive_adversary",
        description="Demand floods the least-replicated videos of the drawn allocation.",
        paper_claim=(
            "Worst-case quantification over any demand sequence: an adaptive "
            "adversary probes the weakest part of the expander."
        ),
        catalog=CatalogSpec(num_videos=14, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 36, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(
            WorkloadPhaseSpec(
                "least_replicated", params={"num_target_videos": 2, "mu": 1.4}
            ),
        ),
        mu=1.4,
        horizon=20,
    )
)

register(
    ScenarioSpec(
        name="hetero_upload_tiers",
        description="Rich/poor two-class population served without relaying.",
        paper_claim=(
            "Section 4 premise: heterogeneous upload tiers with average u > 1 "
            "still admit per-round feasible matchings."
        ),
        catalog=CatalogSpec(num_videos=12, num_stripes=4, duration=10),
        population=PopulationSpec(
            "two_class",
            {
                "n": 40,
                "rich_fraction": 0.4,
                "u_rich": 3.0,
                "u_poor": 1.0,
                "d_rich": 4.5,
                "d_poor": 1.5,
                "shuffle": True,
            },
        ),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(WorkloadPhaseSpec("zipf", params={"arrival_rate": 2.5}),),
        mu=1.5,
        horizon=20,
    )
)

register(
    ScenarioSpec(
        name="churn_storm",
        description="Random box outages take replicas and upload offline mid-run.",
        paper_claim=(
            "Robustness extension: k independent replicas tolerate moderate "
            "churn without any repair mechanism."
        ),
        catalog=CatalogSpec(num_videos=12, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 36, "u": 2.5, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=5),
        workload=(WorkloadPhaseSpec("zipf", params={"arrival_rate": 2.0}),),
        churn=ChurnSpec(failure_probability=0.03, outage_duration=4),
        mu=1.5,
        horizon=24,
    )
)

register(
    ScenarioSpec(
        name="catalog_growth_ramp",
        description="Cold-start demand ramps across a catalog near the storage cap.",
        paper_claim=(
            "Achievable catalog size: sourcing pressure on an m close to d*n/k "
            "catalog probes the obstruction-probability regime of Lemmas 3-4."
        ),
        catalog=CatalogSpec(num_videos=23, num_stripes=4, duration=8),
        population=PopulationSpec("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(
            WorkloadPhaseSpec(
                "cold_start", start=0, stop=8, params={"max_demands_per_round": 1}
            ),
            WorkloadPhaseSpec(
                "cold_start", start=8, stop=16, params={"max_demands_per_round": 3}
            ),
            WorkloadPhaseSpec(
                "cold_start", start=16, params={"max_demands_per_round": 5}
            ),
        ),
        mu=1.5,
        horizon=24,
    )
)

register(
    ScenarioSpec(
        name="warm_cold_restart",
        description="Two flash crowds separated by an idle gap on one simulator.",
        paper_claim=(
            "Warm-start correctness: after caches evict and requests expire, "
            "re-matching from a stale assignment must equal a cold solve."
        ),
        catalog=CatalogSpec(num_videos=12, num_stripes=4, duration=8),
        population=PopulationSpec("homogeneous", {"n": 40, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(
            WorkloadPhaseSpec(
                "flashcrowd",
                start=1,
                params={"target_videos": [0], "max_members": 20},
            ),
            WorkloadPhaseSpec(
                "flashcrowd",
                start=12,
                params={"target_videos": [1], "max_members": 20},
            ),
        ),
        mu=1.5,
        horizon=24,
    )
)

# Scale tiers: the same homogeneous regime at 10k/100k/500k boxes with
# proportional catalogs, exercising the vectorized engine core at sizes
# the asymptotic threshold statements are actually about.  Lean traces,
# CI-feasible horizons; `tests/test_scale_stress.py` and
# `benchmarks/bench_scale.py` drive them.
from repro.scenarios.scale import SCALE_TIERS, scale_tier_spec  # noqa: E402

for _tier in SCALE_TIERS:
    register(scale_tier_spec(_tier))


register(
    ScenarioSpec(
        name="near_threshold_load",
        description="Aggressive uniform demand with upload barely above the threshold.",
        paper_claim=(
            "The u > 1 threshold itself: just above it the system is workable "
            "but obstruction witnesses appear under heavy load."
        ),
        catalog=CatalogSpec(num_videos=14, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 48, "u": 1.05, "d": 2.5}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=3),
        workload=(WorkloadPhaseSpec("uniform", params={"arrival_rate": 10.0}),),
        mu=1.5,
        horizon=20,
    )
)

# Chaos scenarios: the regimes above with declarative, seed-deterministic
# fault plans (:mod:`repro.faults.plan`) layered on top.  They are golden
# scenarios like any other — injected faults replay bit-identically — and
# the recovery properties they pin down are asserted in
# `tests/test_faults_plan.py` and the `fault_recovery` campaign.
register(
    ScenarioSpec(
        name="chaos_box_crash",
        description="A correlated crash burst takes 20% of boxes down mid-run.",
        paper_claim=(
            "Robustness extension under correlated failure: k independent "
            "replicas keep most rounds feasible through a crash burst, and "
            "the crashed boxes rejoin without repair."
        ),
        catalog=CatalogSpec(num_videos=12, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 36, "u": 2.5, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=5),
        workload=(WorkloadPhaseSpec("zipf", params={"arrival_rate": 2.0}),),
        mu=1.5,
        horizon=24,
        faults=(
            FaultSpec("box_crash", {"start": 4, "duration": 4, "fraction": 0.2}),
        ),
    )
)

register(
    ScenarioSpec(
        name="chaos_brownout",
        description="A quarter of the boxes run at half upload for a window.",
        paper_claim=(
            "Capacity-margin sensitivity: a partial upload brownout erodes "
            "the u > 1 margin without disconnecting any replica."
        ),
        catalog=CatalogSpec(num_videos=16, num_stripes=4, duration=12),
        population=PopulationSpec("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(WorkloadPhaseSpec("zipf", params={"arrival_rate": 3.0}),),
        mu=1.5,
        horizon=24,
        faults=(
            FaultSpec(
                "brownout",
                {"start": 6, "duration": 6, "fraction": 0.25, "factor": 0.5},
            ),
        ),
    )
)

register(
    ScenarioSpec(
        name="chaos_degraded_solver",
        description="Near-threshold load with the matcher's search budget cut to zero.",
        paper_claim=(
            "Graceful degradation: when the primary solver's augmentation "
            "budget is exhausted the fallback chain must preserve the "
            "matching cardinality, so per-round metrics equal the "
            "fault-free run bit for bit."
        ),
        catalog=CatalogSpec(num_videos=14, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 48, "u": 1.05, "d": 2.5}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=3),
        workload=(WorkloadPhaseSpec("uniform", params={"arrival_rate": 10.0}),),
        mu=1.5,
        horizon=20,
        faults=(
            FaultSpec("solver_budget", {"start": 1, "duration": 19, "budget": 0}),
        ),
    )
)

register(
    ScenarioSpec(
        name="event_steady_state",
        description=(
            "The steady-state regime on the continuous-time event engine: "
            "identical round records, plus per-request latency percentiles."
        ),
        paper_claim=(
            "The paper's constant 3-round start-up delay is a worst-case "
            "bound over the round clock (arrival and playback rounds "
            "counted inclusively); measured as continuous elapsed time "
            "the arrival-to-playback delays distribute over (1, 2] and "
            "the admission latencies over (0, 1], which is the "
            "per-request view production SLOs are stated in."
        ),
        catalog=CatalogSpec(num_videos=16, num_stripes=4, duration=12),
        population=PopulationSpec("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(WorkloadPhaseSpec("zipf", params={"arrival_rate": 3.0}),),
        mu=1.5,
        horizon=24,
        engine="event",
    )
)

register(
    ScenarioSpec(
        name="zipf_steady",
        description=(
            "Stationary truncated-Zipf demand with the classic VoD "
            "exponent over a comfortable homogeneous system."
        ),
        paper_claim=(
            "Workload realism for Theorem 1: the feasibility guarantee is "
            "demand-oblivious, so the stationary Zipf regime real VoD "
            "catalogs exhibit (alpha near 1) must stay feasible exactly "
            "like the near-uniform synthetic demand."
        ),
        catalog=CatalogSpec(num_videos=20, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 36, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(
            WorkloadPhaseSpec(
                "zipf", params={"arrival_rate": 4.0, "exponent": 1.2}
            ),
        ),
        mu=1.5,
        horizon=24,
    )
)

register(
    ScenarioSpec(
        name="zipf_drift",
        description=(
            "Zipf demand whose popularity ranks reshuffle on a schedule, "
            "with a rotating promoted hot set layered on top."
        ),
        paper_claim=(
            "Temporal drift stress: the allocation is drawn once but real "
            "popularity drifts, so feasibility must not depend on which "
            "videos happen to be hot — the expander argument is "
            "permutation-invariant."
        ),
        catalog=CatalogSpec(num_videos=16, num_stripes=4, duration=10),
        population=PopulationSpec("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(
            WorkloadPhaseSpec(
                "drift",
                params={"arrival_rate": 2.5, "exponent": 1.0, "drift_period": 6},
            ),
            WorkloadPhaseSpec(
                "flash_rotation",
                start=8,
                params={
                    "arrival_rate": 1.0,
                    "hot_videos": 3,
                    "rotation_period": 4,
                    "boost": 6.0,
                },
            ),
        ),
        mu=1.5,
        horizon=24,
    )
)

register(
    ScenarioSpec(
        name="trace_replay",
        description=(
            "Replay of the bundled zipf_small demand trace through the "
            "streaming trace reader."
        ),
        paper_claim=(
            "Trace-driven validation: recorded request logs replayed "
            "bit-reproducibly stand in for the parametric workload models, "
            "closing the loop between the paper's analysis and measured "
            "demand."
        ),
        catalog=CatalogSpec(num_videos=16, num_stripes=4, duration=12),
        population=PopulationSpec("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
        allocation=AllocationSpec("permutation", replicas_per_stripe=4),
        workload=(WorkloadPhaseSpec("trace", params={"trace": "zipf_small"}),),
        mu=1.5,
        horizon=24,
    )
)

register(
    ScenarioSpec(
        name="cdn_hybrid_baseline",
        description=(
            "Zipf demand served by the operator-shaped CDN / vCDN / muCDN "
            "hierarchy with whole-video helper caches."
        ),
        paper_claim=(
            "Catalog-vs-replication tradeoff against deployment practice: "
            "a capacity hierarchy with LRU-fixed-point helper caches is "
            "the baseline operators actually run, and the paper's "
            "distributed scheme must be compared against it on the same "
            "engine."
        ),
        catalog=CatalogSpec(num_videos=12, num_stripes=4, duration=10),
        population=PopulationSpec(
            "tiered",
            {
                "cdn_count": 2,
                "vcdn_count": 4,
                "mucdn_count": 8,
                "client_count": 18,
            },
        ),
        allocation=AllocationSpec(
            "hierarchical_cache",
            replicas_per_stripe=3,
            params={
                "cdn_count": 2,
                "vcdn_count": 4,
                "mucdn_count": 8,
                "client_count": 18,
            },
        ),
        workload=(
            WorkloadPhaseSpec(
                "zipf", params={"arrival_rate": 3.0, "exponent": 1.2}
            ),
        ),
        mu=1.5,
        horizon=20,
    )
)
