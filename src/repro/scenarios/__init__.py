"""Named, reproducible end-to-end scenarios.

This subsystem turns the repo's hand-wired experiment scripts into one
declarative layer:

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and its component
  specs (catalog, population, allocation, workload phases, churn), all
  JSON-round-trippable;
* :mod:`repro.scenarios.build` — the compiler wiring a spec + master seed
  into a :class:`~repro.sim.engine.VodSimulator` run, with every random
  stream derived from the seed;
* :mod:`repro.scenarios.registry` — the named scenarios (steady state,
  flash-crowd spike, adaptive adversary, upload tiers, churn storm,
  catalog ramp, warm/cold restart, near-threshold load);
* :mod:`repro.scenarios.replay` — per-round metric digests, golden
  traces and bit-identical replay verification;
* :mod:`repro.scenarios.oracle` — the differential solver harness
  cross-checking the Hopcroft–Karp hot path against the Dinic and
  push–relabel max-flow oracles at simulation scale;
* :mod:`repro.scenarios.cli` — ``python -m repro.scenarios run <name>``.
"""

from repro.scenarios.build import CompiledScenario, build_scenario
from repro.scenarios.oracle import (
    OracleReport,
    check_matching_instance,
    run_differential_oracle,
)
from repro.scenarios.phases import PhasedWorkload, WorkloadPhase
from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)
from repro.scenarios.replay import (
    ScenarioRun,
    diff_golden,
    digest_result,
    load_golden,
    run_scenario,
    verify_golden_file,
    write_golden,
)
from repro.scenarios.scale import (
    SCALE_TIERS,
    SoakReport,
    run_soak,
    scale_tier_spec,
    soak_spec,
)
from repro.scenarios.spec import (
    AllocationSpec,
    CatalogSpec,
    ChurnSpec,
    PopulationSpec,
    ScenarioSpec,
    WorkloadPhaseSpec,
)

__all__ = [
    "AllocationSpec",
    "CatalogSpec",
    "ChurnSpec",
    "CompiledScenario",
    "OracleReport",
    "PhasedWorkload",
    "PopulationSpec",
    "SCALE_TIERS",
    "ScenarioRun",
    "ScenarioSpec",
    "SoakReport",
    "WorkloadPhase",
    "WorkloadPhaseSpec",
    "all_scenarios",
    "build_scenario",
    "check_matching_instance",
    "diff_golden",
    "digest_result",
    "get_scenario",
    "load_golden",
    "register",
    "run_differential_oracle",
    "run_scenario",
    "run_soak",
    "scale_tier_spec",
    "scenario_names",
    "soak_spec",
    "verify_golden_file",
    "write_golden",
]
