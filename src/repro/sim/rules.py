"""Pure per-round rules shared by the engine and the sharded data plane.

The sharded engine (:mod:`repro.shard`) partitions the box-side state of
:class:`~repro.sim.engine.VodSimulator` — busy horizons, the demand log,
playback detection — across worker processes.  Digest parity between the
two engines requires both to apply *exactly* the same admission and
playback rules, so those rules live here as pure array functions with no
engine state: the single-process engine calls them over its global
arrays, each shard worker calls them over its box-range slice, and the
results agree element for element because the rules only ever look at
one box's (or one demand's) own columns.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["admission_mask", "detect_playback_starts"]


def admission_mask(
    busy_until: np.ndarray, box_ids: np.ndarray, time: int
) -> np.ndarray:
    """Boolean accept mask over one round's demand arrivals, in order.

    Implements the engine's admission rule on arrays: a demand is
    rejected when its box is still playing (``busy_until > time``), and
    only each box's *first* demand of the round is kept — accepting one
    makes the box busy, so a sequential admission loop would reject the
    rest.  The rule depends only on the demanding box's own state, which
    is what makes it exactly partitionable across box shards.
    """
    n = int(box_ids.size)
    accept = busy_until[box_ids] <= time
    if accept.any() and n > 1:
        order = np.argsort(box_ids, kind="stable")
        sorted_boxes = box_ids[order]
        dup_sorted = np.empty(n, dtype=bool)
        dup_sorted[0] = False
        np.equal(sorted_boxes[1:], sorted_boxes[:-1], out=dup_sorted[1:])
        if dup_sorted.any():
            duplicate = np.empty(n, dtype=bool)
            duplicate[order] = dup_sorted
            accept &= ~duplicate
    return accept


def detect_playback_starts(
    pool_demand_indices: np.ndarray,
    pool_first_matched: np.ndarray,
    demand_count: int,
    demand_time: np.ndarray,
    demand_started: np.ndarray,
    expected_stripes: int,
    time: int,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Find the demands whose playback starts as of round ``time``.

    A demand's playback starts once all ``expected_stripes`` of its
    stripe requests have been served at least once and the playback round
    (one past the last first-service round) has been reached.  Marks the
    started demands in ``demand_started`` (in place) and returns
    ``(demand_indices, playback_rounds, startup_delays)`` — or ``None``
    when nothing starts.  Indices are into the caller's demand log, so
    the single-process engine gets global indices and a shard worker gets
    shard-local ones; the per-demand arithmetic is identical because a
    demand's requests always live in its own box's shard.
    """
    if not pool_demand_indices.size or not demand_count:
        return None
    served = (pool_demand_indices >= 0) & (pool_first_matched >= 0)
    if not served.any():
        return None
    d = pool_demand_indices[served]
    # Pool entries expire after ``duration`` rounds, so the demand
    # indices present span a short window — bincount over that window
    # instead of the whole (ever-growing) demand log.
    lo = int(d.min())
    d = d - lo
    width = demand_count - lo
    counts = np.bincount(d, minlength=width)
    last_first = np.full(width, -1, dtype=np.int64)
    np.maximum.at(last_first, d, pool_first_matched[served])
    started = demand_started[lo:demand_count]
    # All stripes served, playback round reached, not yet started.
    ready = (counts >= expected_stripes) & (last_first + 1 <= time + 1) & ~started
    ready_idx = np.flatnonzero(ready)
    if not ready_idx.size:
        return None
    started[ready_idx] = True
    playback_rounds = last_first[ready_idx] + 1
    delays = playback_rounds - demand_time[lo + ready_idx] + 1
    return lo + ready_idx, playback_rounds, delays
