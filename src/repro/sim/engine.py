"""The round-based Video-on-Demand simulator.

:class:`VodSimulator` executes the paper's model end to end:

1. at every round ``t`` the workload generator produces the demands that
   arrived during ``[t−1, t[`` (restricted to boxes that are not already
   playing a video — at most one video per box);
2. the preloading scheduler converts demands into dated stripe requests
   (preload at ``t``, postponed at ``t+1``; or the relayed timeline of
   Section 4 for heterogeneous systems);
3. the set ``Y`` of *all* currently active requests is matched against the
   boxes possessing the corresponding data (static allocation + playback
   caches + relay caches) through a max-flow computation, with per-box
   capacity ``⌊u_b·c⌋`` stripes per round (minus any statically reserved
   relay upload);
4. feasibility, start-up delays, utilization and swarm-growth compliance
   are recorded; an infeasible round is an *obstruction witness* against
   the allocation.

The simulator never aborts on infeasibility by default — experiments want
to count infeasible rounds — but ``stop_on_infeasible=True`` makes it stop
early, which the catalog-search experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.allocation import Allocation, AllocationError
from repro.core.heterogeneous import CompensationPlan, RelayedPreloadingScheduler
from repro.core.matching import (
    ConnectionMatcher,
    ConnectionMatching,
    MatchDelta,
    PossessionIndex,
    RequestSet,
)
from repro.core.preloading import Demand, PreloadingScheduler
from repro.sim.churn import ChurnSchedule
from repro.sim.clock import RoundClock
from repro.sim.events import (
    ConnectionEvent,
    DemandEvent,
    InfeasibilityEvent,
    PlaybackStartEvent,
    RequestEvent,
)
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.rules import admission_mask, detect_playback_starts
from repro.sim.scheduler import ActiveRequestPool
from repro.sim.swarm import SwarmRegistry
from repro.sim.trace import SimulationTrace
from repro.workloads.base import DemandGenerator, SystemView
from repro.util.soa import ensure_column_capacity
from repro.util.validation import check_positive_integer

__all__ = ["RoundObservation", "SimulationResult", "VodSimulator"]


@dataclass(frozen=True)
class RoundObservation:
    """Snapshot of one round's matching instance, handed to observers.

    The observation is emitted *after* the round's matching and *before*
    the possession index mutates again (eviction happens at the start of
    the next round), so ``possession.adjacency_for(list(request_set),
    time)`` reproduces the exact bipartite instance the matcher solved.
    The differential solver oracle (:mod:`repro.scenarios.oracle`) relies
    on this to re-solve sampled rounds with independent kernels.
    """

    #: Round the matching was computed for.
    time: int
    #: The request multiset ``Y`` handed to the matcher.
    request_set: RequestSet
    #: The matching the engine's solver returned.
    matching: "ConnectionMatching"
    #: The possession index, still in this round's state.
    possession: PossessionIndex

    @property
    def capacities(self) -> np.ndarray:
        """Effective per-box capacities of this round's solved instance."""
        return self.matching.capacities


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a simulation run."""

    metrics: SimulationMetrics
    trace: SimulationTrace
    #: Demands that were rejected because the box was still playing a video.
    rejected_demands: int
    #: Whether the run stopped early because of an infeasible round.
    stopped_early: bool

    @property
    def feasible(self) -> bool:
        """Whether every round's matching was feasible."""
        return self.metrics.all_feasible

    def to_dict(self, include_trace: bool = False) -> Dict:
        """JSON-ready plain-dict form (numpy scalars coerced to Python types).

        The event trace is summarized by its length unless ``include_trace``
        is set (traces can be large); with it, the full event list round-trips
        through :meth:`from_dict`.
        """
        payload = {
            "metrics": self.metrics.to_dict(),
            "rejected_demands": int(self.rejected_demands),
            "stopped_early": bool(self.stopped_early),
            "feasible": bool(self.feasible),
            "trace_events": len(self.trace),
        }
        if include_trace:
            payload["trace"] = self.trace.to_records()
        return payload

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild from :meth:`to_dict` output.

        The trace is reconstructed when the payload embeds one (``to_dict``
        with ``include_trace=True``); otherwise it is left empty.
        """
        records = data.get("trace")
        trace = (
            SimulationTrace.from_records(records)
            if records is not None
            else SimulationTrace()
        )
        return cls(
            metrics=SimulationMetrics.from_dict(data["metrics"]),
            trace=trace,
            rejected_demands=int(data["rejected_demands"]),
            stopped_early=bool(data["stopped_early"]),
        )


class VodSimulator:
    """Round-based simulator of a fully distributed VoD system.

    Parameters
    ----------
    allocation:
        The static stripe allocation to exercise.
    mu:
        Swarm-growth bound the workload is supposed to respect (violations
        are recorded, not enforced).
    scheduler:
        A :class:`~repro.core.preloading.PreloadingScheduler` (homogeneous
        strategy) or :class:`~repro.core.heterogeneous.RelayedPreloadingScheduler`
        (heterogeneous relay strategy).  Defaults to the homogeneous one.
    compensation_plan:
        When using the relay strategy, the plan whose reserved upload must
        be subtracted from the matching capacities.
    record_connections:
        Whether to record one :class:`ConnectionEvent` per wired connection
        per round (verbose; useful in tests, heavy for large runs).
    stop_on_infeasible:
        Stop the run at the first infeasible round.
    churn:
        Optional :class:`~repro.sim.churn.ChurnSchedule`.  Offline boxes
        neither demand videos nor serve any stripe while offline (their
        upload capacity is zeroed in the matching); their stored replicas
        become available again when they come back.
    warm_start:
        Carry each round's request→box assignment into the next round as
        the seed of an incremental rematch: surviving pairs are validated
        (box still possesses the data, still has capacity, not offline)
        and only the delta is re-solved.  Each round's matched count and
        feasibility are identical to a cold solve of the same state (the
        kernel always returns a maximum matching), so fully feasible runs
        agree on every request-level observable: per-round matched
        counts, service rounds, startup delays, metrics.  *Which* box
        serves each request may still differ (maximum matchings are not
        unique), so connection-level records (``record_connections``
        events, per-box loads) are solver- and warm-start-dependent.  In
        overload regimes a partially matched round may serve a different
        (equally sized) request subset than a cold solve would, after
        which the two trajectories can diverge — as they also do between
        different cold solvers.  Experiments comparing trajectories at
        either level should pin both ``warm_start`` and ``solver``.
    solver:
        Matching kernel: a name handed to :class:`ConnectionMatcher` —
        ``"hopcroft_karp"`` (default) or one of the max-flow oracles
        (``"dinic"``, ``"push_relabel"``, ``"edmonds_karp"``) — or a
        callable ``f(upload_slots) -> Solver`` (what the
        :mod:`repro.api` registry stores), letting registered custom
        solvers plug in.
    round_observer:
        Optional callable invoked with a :class:`RoundObservation` after
        every round's matching, while the possession index still holds
        this round's state.  Used by the differential solver oracle and
        by custom per-round instrumentation; must not mutate the system.
    trace_level:
        ``"full"`` (default) records every demand, request and playback
        event; ``"lean"`` records only infeasibility markers (without the
        per-request witness payload), which bounds the trace's memory at
        scale — the 100k-box tiers and the soak runs use it.  Metrics are
        identical either way.
    """

    def __init__(
        self,
        allocation: Allocation,
        mu: float,
        scheduler: Optional[Union[PreloadingScheduler, RelayedPreloadingScheduler]] = None,
        compensation_plan: Optional[CompensationPlan] = None,
        record_connections: bool = False,
        stop_on_infeasible: bool = False,
        churn: Optional[ChurnSchedule] = None,
        warm_start: bool = True,
        solver: Union[str, Callable[[np.ndarray], "ConnectionMatcher"]] = "hopcroft_karp",
        round_observer: Optional[Callable[[RoundObservation], None]] = None,
        trace_level: str = "full",
        incremental_matching: bool = True,
    ):
        self._allocation = allocation
        self._catalog = allocation.catalog
        self._population = allocation.population
        self._mu = mu
        self._scheduler = scheduler or PreloadingScheduler(self._catalog)
        self._plan = compensation_plan
        self._record_connections = record_connections
        self._stop_on_infeasible = stop_on_infeasible
        self._churn = churn
        self._warm_start = warm_start
        self._incremental_matching = bool(incremental_matching)
        self._round_observer = round_observer
        if trace_level not in ("full", "lean"):
            raise ValueError(
                f"trace_level must be 'full' or 'lean', got {trace_level!r}"
            )
        self._trace_level = trace_level
        self._full_trace = trace_level == "full"

        c = self._catalog.num_stripes_per_video
        upload_slots = self._population.upload_slots(c)
        if compensation_plan is not None:
            reserved = np.floor(compensation_plan.reserved_upload * c + 1e-9).astype(np.int64)
            upload_slots = np.maximum(upload_slots - reserved, 0)
        if callable(solver):
            self._matcher = solver(upload_slots)
        else:
            self._matcher = ConnectionMatcher(upload_slots, solver=solver)
        self._upload_capacity_total = int(upload_slots.sum())

        duration = self._catalog.duration
        self._possession = PossessionIndex(allocation, cache_window=duration)
        self._pool = ActiveRequestPool(duration)
        self._swarms = SwarmRegistry(mu, duration)
        self._clock = RoundClock()
        self._trace = SimulationTrace()
        self._metrics = MetricsCollector(self._population.n)

        #: box -> round until which it is busy playing (exclusive).
        self._busy_until = np.zeros(self._population.n, dtype=np.int64)
        # Demand log, struct-of-arrays: index -> (time, box, video, started).
        self._demand_count = 0
        self._demand_time = np.empty(64, dtype=np.int64)
        self._demand_box = np.empty(64, dtype=np.int64)
        self._demand_video = np.empty(64, dtype=np.int64)
        self._demand_started = np.empty(64, dtype=bool)
        #: (box, video) -> most recent demand index; resolves postponed
        #: requests back to their demand in O(1) instead of a log scan.
        self._demand_last: Dict[Tuple[int, int], int] = {}
        #: (relay box, video) -> most recent relayed demand index.
        self._demand_last_relay: Dict[Tuple[int, int], int] = {}
        self._rejected_demands = 0
        self._playbacks_started = 0
        self._degraded_rounds = 0
        self._last_round_degraded = False
        self._repair_fallback_rounds = 0
        self._last_round_repair_fallback = False

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def allocation(self) -> Allocation:
        """The allocation under test."""
        return self._allocation

    @property
    def catalog(self):
        """The video catalog (may grow through :meth:`add_videos`)."""
        return self._catalog

    @property
    def population(self):
        """The box population (may grow through :meth:`join_boxes`)."""
        return self._population

    @property
    def matcher(self) -> ConnectionMatcher:
        """The per-round connection matcher."""
        return self._matcher

    @property
    def scheduler(self) -> Union[PreloadingScheduler, RelayedPreloadingScheduler]:
        """The preloading scheduler in use."""
        return self._scheduler

    @property
    def rejected_demands(self) -> int:
        """Demands rejected so far because the box was busy playing."""
        return self._rejected_demands

    @property
    def playbacks_started(self) -> int:
        """Playbacks started so far (counted even under ``trace_level='lean'``)."""
        return self._playbacks_started

    @property
    def trace_level(self) -> str:
        """The event-trace verbosity: ``"full"`` or ``"lean"``."""
        return self._trace_level

    @property
    def last_round_stats(self):
        """Statistics of the most recently completed round (``None`` before any)."""
        return self._metrics.last_round

    @property
    def rounds_completed(self) -> int:
        """Number of rounds executed so far."""
        return self._metrics.rounds_recorded

    @property
    def last_round_degraded(self) -> bool:
        """Whether the last round fell back to the degraded solver path."""
        return getattr(self, "_last_round_degraded", False)

    @property
    def degraded_rounds(self) -> int:
        """Number of rounds solved through the degraded fallback so far."""
        return getattr(self, "_degraded_rounds", 0)

    @property
    def last_round_repair_fallback(self) -> bool:
        """Whether the last round's incremental repair fell back to the full kernel."""
        return getattr(self, "_last_round_repair_fallback", False)

    @property
    def repair_fallback_rounds(self) -> int:
        """Number of rounds whose repair budget forced a full re-solve so far."""
        return getattr(self, "_repair_fallback_rounds", 0)

    @property
    def incremental_matching(self) -> bool:
        """Whether the incremental delta-repair matching path is enabled."""
        return getattr(self, "_incremental_matching", True)

    def set_incremental_matching(self, enabled: bool) -> None:
        """Toggle the incremental matching path (benchmarks, A/B tests).

        Disabling also drops the matcher's pair bookkeeping so a later
        re-enable bootstraps from a clean full solve.
        """
        self._incremental_matching = bool(enabled)
        reset = getattr(self._matcher, "reset_incremental_state", None)
        if reset is not None:
            reset()

    def set_solver_budget(self, budget) -> None:
        """Set (or clear, with ``None``) the matcher's per-round augmentation budget.

        Only meaningful for matchers exposing ``set_augmentation_budget``
        (the default :class:`~repro.core.matching.ConnectionMatcher`);
        a custom matcher without the hook raises ``RuntimeError``.
        """
        setter = getattr(self._matcher, "set_augmentation_budget", None)
        if setter is None:
            raise RuntimeError(
                "the configured matcher does not support augmentation budgets"
            )
        setter(budget)

    @property
    def trace(self) -> SimulationTrace:
        """The (growing) event trace."""
        return self._trace

    @property
    def swarms(self) -> SwarmRegistry:
        """The swarm registry."""
        return self._swarms

    @property
    def possession(self) -> PossessionIndex:
        """The possession index (allocation + caches)."""
        return self._possession

    @property
    def now(self) -> int:
        """Current round."""
        return self._clock.now

    def free_boxes(self, time: int) -> np.ndarray:
        """Boxes not playing any video (and not offline) at round ``time``."""
        mask = self._busy_until <= time
        offline = self._offline_array(time)
        if offline.size:
            mask[offline] = False
        return np.flatnonzero(mask).astype(np.int64)

    def _offline_array(self, time: int) -> np.ndarray:
        """Sorted array of boxes offline at round ``time`` (empty without churn)."""
        if self._churn is None:
            return np.empty(0, dtype=np.int64)
        return self._churn.offline_array(time)

    def offline_boxes(self, time: int) -> set:
        """Boxes offline at round ``time`` under the churn schedule (empty without churn)."""
        return self._churn.offline_boxes(time) if self._churn is not None else set()

    def is_box_busy(self, box_id: int, time: int) -> bool:
        """Whether ``box_id`` is still playing a video at round ``time``."""
        if not 0 <= box_id < self._busy_until.size:
            raise ValueError(f"box_id {box_id} out of range")
        return bool(self._busy_until[box_id] > time)

    def is_box_offline(self, box_id: int, time: int) -> bool:
        """Whether ``box_id`` is offline at round ``time`` under churn."""
        if self._churn is None:
            return False
        return self._churn.is_offline(int(box_id), time)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, workload: DemandGenerator, num_rounds: int) -> SimulationResult:
        """Run the simulation for ``num_rounds`` rounds.

        This is a thin loop over :meth:`step` — the stepwise session API of
        :mod:`repro.api` drives the exact same per-round path, so batch and
        stepwise executions of the same workload are bit-identical.
        """
        check_positive_integer(num_rounds, "num_rounds")
        stopped_early = False
        for _ in range(num_rounds):
            feasible = self.step(workload)
            if not feasible and self._stop_on_infeasible:
                stopped_early = True
                break
        return self.result(stopped_early=stopped_early)

    def step(self, workload: DemandGenerator) -> bool:
        """Execute one round against ``workload``; returns its feasibility."""
        return self._step(workload)

    def result(self, stopped_early: bool = False) -> SimulationResult:
        """Aggregate everything executed so far into a :class:`SimulationResult`.

        Non-destructive: the engine can keep stepping afterwards, and
        ``result()`` can be called again.
        """
        self._metrics.record_swarm_violations(len(self._swarms.violations))
        return SimulationResult(
            metrics=self._metrics.finalize(),
            trace=self._trace,
            rejected_demands=self._rejected_demands,
            stopped_early=stopped_early,
        )

    # ------------------------------------------------------------------ #
    # One round
    # ------------------------------------------------------------------ #
    def _step(self, workload: DemandGenerator) -> bool:
        time = self._clock.now
        self._possession.evict_before(time)
        keep_mask = self._drop_expired_requests(time)
        survivors = len(self._pool)

        # 1. Demand arrivals.
        view = SystemView(
            time=time,
            catalog=self._catalog,
            allocation=self._allocation,
            population=self._population,
            swarms=self._swarms,
            free_boxes=self.free_boxes(time),
        )
        # The paper's homogeneous preloading strategy flows through the
        # batched array paths; relayed/custom schedulers and full traces
        # keep the object path.  All produce identical requests in
        # identical order.  Workloads exposing the array protocol skip
        # Demand materialization entirely (steps 1+2 fused on arrays);
        # the protocol guarantees the same arrivals from the same random
        # stream as the object path, so the choice is digest-neutral.
        batched_scheduler = type(self._scheduler) is PreloadingScheduler and not (
            self._scheduler.skip_locally_stored
        )
        demand_arrays = None
        if batched_scheduler and not self._full_trace and self._plan is None:
            supplier = getattr(workload, "demand_arrays_for_round", None)
            if supplier is not None:
                demand_arrays = supplier(view)
        if demand_arrays is not None:
            # 1+2. Demand arrivals and request generation, array path.
            demand_indices, demand_boxes, demand_videos = self._accept_demand_arrays(
                demand_arrays[0], demand_arrays[1], time
            )
            self._metrics.record_demands(int(demand_indices.size))
            new_request_count = self._generate_requests_arrays(
                demand_videos, demand_boxes, demand_indices, time
            )
        else:
            # 1. Demand arrivals.
            demands = workload.demands_for_round(view)
            accepted = self._accept_demands(demands, time)
            self._metrics.record_demands(len(accepted))
            # 2. Request generation (preload now, postponed queued earlier).
            if batched_scheduler:
                new_request_count = self._generate_requests_batched(accepted, time)
            else:
                new_request_count = self._generate_requests_objects(accepted, time)
        self._metrics.record_requests(new_request_count)

        # 3. Connection matching over all active requests.  Offline boxes
        # cannot serve: their whole capacity is marked busy for this round.
        request_set = self._pool.request_set()
        busy_slots = None
        offline = self._offline_array(time)
        if offline.size:
            busy_slots = np.zeros(self._population.n, dtype=np.int64)
            busy_slots[offline] = self._matcher.upload_slots[offline]
        warm = None
        if self._warm_start and len(self._pool):
            warm = self._pool.assigned_snapshot()
        delta = None
        if (
            warm is not None
            and getattr(self, "_incremental_matching", True)
            and isinstance(self._matcher, ConnectionMatcher)
        ):
            delta = MatchDelta(
                keep_mask=keep_mask, num_new=len(self._pool) - survivors
            )
        if delta is not None:
            matching = self._matcher.match(
                request_set,
                self._possession,
                time,
                busy_slots=busy_slots,
                warm_start=warm,
                delta=delta,
            )
        else:
            matching = self._matcher.match(
                request_set,
                self._possession,
                time,
                busy_slots=busy_slots,
                warm_start=warm,
            )
        self._last_round_degraded = bool(getattr(matching, "degraded", False))
        if self._last_round_degraded:
            self._degraded_rounds += 1
        self._last_round_repair_fallback = bool(
            getattr(matching, "repair_fallback", False)
        )
        if self._last_round_repair_fallback:
            self._repair_fallback_rounds = (
                getattr(self, "_repair_fallback_rounds", 0) + 1
            )
        self._pool.apply_matching(matching.assignment, time)

        if self._record_connections:
            for idx in np.flatnonzero(matching.assignment >= 0).tolist():
                request = request_set[idx]
                self._trace.record(
                    ConnectionEvent(
                        time=time,
                        server_box=int(matching.assignment[idx]),
                        client_box=request.box_id,
                        stripe_id=request.stripe_id,
                    )
                )

        if not matching.feasible:
            witness = None
            if self._full_trace and matching.obstruction_witness is not None:
                witness = tuple(
                    (
                        request_set[idx].stripe_id,
                        request_set[idx].request_time,
                        request_set[idx].box_id,
                    )
                    for idx in matching.obstruction_witness
                )
            self._trace.record(
                InfeasibilityEvent(
                    time=time,
                    unmatched=len(request_set) - matching.matched,
                    witness_requests=witness,
                )
            )

        self._metrics.record_round(
            time=time,
            active_requests=len(request_set),
            new_requests=new_request_count,
            matched=matching.matched,
            feasible=matching.feasible,
            box_load=matching.box_load,
            upload_capacity=self._upload_capacity_total,
        )

        if self._round_observer is not None:
            self._round_observer(
                RoundObservation(
                    time=time,
                    request_set=request_set,
                    matching=matching,
                    possession=self._possession,
                )
            )

        # 4. Playback starts.
        self._detect_playback_starts(time)

        self._clock.advance()
        return matching.feasible

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _drop_expired_requests(self, time: int) -> Optional[np.ndarray]:
        """Expire pool rows at the start of a round; returns the keep mask.

        Overridable: the sharded engine keeps per-row shard bookkeeping
        parallel to the pool and compacts it under the same mask.
        """
        return self._pool.drop_expired_keeping(time)

    def _generate_requests_batched(
        self, accepted: List[Tuple[int, Demand]], time: int
    ) -> int:
        """Array-path request generation (plain preloading scheduler)."""
        pre_stripes, pre_boxes, pre_demand = self._scheduler.on_demands_batch(accepted)
        return self._finish_request_generation(
            pre_stripes, pre_boxes, pre_demand, time
        )

    def _generate_requests_arrays(
        self,
        video_ids: np.ndarray,
        box_ids: np.ndarray,
        demand_indices: np.ndarray,
        time: int,
    ) -> int:
        """Request generation from accepted-demand arrays (no Demand objects)."""
        pre_stripes, pre_boxes, pre_demand = self._scheduler.on_demand_arrays(
            video_ids, box_ids, demand_indices, time
        )
        return self._finish_request_generation(
            pre_stripes, pre_boxes, pre_demand, time
        )

    def _finish_request_generation(
        self,
        pre_stripes: np.ndarray,
        pre_boxes: np.ndarray,
        pre_demand: np.ndarray,
        time: int,
    ) -> int:
        """Shared tail of the batched request paths: postponed pops + pool."""
        post_stripes, post_boxes, post_demand = self._scheduler.due_arrays(time)
        if post_demand.size and (post_demand < 0).any():
            # Blocks queued through the scheduler's object API carry no
            # demand index; resolve them against the demand log.
            post_demand = post_demand.copy()
            for k in np.flatnonzero(post_demand < 0).tolist():
                found = self._find_demand_index(
                    int(post_boxes[k]), int(post_stripes[k]), time
                )
                post_demand[k] = -1 if found is None else found
        self._pool.extend_from_arrays(pre_stripes, time, pre_boxes, pre_demand, True)
        self._pool.extend_from_arrays(post_stripes, time, post_boxes, post_demand, False)
        self._possession.record_downloads(pre_stripes, pre_boxes, time)
        self._possession.record_downloads(post_stripes, post_boxes, time)
        if self._full_trace:
            for stripes, preload in ((pre_stripes, True), (post_stripes, False)):
                boxes = pre_boxes if preload else post_boxes
                for s, b in zip(stripes.tolist(), boxes.tolist()):
                    self._trace.record(
                        RequestEvent(
                            time=time, box_id=b, stripe_id=s, is_preload=preload
                        )
                    )
        return int(pre_stripes.size + post_stripes.size)

    def _generate_requests_objects(
        self, accepted: List[Tuple[int, Demand]], time: int
    ) -> int:
        """Object-path request generation (relayed/custom schedulers)."""
        new_requests = []
        for demand_index, demand in accepted:
            immediate = self._scheduler.on_demand(demand)
            for request in immediate:
                new_requests.append((demand_index, request))
        for request in self._scheduler.requests_due(time):
            demand_index = self._find_demand_index(request.box_id, request.stripe_id, time)
            new_requests.append((demand_index, request))

        # Relay-cache events of the heterogeneous strategy.
        if isinstance(self._scheduler, RelayedPreloadingScheduler):
            for relay_box, stripe_id in self._scheduler.relay_cache_events_due(time):
                self._possession.record_relay_cache(stripe_id, relay_box)

        for demand_index, request in new_requests:
            self._pool.add(request, demand_index)
            self._possession.record_download(
                request.stripe_id, request.box_id, request.request_time
            )
            if self._full_trace:
                self._trace.record(
                    RequestEvent(
                        time=time,
                        box_id=request.box_id,
                        stripe_id=request.stripe_id,
                        is_preload=request.is_preload,
                    )
                )
        return len(new_requests)

    def _append_demand(self, demand: Demand) -> int:
        """Append one accepted demand to the struct-of-arrays demand log."""
        ensure_column_capacity(
            self,
            ("_demand_time", "_demand_box", "_demand_video", "_demand_started"),
            self._demand_count,
            self._demand_count + 1,
        )
        index = self._demand_count
        self._demand_time[index] = demand.time
        self._demand_box[index] = demand.box_id
        self._demand_video[index] = demand.video_id
        self._demand_started[index] = False
        self._demand_count = index + 1
        return index

    def _accept_demands(
        self, demands: Sequence[Demand], time: int
    ) -> List[Tuple[int, Demand]]:
        accepted: List[Tuple[int, Demand]] = []
        for demand in demands:
            if demand.time != time:
                raise ValueError(
                    f"workload produced a demand for round {demand.time} during round {time}"
                )
            if demand.video_id >= self._catalog.num_videos:
                raise ValueError(
                    f"demand for video {demand.video_id} outside catalog of size "
                    f"{self._catalog.num_videos}"
                )
            if self._busy_until[demand.box_id] > time:
                self._rejected_demands += 1
                continue
            demand_index = self._append_demand(demand)
            self._demand_last[(demand.box_id, demand.video_id)] = demand_index
            if self._plan is not None:
                relay = self._plan.relay(demand.box_id)
                if relay is not None:
                    self._demand_last_relay[(relay, demand.video_id)] = demand_index
            self._busy_until[demand.box_id] = time + self._catalog.duration
            self._swarms.enter(demand.video_id, demand.box_id, time)
            if self._full_trace:
                self._trace.record(
                    DemandEvent(time=time, box_id=demand.box_id, video_id=demand.video_id)
                )
            accepted.append((demand_index, demand))
        return accepted

    def _accept_demand_arrays(
        self, box_ids: np.ndarray, video_ids: np.ndarray, time: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array-path :meth:`_accept_demands` over one round's arrivals.

        Applies the same admission rule (busy boxes rejected; a box's
        second demand in one round rejected because the first made it
        busy) and the same side effects — demand log, last-demand map,
        busy horizon, swarm entries with growth-bound checks — as the
        object path.  Returns ``(demand_indices, box_ids, video_ids)`` of
        the accepted arrivals, in arrival order.  Callers gate on lean
        trace and ``plan is None``.
        """
        n = int(box_ids.size)
        if n and int(video_ids.max()) >= self._catalog.num_videos:
            bad = int(video_ids[video_ids >= self._catalog.num_videos][0])
            raise ValueError(
                f"demand for video {bad} outside catalog of size "
                f"{self._catalog.num_videos}"
            )
        accept = admission_mask(self._busy_until, box_ids, time)
        kept = int(accept.sum())
        self._rejected_demands += n - kept
        if kept == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        boxes = box_ids[accept] if kept != n else box_ids
        videos = video_ids[accept] if kept != n else video_ids

        ensure_column_capacity(
            self,
            ("_demand_time", "_demand_box", "_demand_video", "_demand_started"),
            self._demand_count,
            self._demand_count + kept,
        )
        lo = self._demand_count
        hi = lo + kept
        self._demand_time[lo:hi] = time
        self._demand_box[lo:hi] = boxes
        self._demand_video[lo:hi] = videos
        self._demand_started[lo:hi] = False
        self._demand_count = hi
        demand_last = self._demand_last
        for offset, key in enumerate(zip(boxes.tolist(), videos.tolist())):
            demand_last[key] = lo + offset
        self._busy_until[boxes] = time + self._catalog.duration
        self._swarms.enter_batch(videos, boxes, time)
        return np.arange(lo, hi, dtype=np.int64), boxes, videos

    def _find_demand_index(self, box_id: int, stripe_id: int, time: int) -> Optional[int]:
        """Find the most recent demand of ``box_id`` matching the stripe's video.

        Homogeneous strategy: the request is made by the demanding box.
        Relayed strategy: it may be made by the relay, so a relay match is
        also accepted; the *most recent* of the two candidates wins, which
        is exactly what the historical backwards log scan returned.
        """
        video_id = self._catalog.video_of_stripe(stripe_id)
        direct = self._demand_last.get((box_id, video_id), -1)
        relayed = self._demand_last_relay.get((box_id, video_id), -1)
        best = max(direct, relayed)
        return None if best < 0 else best

    def _detect_playback_starts(
        self, time: int
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Emit a playback-start event once all of a demand's stripes were served.

        Returns the ``(demand_indices, playback_rounds, startup_delays)``
        hits (``None`` when nothing starts) so engine subclasses — the
        event-driven mode in :mod:`repro.events` — can post-process the
        round's playback starts without re-deriving them.
        """
        if not len(self._pool):
            return None
        hits = detect_playback_starts(
            self._pool.demand_indices,
            self._pool.first_matched,
            self._demand_count,
            self._demand_time,
            self._demand_started,
            self._catalog.num_stripes_per_video,
            time,
        )
        if hits is None:
            return None
        ready_idx, playback_rounds, delays = hits
        self._playbacks_started += int(ready_idx.size)
        self._metrics.record_startup_delays(delays)
        if self._full_trace:
            for k in range(ready_idx.size):
                demand_index = int(ready_idx[k])
                self._trace.record(
                    PlaybackStartEvent(
                        time=int(playback_rounds[k]),
                        box_id=int(self._demand_box[demand_index]),
                        video_id=int(self._demand_video[demand_index]),
                        startup_delay=int(delays[k]),
                    )
                )
        return hits

    # ------------------------------------------------------------------ #
    # Live reconfiguration (the repro.api session mutation hooks)
    # ------------------------------------------------------------------ #
    def _check_mutable(self, operation: str) -> None:
        if self._plan is not None or isinstance(
            self._scheduler, RelayedPreloadingScheduler
        ):
            raise RuntimeError(
                f"{operation} is not supported on relayed (compensation-plan) "
                "systems: the plan's reserved upload is computed statically"
            )

    def set_upload_capacity(self, box_id: int, upload: float) -> int:
        """Change the upload capacity of ``box_id`` to ``upload`` (in bitrates).

        Takes effect from the next round's matching; returns the box's new
        per-round stripe budget ``⌊upload·c⌋``.  The nominal population
        object keeps its original value — this changes the serving capacity
        the matcher enforces, the operational analogue of a bandwidth
        reconfiguration.
        """
        self._check_mutable("set_upload_capacity")
        if not 0 <= box_id < self._population.n:
            raise ValueError(f"box_id {box_id} out of range")
        if upload < 0:
            raise ValueError(f"upload must be non-negative, got {upload}")
        c = self._catalog.num_stripes_per_video
        slots = int(np.floor(float(upload) * c + 1e-9))
        new_slots = self._matcher.upload_slots.copy()
        new_slots[box_id] = slots
        self._matcher.update_upload_slots(new_slots)
        self._upload_capacity_total = int(new_slots.sum())
        return slots

    def join_boxes(
        self, uploads: Sequence[float], storages: Sequence[float]
    ) -> List[int]:
        """Add new boxes to the live system; returns their identifiers.

        Joining boxes start with empty storage (no static replicas — they
        acquire data through their playback caches) and full upload
        capacity ``⌊u_b·c⌋``, available from the next round.
        """
        self._check_mutable("join_boxes")
        uploads_arr = np.asarray(uploads, dtype=np.float64)
        storages_arr = np.asarray(storages, dtype=np.float64)
        if uploads_arr.ndim != 1 or uploads_arr.size == 0:
            raise ValueError("uploads must be a non-empty 1-D sequence")
        if uploads_arr.shape != storages_arr.shape:
            raise ValueError("uploads and storages must have the same length")
        old_n = self._population.n
        from repro.core.parameters import BoxPopulation

        population = BoxPopulation(
            np.concatenate([self._population.uploads, uploads_arr]),
            np.concatenate([self._population.storages, storages_arr]),
        )
        allocation = Allocation(
            catalog=self._catalog,
            population=population,
            replicas_per_stripe=self._allocation.replicas_per_stripe,
            replica_box=self._allocation.replica_box,
            scheme=self._allocation.scheme,
        )
        self._population = population
        self._allocation = allocation
        self._possession.set_allocation(allocation)

        c = self._catalog.num_stripes_per_video
        new_slots = np.floor(uploads_arr * c + 1e-9).astype(np.int64)
        self._matcher.update_upload_slots(
            np.concatenate([self._matcher.upload_slots, new_slots])
        )
        self._upload_capacity_total = int(self._matcher.upload_slots.sum())
        self._busy_until = np.concatenate(
            [self._busy_until, np.zeros(uploads_arr.size, dtype=np.int64)]
        )
        self._metrics.grow(population.n)
        return list(range(old_n, population.n))

    def add_videos(self, num_videos: int, random_state=None) -> List[int]:
        """Extend the catalog by ``num_videos`` new videos; returns their ids.

        The new stripes receive the allocation's replication factor ``k``,
        placed uniformly at random over the population's *remaining* storage
        slots (the same slot model as the permutation scheme, restricted to
        free capacity).  Raises :class:`AllocationError` when the free
        storage cannot host ``num_videos·c·k`` more replicas.
        """
        self._check_mutable("add_videos")
        check_positive_integer(num_videos, "num_videos")
        # Validate every precondition before mutating anything: a failure
        # below this block would otherwise leave the engine torn between
        # the old and the new catalog.
        catalog_updater = getattr(self._scheduler, "update_catalog", None)
        if catalog_updater is None:
            raise RuntimeError(
                "add_videos requires a scheduler with update_catalog(); "
                f"{type(self._scheduler).__name__} does not support live "
                "catalog growth"
            )
        from repro.core.video import Catalog
        from repro.util.rng import as_generator

        old_m = self._catalog.num_videos
        c = self._catalog.num_stripes_per_video
        k = self._allocation.replicas_per_stripe
        needed = num_videos * c * k
        free = np.maximum(
            self._population.storage_slots(c) - self._allocation.box_loads(), 0
        )
        total_free = int(free.sum())
        if needed > total_free:
            raise AllocationError(
                f"not enough free storage: {needed} new replicas requested but "
                f"only {total_free} free slots remain"
            )
        slot_owner = np.repeat(np.arange(self._population.n, dtype=np.int64), free)
        gen = as_generator(random_state)
        chosen = gen.permutation(slot_owner.size)[:needed]
        new_replicas = slot_owner[chosen]

        catalog = Catalog(
            num_videos=old_m + num_videos,
            num_stripes=c,
            duration=self._catalog.duration,
        )
        allocation = Allocation(
            catalog=catalog,
            population=self._population,
            replicas_per_stripe=k,
            replica_box=np.concatenate([self._allocation.replica_box, new_replicas]),
            scheme=self._allocation.scheme,
        )
        catalog_updater(catalog)  # validates growth before any engine mutation
        self._catalog = catalog
        self._allocation = allocation
        self._possession.refresh_allocation(allocation)
        return list(range(old_m, old_m + num_videos))
