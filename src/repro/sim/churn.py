"""Box churn / failure injection.

The paper assumes boxes are "usually always powered on", but any practical
deployment sees churn: boxes going offline take both their upload capacity
and their stored replicas out of the system for a while.  This module adds
a simple churn model to the simulator (an extension, not part of the
paper's analysis):

* :class:`ChurnSchedule` — a deterministic list of outage intervals
  ``(box_id, start_round, end_round)``;
* :func:`random_churn_schedule` — draw outages with a given per-round
  failure probability and outage duration;
* the engine consults :meth:`ChurnSchedule.offline_boxes` every round and
  (i) removes offline boxes from the demand-eligible set and (ii) zeroes
  their upload capacity in the connection matching, which is exactly the
  effect of an unplugged set-top box.

Because the random allocation stores ``k`` replicas of every stripe on
independent boxes, the system tolerates moderate churn without any repair
mechanism — the robustness experiment (`benchmarks/bench_churn_robustness.py`)
measures how feasibility degrades as the offline fraction grows, i.e. the
empirical slack left by the expander property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.util.rng import RandomState, as_generator
from repro.util.validation import (
    check_non_negative_integer,
    check_positive_integer,
    check_probability,
)

__all__ = ["Outage", "ChurnSchedule", "random_churn_schedule"]


@dataclass(frozen=True, order=True)
class Outage:
    """One outage: ``box_id`` is offline during rounds ``[start, end)``."""

    box_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        check_non_negative_integer(self.box_id, "box_id")
        check_non_negative_integer(self.start, "start")
        check_non_negative_integer(self.end, "end")
        if self.end <= self.start:
            raise ValueError(
                f"outage end ({self.end}) must be after its start ({self.start})"
            )

    def covers(self, time: int) -> bool:
        """Whether the box is offline at round ``time``."""
        return self.start <= time < self.end


class ChurnSchedule:
    """A set of box outages consulted by the simulator each round.

    The outage table is mirrored into box/start/end columns so the
    per-round "who is offline" query is a vectorized mask instead of an
    object scan (the engine asks several times per round); the most recent
    round's answer is cached.
    """

    def __init__(self, outages: Iterable[Outage] = ()):
        self._outages: List[Outage] = sorted(outages)
        self._columns: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._cached_time: Optional[int] = None
        self._cached_offline: np.ndarray = np.empty(0, dtype=np.int64)

    @property
    def outages(self) -> Tuple[Outage, ...]:
        """All outages, sorted by box then time."""
        return tuple(self._outages)

    def __len__(self) -> int:
        return len(self._outages)

    def add(self, outage: Outage) -> None:
        """Add an outage to the schedule."""
        self._outages.append(outage)
        self._outages.sort()
        self._columns = None
        self._cached_time = None

    def _outage_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._columns is None:
            n = len(self._outages)
            boxes = np.fromiter((o.box_id for o in self._outages), dtype=np.int64, count=n)
            starts = np.fromiter((o.start for o in self._outages), dtype=np.int64, count=n)
            ends = np.fromiter((o.end for o in self._outages), dtype=np.int64, count=n)
            self._columns = (boxes, starts, ends)
        return self._columns

    def offline_array(self, time: int) -> np.ndarray:
        """Sorted distinct boxes offline at round ``time`` (cached)."""
        check_non_negative_integer(time, "time")
        if self._cached_time == time:
            return self._cached_offline
        boxes, starts, ends = self._outage_columns()
        offline = np.unique(boxes[(starts <= time) & (time < ends)])
        self._cached_time = time
        self._cached_offline = offline
        return offline

    def offline_boxes(self, time: int) -> Set[int]:
        """Boxes offline at round ``time``."""
        return set(self.offline_array(time).tolist())

    def is_offline(self, box_id: int, time: int) -> bool:
        """Whether ``box_id`` is offline at round ``time``."""
        boxes, starts, ends = self._outage_columns()
        return bool(np.any((boxes == box_id) & (starts <= time) & (time < ends)))

    def offline_fraction(self, time: int, num_boxes: int) -> float:
        """Fraction of the population offline at round ``time``."""
        check_positive_integer(num_boxes, "num_boxes")
        return len(self.offline_boxes(time)) / num_boxes

    def max_concurrent_outages(self, horizon: int) -> int:
        """Largest number of simultaneously offline boxes in ``[0, horizon)``."""
        check_positive_integer(horizon, "horizon")
        return max((len(self.offline_boxes(t)) for t in range(horizon)), default=0)


def random_churn_schedule(
    num_boxes: int,
    horizon: int,
    failure_probability: float,
    outage_duration: int,
    random_state: RandomState = None,
    protected_boxes: Sequence[int] = (),
) -> ChurnSchedule:
    """Draw a random churn schedule.

    Each box independently fails at each round with ``failure_probability``
    (while online) and stays offline for ``outage_duration`` rounds.
    ``protected_boxes`` never fail (useful to model a small always-on core).
    """
    check_positive_integer(num_boxes, "num_boxes")
    check_positive_integer(horizon, "horizon")
    check_probability(failure_probability, "failure_probability")
    check_positive_integer(outage_duration, "outage_duration")
    gen = as_generator(random_state)
    outages: List[Outage] = []
    eligible_base = np.ones(num_boxes, dtype=bool)
    for b in protected_boxes:
        # Out-of-range ids were silently inert under the historical scalar
        # loop (`box in protected` never matched them); keep that contract
        # instead of letting negative ids wrap around.
        if 0 <= int(b) < num_boxes:
            eligible_base[int(b)] = False
    offline_until = np.zeros(num_boxes, dtype=np.int64)
    for t in range(horizon):
        # One batched draw per round consumes the generator stream exactly
        # like the per-box scalar draws did (ascending box order over the
        # online, unprotected boxes), so schedules are bit-identical to the
        # historical loop at any population size.
        eligible = np.flatnonzero(eligible_base & (offline_until <= t))
        if eligible.size == 0:
            continue
        failed = eligible[gen.random(eligible.size) < failure_probability]
        for box in failed.tolist():
            outages.append(Outage(box_id=box, start=t, end=t + outage_duration))
        offline_until[failed] = t + outage_duration
    return ChurnSchedule(outages)
