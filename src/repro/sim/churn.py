"""Box churn / failure injection.

The paper assumes boxes are "usually always powered on", but any practical
deployment sees churn: boxes going offline take both their upload capacity
and their stored replicas out of the system for a while.  This module adds
a simple churn model to the simulator (an extension, not part of the
paper's analysis):

* :class:`ChurnSchedule` — a deterministic list of outage intervals
  ``(box_id, start_round, end_round)``;
* :func:`random_churn_schedule` — draw outages with a given per-round
  failure probability and outage duration;
* the engine consults :meth:`ChurnSchedule.offline_boxes` every round and
  (i) removes offline boxes from the demand-eligible set and (ii) zeroes
  their upload capacity in the connection matching, which is exactly the
  effect of an unplugged set-top box.

Because the random allocation stores ``k`` replicas of every stripe on
independent boxes, the system tolerates moderate churn without any repair
mechanism — the robustness experiment (`benchmarks/bench_churn_robustness.py`)
measures how feasibility degrades as the offline fraction grows, i.e. the
empirical slack left by the expander property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.util.rng import RandomState, as_generator
from repro.util.validation import (
    check_non_negative_integer,
    check_positive_integer,
    check_probability,
)

__all__ = ["Outage", "ChurnSchedule", "random_churn_schedule"]


@dataclass(frozen=True, order=True)
class Outage:
    """One outage: ``box_id`` is offline during rounds ``[start, end)``."""

    box_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        check_non_negative_integer(self.box_id, "box_id")
        check_non_negative_integer(self.start, "start")
        check_non_negative_integer(self.end, "end")
        if self.end <= self.start:
            raise ValueError(
                f"outage end ({self.end}) must be after its start ({self.start})"
            )

    def covers(self, time: int) -> bool:
        """Whether the box is offline at round ``time``."""
        return self.start <= time < self.end


class ChurnSchedule:
    """A set of box outages consulted by the simulator each round."""

    def __init__(self, outages: Iterable[Outage] = ()):
        self._outages: List[Outage] = sorted(outages)

    @property
    def outages(self) -> Tuple[Outage, ...]:
        """All outages, sorted by box then time."""
        return tuple(self._outages)

    def __len__(self) -> int:
        return len(self._outages)

    def add(self, outage: Outage) -> None:
        """Add an outage to the schedule."""
        self._outages.append(outage)
        self._outages.sort()

    def offline_boxes(self, time: int) -> Set[int]:
        """Boxes offline at round ``time``."""
        check_non_negative_integer(time, "time")
        return {o.box_id for o in self._outages if o.covers(time)}

    def is_offline(self, box_id: int, time: int) -> bool:
        """Whether ``box_id`` is offline at round ``time``."""
        return any(o.box_id == box_id and o.covers(time) for o in self._outages)

    def offline_fraction(self, time: int, num_boxes: int) -> float:
        """Fraction of the population offline at round ``time``."""
        check_positive_integer(num_boxes, "num_boxes")
        return len(self.offline_boxes(time)) / num_boxes

    def max_concurrent_outages(self, horizon: int) -> int:
        """Largest number of simultaneously offline boxes in ``[0, horizon)``."""
        check_positive_integer(horizon, "horizon")
        return max((len(self.offline_boxes(t)) for t in range(horizon)), default=0)


def random_churn_schedule(
    num_boxes: int,
    horizon: int,
    failure_probability: float,
    outage_duration: int,
    random_state: RandomState = None,
    protected_boxes: Sequence[int] = (),
) -> ChurnSchedule:
    """Draw a random churn schedule.

    Each box independently fails at each round with ``failure_probability``
    (while online) and stays offline for ``outage_duration`` rounds.
    ``protected_boxes`` never fail (useful to model a small always-on core).
    """
    check_positive_integer(num_boxes, "num_boxes")
    check_positive_integer(horizon, "horizon")
    check_probability(failure_probability, "failure_probability")
    check_positive_integer(outage_duration, "outage_duration")
    protected = {int(b) for b in protected_boxes}
    gen = as_generator(random_state)
    outages: List[Outage] = []
    offline_until = np.zeros(num_boxes, dtype=np.int64)
    for t in range(horizon):
        for box in range(num_boxes):
            if box in protected or offline_until[box] > t:
                continue
            if gen.random() < failure_probability:
                outages.append(Outage(box_id=box, start=t, end=t + outage_duration))
                offline_until[box] = t + outage_duration
    return ChurnSchedule(outages)
