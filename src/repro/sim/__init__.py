"""Round-based discrete-event simulator of the fully distributed VoD system.

The engine (:class:`repro.sim.engine.VodSimulator`) executes the model of
Section 1.1 faithfully: demands arrive per round, the preloading strategy
turns them into dated stripe requests, and a max-flow connection matching
is recomputed every round over all active requests (Section 2.2).  The
supporting modules provide the round clock, swarm tracking with
growth-bound validation, metrics aggregation and a structured event trace.
"""

from repro.sim.churn import ChurnSchedule, Outage, random_churn_schedule
from repro.sim.clock import RoundClock
from repro.sim.engine import RoundObservation, SimulationResult, VodSimulator
from repro.sim.events import (
    ConnectionEvent,
    DemandEvent,
    InfeasibilityEvent,
    PlaybackEndEvent,
    PlaybackStartEvent,
    RequestEvent,
)
from repro.sim.metrics import MetricsCollector, RoundStats, SimulationMetrics
from repro.sim.scheduler import ActiveRequest, ActiveRequestPool
from repro.sim.swarm import SwarmGrowthViolation, SwarmRegistry, max_new_members
from repro.sim.trace import SimulationTrace

__all__ = [
    "ChurnSchedule",
    "Outage",
    "random_churn_schedule",
    "RoundClock",
    "RoundObservation",
    "SimulationResult",
    "VodSimulator",
    "ConnectionEvent",
    "DemandEvent",
    "InfeasibilityEvent",
    "PlaybackEndEvent",
    "PlaybackStartEvent",
    "RequestEvent",
    "MetricsCollector",
    "RoundStats",
    "SimulationMetrics",
    "ActiveRequest",
    "ActiveRequestPool",
    "SwarmGrowthViolation",
    "SwarmRegistry",
    "max_new_members",
    "SimulationTrace",
]
