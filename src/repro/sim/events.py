"""Event records emitted by the simulator.

Every observable state change of a run is captured as a small frozen
dataclass: demand arrivals, stripe requests, wired connections, playback
starts and infeasibility (obstruction) events.  The trace module collects
them; tests and experiments assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "DemandEvent",
    "RequestEvent",
    "ConnectionEvent",
    "PlaybackStartEvent",
    "PlaybackEndEvent",
    "InfeasibilityEvent",
]


@dataclass(frozen=True)
class DemandEvent:
    """A user demand arrived: ``box_id`` wants ``video_id`` at round ``time``."""

    time: int
    box_id: int
    video_id: int


@dataclass(frozen=True)
class RequestEvent:
    """A stripe request was issued (preloading or postponed)."""

    time: int
    box_id: int
    stripe_id: int
    is_preload: bool


@dataclass(frozen=True)
class ConnectionEvent:
    """A connection was wired: ``server_box`` uploads ``stripe_id`` to ``client_box``."""

    time: int
    server_box: int
    client_box: int
    stripe_id: int


@dataclass(frozen=True)
class PlaybackStartEvent:
    """Playback of ``video_id`` started on ``box_id`` at round ``time``.

    ``startup_delay`` is the number of rounds elapsed since the demand.
    """

    time: int
    box_id: int
    video_id: int
    startup_delay: int


@dataclass(frozen=True)
class PlaybackEndEvent:
    """Playback of ``video_id`` on ``box_id`` completed at round ``time``."""

    time: int
    box_id: int
    video_id: int


@dataclass(frozen=True)
class InfeasibilityEvent:
    """The round's connection matching was infeasible (an obstruction occurred).

    ``witness_requests`` holds ``(stripe_id, request_time, box_id)`` triples
    of a request subset violating the Lemma 1 condition, when available.
    """

    time: int
    unmatched: int
    witness_requests: Optional[Tuple[Tuple[int, int, int], ...]] = None
