"""Active-request bookkeeping for the per-round connection scheduler.

The engine re-wires connections every round over the set ``Y`` of *active*
stripe requests (Section 2.2): a request stays active from the round it is
issued until its stripe playback completes ``T`` rounds later.  The pool
below tracks activation, first-service rounds (used to measure start-up
delays) and expiry, and produces the :class:`~repro.core.matching.RequestSet`
handed to the matcher each round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.matching import RequestSet, StripeRequest
from repro.util.validation import check_non_negative_integer, check_positive_integer

__all__ = ["ActiveRequest", "ActiveRequestPool"]


@dataclass
class ActiveRequest:
    """A stripe request together with its service state."""

    request: StripeRequest
    #: Round at which the request was first served by the matching
    #: (``None`` while it has never been matched).
    first_matched_round: Optional[int] = None
    #: Identifier of the demand that generated the request (index into the
    #: engine's demand log), used to detect playback starts.
    demand_index: Optional[int] = None
    #: Box that served the request in the previous round's matching
    #: (``-1`` = unmatched); seeds the warm-started incremental rematch.
    assigned_box: int = -1

    @property
    def is_served(self) -> bool:
        """Whether the request has been matched at least once."""
        return self.first_matched_round is not None


class ActiveRequestPool:
    """The set of currently active stripe requests.

    Parameters
    ----------
    duration:
        Video duration ``T``: a request expires ``T`` rounds after it first
        gets served (or after it was issued, when it was never served).
    """

    def __init__(self, duration: int):
        self._duration = check_positive_integer(duration, "duration")
        self._active: List[ActiveRequest] = []
        self._expired_unserved = 0

    @property
    def duration(self) -> int:
        """Video duration ``T`` used for expiry."""
        return self._duration

    @property
    def active(self) -> List[ActiveRequest]:
        """The currently active requests (mutable records)."""
        return self._active

    @property
    def expired_unserved(self) -> int:
        """Requests that expired without ever being served."""
        return self._expired_unserved

    def __len__(self) -> int:
        return len(self._active)

    def add(self, request: StripeRequest, demand_index: Optional[int] = None) -> ActiveRequest:
        """Activate a request."""
        record = ActiveRequest(request=request, demand_index=demand_index)
        self._active.append(record)
        return record

    def request_set(self) -> RequestSet:
        """The multiset ``Y`` of active requests, in activation order."""
        return RequestSet(record.request for record in self._active)

    def mark_matched(self, indices: List[int], time: int) -> None:
        """Record that the requests at ``indices`` (into the active list) were served at ``time``."""
        check_non_negative_integer(time, "time")
        for idx in indices:
            record = self._active[idx]
            if record.first_matched_round is None:
                record.first_matched_round = time

    def expire(self, current_time: int) -> List[ActiveRequest]:
        """Remove and return the requests whose playback window has elapsed."""
        check_non_negative_integer(current_time, "current_time")
        keep: List[ActiveRequest] = []
        removed: List[ActiveRequest] = []
        for record in self._active:
            anchor = (
                record.first_matched_round
                if record.first_matched_round is not None
                else record.request.request_time
            )
            if current_time - anchor >= self._duration:
                removed.append(record)
                if record.first_matched_round is None:
                    self._expired_unserved += 1
            else:
                keep.append(record)
        self._active = keep
        return removed

    def by_demand(self) -> Dict[int, List[ActiveRequest]]:
        """Group active requests by the demand that generated them."""
        groups: Dict[int, List[ActiveRequest]] = {}
        for record in self._active:
            if record.demand_index is not None:
                groups.setdefault(record.demand_index, []).append(record)
        return groups
