"""Active-request bookkeeping for the per-round connection scheduler.

The engine re-wires connections every round over the set ``Y`` of *active*
stripe requests (Section 2.2): a request stays active from the round it is
issued until its stripe playback completes ``T`` rounds later.  The pool
below tracks activation, first-service rounds (used to measure start-up
delays) and expiry, and produces the :class:`~repro.core.matching.RequestSet`
handed to the matcher each round.

The pool's state is struct-of-arrays: one NumPy column per request field
(stripe, issue time, box, preload flag, first-service round, demand index,
warm-start assignment), kept in activation order.  Everything the engine
does per round — expiry, warm-start extraction, assignment write-back,
playback detection — is a whole-array operation; the object records
(:class:`ActiveRequest`) are materialized views for tests and external
inspection, not the representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.matching import ArrayRequestSet, RequestSet, StripeRequest
from repro.util.soa import ensure_column_capacity
from repro.util.validation import check_non_negative_integer, check_positive_integer

__all__ = ["ActiveRequest", "ActiveRequestPool"]


@dataclass
class ActiveRequest:
    """A stripe request together with its service state.

    A materialized *view* of one pool row: reading is always consistent
    with the pool at materialization time, but mutations do not write back
    (the engine mutates through the pool's array operations).
    """

    request: StripeRequest
    #: Round at which the request was first served by the matching
    #: (``None`` while it has never been matched).
    first_matched_round: Optional[int] = None
    #: Identifier of the demand that generated the request (index into the
    #: engine's demand log), used to detect playback starts.
    demand_index: Optional[int] = None
    #: Box that served the request in the previous round's matching
    #: (``-1`` = unmatched); seeds the warm-started incremental rematch.
    assigned_box: int = -1

    @property
    def is_served(self) -> bool:
        """Whether the request has been matched at least once."""
        return self.first_matched_round is not None


class ActiveRequestPool:
    """The set of currently active stripe requests (struct-of-arrays).

    Parameters
    ----------
    duration:
        Video duration ``T``: a request expires ``T`` rounds after it first
        gets served (or after it was issued, when it was never served).
    """

    def __init__(self, duration: int):
        self._duration = check_positive_integer(duration, "duration")
        capacity = 64
        self._stripe = np.empty(capacity, dtype=np.int64)
        self._rtime = np.empty(capacity, dtype=np.int64)
        self._box = np.empty(capacity, dtype=np.int64)
        self._preload = np.empty(capacity, dtype=bool)
        self._first = np.empty(capacity, dtype=np.int64)
        self._demand = np.empty(capacity, dtype=np.int64)
        self._assigned = np.empty(capacity, dtype=np.int64)
        self._size = 0
        self._expired_unserved = 0

    @property
    def duration(self) -> int:
        """Video duration ``T`` used for expiry."""
        return self._duration

    @property
    def expired_unserved(self) -> int:
        """Requests that expired without ever being served."""
        return self._expired_unserved

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Array views (the engine's hot path; read-only by convention)
    # ------------------------------------------------------------------ #
    @property
    def stripe_ids(self) -> np.ndarray:
        """Per-request stripe identifiers, in activation order."""
        return self._stripe[: self._size]

    @property
    def request_times(self) -> np.ndarray:
        """Per-request issue rounds, in activation order."""
        return self._rtime[: self._size]

    @property
    def box_ids(self) -> np.ndarray:
        """Per-request requesting boxes, in activation order."""
        return self._box[: self._size]

    @property
    def first_matched(self) -> np.ndarray:
        """Per-request first-service round (``-1`` = never served)."""
        return self._first[: self._size]

    @property
    def demand_indices(self) -> np.ndarray:
        """Per-request generating-demand index (``-1`` = none)."""
        return self._demand[: self._size]

    @property
    def assigned_boxes(self) -> np.ndarray:
        """Per-request previous-round server (``-1`` = unmatched)."""
        return self._assigned[: self._size]

    def assigned_snapshot(self) -> np.ndarray:
        """A copy of the warm-start assignment column (safe to hand out)."""
        return self._assigned[: self._size].copy()

    # ------------------------------------------------------------------ #
    # Object views (tests, external inspection)
    # ------------------------------------------------------------------ #
    def _record(self, index: int) -> ActiveRequest:
        first = int(self._first[index])
        demand = int(self._demand[index])
        return ActiveRequest(
            request=StripeRequest(
                stripe_id=int(self._stripe[index]),
                request_time=int(self._rtime[index]),
                box_id=int(self._box[index]),
                is_preload=bool(self._preload[index]),
            ),
            first_matched_round=None if first < 0 else first,
            demand_index=None if demand < 0 else demand,
            assigned_box=int(self._assigned[index]),
        )

    @property
    def active(self) -> List[ActiveRequest]:
        """The currently active requests, materialized in activation order."""
        return [self._record(i) for i in range(self._size)]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    _COLUMNS = ("_stripe", "_rtime", "_box", "_preload", "_first", "_demand", "_assigned")

    def _ensure_capacity(self, extra: int) -> None:
        ensure_column_capacity(self, self._COLUMNS, self._size, self._size + extra)

    def add(self, request: StripeRequest, demand_index: Optional[int] = None) -> ActiveRequest:
        """Activate a request."""
        self._ensure_capacity(1)
        i = self._size
        self._stripe[i] = request.stripe_id
        self._rtime[i] = request.request_time
        self._box[i] = request.box_id
        self._preload[i] = request.is_preload
        self._first[i] = -1
        self._demand[i] = -1 if demand_index is None else int(demand_index)
        self._assigned[i] = -1
        self._size += 1
        return self._record(i)

    def extend_from_arrays(
        self,
        stripe_ids: np.ndarray,
        request_time: int,
        box_ids: np.ndarray,
        demand_indices: np.ndarray,
        is_preload: bool,
    ) -> None:
        """Activate a block of requests sharing one issue round (hot path)."""
        count = int(stripe_ids.size)
        if count == 0:
            return
        self._ensure_capacity(count)
        lo, hi = self._size, self._size + count
        self._stripe[lo:hi] = stripe_ids
        self._rtime[lo:hi] = request_time
        self._box[lo:hi] = box_ids
        self._preload[lo:hi] = is_preload
        self._first[lo:hi] = -1
        self._demand[lo:hi] = demand_indices
        self._assigned[lo:hi] = -1
        self._size = hi

    def drop_expired(self, current_time: int) -> int:
        """Remove expired requests without materializing them; returns the count."""
        check_non_negative_integer(current_time, "current_time")
        removed_mask = self._expired_mask(current_time)
        if removed_mask is None:
            return 0
        return self._compact_expired(removed_mask)

    def drop_expired_keeping(self, current_time: int) -> Optional[np.ndarray]:
        """Like :meth:`drop_expired`, but returns the keep mask.

        ``None`` means no request expired; otherwise the boolean mask (over
        the pre-drop rows) of the survivors, in order — the delta feed of
        the incremental matcher.
        """
        check_non_negative_integer(current_time, "current_time")
        removed_mask = self._expired_mask(current_time)
        if removed_mask is None:
            return None
        keep = ~removed_mask
        self._compact_expired(removed_mask)
        return keep

    def _expired_mask(self, current_time: int) -> Optional[np.ndarray]:
        """Mask of expired rows, or ``None`` when nothing expires."""
        n = self._size
        if n == 0:
            return None
        first = self._first[:n]
        anchor = np.where(first >= 0, first, self._rtime[:n])
        removed_mask = current_time - anchor >= self._duration
        return removed_mask if removed_mask.any() else None

    def _compact_expired(self, removed_mask: np.ndarray) -> int:
        """Drop the masked rows (updating the unserved count); returns the count."""
        n = self._size
        self._expired_unserved += int(
            (removed_mask & (self._first[:n] < 0)).sum()
        )
        keep = ~removed_mask
        kept = int(keep.sum())
        for name in self._COLUMNS:
            arr = getattr(self, name)
            arr[:kept] = arr[:n][keep]
        self._size = kept
        return n - kept

    def request_set(self) -> RequestSet:
        """The multiset ``Y`` of active requests, in activation order.

        The returned :class:`ArrayRequestSet` owns copies of the field
        columns, so it stays valid after the pool mutates (observers hold
        on to it across rounds).
        """
        n = self._size
        return ArrayRequestSet(
            stripe_ids=self._stripe[:n].copy(),
            request_times=self._rtime[:n].copy(),
            box_ids=self._box[:n].copy(),
            preload_flags=self._preload[:n].copy(),
        )

    def mark_matched(self, indices: List[int], time: int) -> None:
        """Record that the requests at ``indices`` (into the active list) were served at ``time``."""
        check_non_negative_integer(time, "time")
        first = self._first[: self._size]
        for idx in indices:
            if first[idx] < 0:
                first[idx] = time

    def apply_matching(self, assignment: np.ndarray, time: int) -> None:
        """Adopt one round's matching: warm-start column + first-service rounds."""
        check_non_negative_integer(time, "time")
        n = self._size
        if assignment.shape != (n,):
            raise ValueError("assignment must have one entry per active request")
        self._assigned[:n] = assignment
        first = self._first[:n]
        newly = (first < 0) & (assignment >= 0)
        first[newly] = time

    def expire(self, current_time: int) -> List[ActiveRequest]:
        """Remove and return the requests whose playback window has elapsed."""
        check_non_negative_integer(current_time, "current_time")
        removed_mask = self._expired_mask(current_time)
        if removed_mask is None:
            return []
        removed = [self._record(int(i)) for i in np.flatnonzero(removed_mask)]
        self._compact_expired(removed_mask)
        return removed

    def by_demand(self) -> Dict[int, List[ActiveRequest]]:
        """Group active requests by the demand that generated them."""
        groups: Dict[int, List[ActiveRequest]] = {}
        for i in range(self._size):
            if self._demand[i] >= 0:
                groups.setdefault(int(self._demand[i]), []).append(self._record(i))
        return groups
