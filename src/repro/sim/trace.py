"""Structured trace of a simulation run.

The trace records every event (demand, request, connection, playback,
infeasibility) in chronological order and offers simple query and export
helpers.  Tests use the trace to assert causal properties ("no connection
before its request", "start-up delay is exactly 3 rounds"); experiments
export it for inspection.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Callable, Dict, Iterable, List, Optional, Type, TypeVar, Union

from repro.sim.events import (
    ConnectionEvent,
    DemandEvent,
    InfeasibilityEvent,
    PlaybackEndEvent,
    PlaybackStartEvent,
    RequestEvent,
)

__all__ = ["SimulationTrace"]

Event = Union[
    DemandEvent,
    RequestEvent,
    ConnectionEvent,
    PlaybackStartEvent,
    PlaybackEndEvent,
    InfeasibilityEvent,
]
E = TypeVar("E")


class SimulationTrace:
    """Chronological list of simulation events with query helpers."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def record(self, event: Event) -> None:
        """Append an event to the trace."""
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Append several events."""
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    @property
    def events(self) -> List[Event]:
        """All recorded events, in recording order."""
        return list(self._events)

    def events_since(self, start: int) -> List[Event]:
        """Events recorded at index ``start`` onwards (cheap tail slice)."""
        return self._events[start:]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def of_type(self, event_type: Type[E]) -> List[E]:
        """All events of a given type."""
        return [e for e in self._events if isinstance(e, event_type)]

    def at_round(self, time: int) -> List[Event]:
        """All events recorded for round ``time``."""
        return [e for e in self._events if getattr(e, "time", None) == time]

    def filter(self, predicate: Callable[[Event], bool]) -> List[Event]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self._events if predicate(e)]

    def demands(self) -> List[DemandEvent]:
        """All demand events."""
        return self.of_type(DemandEvent)

    def requests(self) -> List[RequestEvent]:
        """All request events."""
        return self.of_type(RequestEvent)

    def connections(self) -> List[ConnectionEvent]:
        """All connection events."""
        return self.of_type(ConnectionEvent)

    def playback_starts(self) -> List[PlaybackStartEvent]:
        """All playback-start events."""
        return self.of_type(PlaybackStartEvent)

    def infeasibilities(self) -> List[InfeasibilityEvent]:
        """All infeasibility (obstruction) events."""
        return self.of_type(InfeasibilityEvent)

    def startup_delay_of(self, box_id: int, video_id: int) -> Optional[int]:
        """Start-up delay observed for ``(box_id, video_id)``, if playback started."""
        for event in self.of_type(PlaybackStartEvent):
            if event.box_id == box_id and event.video_id == video_id:
                return event.startup_delay
        return None

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_records(self) -> List[Dict[str, object]]:
        """Export the trace as a list of plain dictionaries (JSON-friendly)."""
        records: List[Dict[str, object]] = []
        for event in self._events:
            record: Dict[str, object] = {"event": type(event).__name__}
            record.update(asdict(event))
            records.append(record)
        return records

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the trace to a JSON string."""
        return json.dumps(self.to_records(), indent=indent)

    @classmethod
    def from_records(cls, records: Iterable[Dict[str, object]]) -> "SimulationTrace":
        """Rebuild a trace from :meth:`to_records` output."""
        event_types: Dict[str, type] = {
            t.__name__: t
            for t in (
                DemandEvent,
                RequestEvent,
                ConnectionEvent,
                PlaybackStartEvent,
                PlaybackEndEvent,
                InfeasibilityEvent,
            )
        }
        trace = cls()
        for record in records:
            payload = dict(record)
            name = payload.pop("event", None)
            event_type = event_types.get(str(name))
            if event_type is None:
                raise ValueError(f"unknown trace event type {name!r}")
            if event_type is InfeasibilityEvent:
                witness = payload.get("witness_requests")
                if witness is not None:
                    payload["witness_requests"] = tuple(
                        tuple(int(v) for v in triple) for triple in witness
                    )
            trace.record(event_type(**payload))
        return trace
