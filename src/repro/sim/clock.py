"""The round clock.

The paper uses a discrete round-based model: the time unit is the time
needed for a box to establish a connection and start a data transfer.
:class:`RoundClock` is a minimal monotone counter shared by the engine and
the metrics collector so that every recorded event carries a consistent
round number.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative_integer

__all__ = ["RoundClock"]


class RoundClock:
    """Monotone integer round counter."""

    def __init__(self, start: int = 0):
        self._now = check_non_negative_integer(start, "start")

    @property
    def now(self) -> int:
        """Current round."""
        return self._now

    def advance(self, rounds: int = 1) -> int:
        """Advance by ``rounds`` (default 1) and return the new round."""
        rounds = check_non_negative_integer(rounds, "rounds")
        self._now += rounds
        return self._now

    def reset(self, start: int = 0) -> None:
        """Reset the clock to ``start``."""
        self._now = check_non_negative_integer(start, "start")

    def __repr__(self) -> str:  # pragma: no cover
        return f"RoundClock(now={self._now})"
