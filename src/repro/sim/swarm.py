"""Swarm tracking and growth-bound enforcement.

The *swarm* of a video is the population of boxes currently viewing it.
The paper's only assumption on demand dynamics is the maximal swarm growth
``µ``: if ``f(t)`` is the swarm size then
``f(t+i) ≤ ⌈max{f(t), 1} · µ^i⌉``.  The registry below tracks swarm sizes
round by round so that (i) workloads can be validated against the bound
they claim to respect and (ii) adversarial generators can push demand
exactly to the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.util.soa import ensure_column_capacity
from repro.util.validation import check_in_range, check_non_negative_integer

__all__ = ["SwarmGrowthViolation", "SwarmRegistry", "max_new_members"]


@dataclass(frozen=True)
class SwarmGrowthViolation:
    """A violation of the swarm-growth bound ``µ`` for one video at one round."""

    video_id: int
    time: int
    previous_size: int
    new_size: int
    allowed_size: int


def max_new_members(current_size: int, mu: float) -> int:
    """Maximum number of boxes that may join a swarm of ``current_size`` this round.

    The bound allows the next size to be at most ``⌈max{f(t), 1}·µ⌉``; an
    empty swarm may therefore bootstrap with ``⌈µ⌉`` members.
    """
    current_size = check_non_negative_integer(current_size, "current_size")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    allowed_next = math.ceil(max(current_size, 1) * mu)
    return max(allowed_next - current_size, 0)


class _VideoSwarm:
    """Entry log of one video's swarm, struct-of-arrays.

    Boxes and entry times are appended in arrival order; while entry times
    stay non-decreasing (the engine's case — time only moves forward),
    windowed size/membership queries are ``searchsorted`` slices.  Out-of-
    order entries (possible through the public API) flip a flag and
    queries fall back to a linear scan, preserving insertion order.
    """

    __slots__ = ("boxes", "times", "size", "sorted")

    def __init__(self):
        self.boxes = np.empty(16, dtype=np.int64)
        self.times = np.empty(16, dtype=np.int64)
        self.size = 0
        self.sorted = True

    def __getstate__(self):
        return (self.boxes[: self.size].copy(), self.times[: self.size].copy(), self.sorted)

    def __setstate__(self, state):
        self.boxes, self.times, self.sorted = state
        self.size = self.boxes.size

    def append(self, box: int, time: int) -> None:
        ensure_column_capacity(self, ("boxes", "times"), self.size, self.size + 1)
        if self.size and time < self.times[self.size - 1]:
            self.sorted = False
        self.boxes[self.size] = box
        self.times[self.size] = time
        self.size += 1

    def window(self, lo_exclusive: int, hi_inclusive: int) -> np.ndarray:
        """Boxes whose entry time lies in ``(lo_exclusive, hi_inclusive]``."""
        times = self.times[: self.size]
        if self.sorted:
            a = int(np.searchsorted(times, lo_exclusive, side="right"))
            b = int(np.searchsorted(times, hi_inclusive, side="right"))
            return self.boxes[a:b]
        mask = (times > lo_exclusive) & (times <= hi_inclusive)
        return self.boxes[: self.size][mask]

    def count(self, lo_exclusive: int, hi_inclusive: int) -> int:
        """Number of entries with time in ``(lo_exclusive, hi_inclusive]``."""
        times = self.times[: self.size]
        if self.sorted:
            a = int(np.searchsorted(times, lo_exclusive, side="right"))
            b = int(np.searchsorted(times, hi_inclusive, side="right"))
            return b - a
        return int(((times > lo_exclusive) & (times <= hi_inclusive)).sum())


class SwarmRegistry:
    """Tracks swarm membership per video and validates the growth bound.

    Membership is driven by *swarm entry times*: a box enters the swarm of
    a video when it issues its first (preloading) request for it and leaves
    ``duration`` rounds later.  Per-video membership is kept as
    struct-of-arrays entry logs, so size queries cost ``O(log members)``
    instead of a scan — the difference between toy populations and the
    100k-box scale tiers.
    """

    def __init__(self, mu: float, duration: int):
        self._mu = check_in_range(mu, "mu", 1.0, math.inf)
        self._duration = check_non_negative_integer(duration, "duration")
        # video_id -> entry log (boxes, entry times) in arrival order.
        self._swarms: Dict[int, _VideoSwarm] = {}
        # Size history: video_id -> {round: size at end of round}
        self._history: Dict[int, Dict[int, int]] = {}
        self._violations: List[SwarmGrowthViolation] = []

    @property
    def mu(self) -> float:
        """The growth bound ``µ`` being enforced."""
        return self._mu

    @property
    def violations(self) -> Tuple[SwarmGrowthViolation, ...]:
        """All growth-bound violations observed so far."""
        return tuple(self._violations)

    def size(self, video_id: int, time: int) -> int:
        """Swarm size of ``video_id`` at round ``time`` (members not yet expired)."""
        swarm = self._swarms.get(int(video_id))
        if swarm is None:
            return 0
        # entry <= time < entry + duration  <=>  time - duration < entry <= time
        return swarm.count(time - self._duration, time)

    def members(self, video_id: int, time: int) -> List[int]:
        """Boxes in the swarm of ``video_id`` at round ``time``."""
        swarm = self._swarms.get(int(video_id))
        if swarm is None:
            return []
        return swarm.window(time - self._duration, time).tolist()

    def enter(self, video_id: int, box_id: int, time: int) -> None:
        """Record that ``box_id`` enters the swarm of ``video_id`` at round ``time``.

        Checks the growth bound against the size at round ``time − 1`` and
        records a violation (without raising) when it is exceeded; the
        engine surfaces violations in its result.
        """
        video_id = int(video_id)
        previous = self.size(video_id, time - 1) if time > 0 else 0
        swarm = self._swarms.get(video_id)
        if swarm is None:
            swarm = self._swarms[video_id] = _VideoSwarm()
        swarm.append(int(box_id), int(time))
        new_size = self.size(video_id, time)
        allowed = math.ceil(max(previous, 1) * self._mu)
        if new_size > allowed:
            self._violations.append(
                SwarmGrowthViolation(
                    video_id=video_id,
                    time=int(time),
                    previous_size=previous,
                    new_size=new_size,
                    allowed_size=allowed,
                )
            )
        self._history.setdefault(video_id, {})[int(time)] = new_size

    def admissible_joiners(self, video_id: int, time: int) -> int:
        """How many boxes may still join ``video_id``'s swarm at round ``time``."""
        previous = self.size(int(video_id), time - 1) if time > 0 else 0
        current = self.size(int(video_id), time)
        allowed = math.ceil(max(previous, 1) * self._mu)
        return max(allowed - current, 0)

    def history(self, video_id: int) -> Dict[int, int]:
        """Recorded swarm sizes of ``video_id`` keyed by round."""
        return dict(self._history.get(int(video_id), {}))

    def active_videos(self, time: int) -> List[int]:
        """Videos with a non-empty swarm at round ``time``."""
        return [vid for vid in self._swarms if self.size(vid, time) > 0]
