"""Swarm tracking and growth-bound enforcement.

The *swarm* of a video is the population of boxes currently viewing it.
The paper's only assumption on demand dynamics is the maximal swarm growth
``µ``: if ``f(t)`` is the swarm size then
``f(t+i) ≤ ⌈max{f(t), 1} · µ^i⌉``.  The registry below tracks swarm sizes
round by round so that (i) workloads can be validated against the bound
they claim to respect and (ii) adversarial generators can push demand
exactly to the bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.util.soa import ensure_column_capacity
from repro.util.validation import check_in_range, check_non_negative_integer

__all__ = ["SwarmGrowthViolation", "SwarmRegistry", "max_new_members"]


@dataclass(frozen=True)
class SwarmGrowthViolation:
    """A violation of the swarm-growth bound ``µ`` for one video at one round."""

    video_id: int
    time: int
    previous_size: int
    new_size: int
    allowed_size: int


def max_new_members(current_size: int, mu: float) -> int:
    """Maximum number of boxes that may join a swarm of ``current_size`` this round.

    The bound allows the next size to be at most ``⌈max{f(t), 1}·µ⌉``; an
    empty swarm may therefore bootstrap with ``⌈µ⌉`` members.
    """
    current_size = check_non_negative_integer(current_size, "current_size")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    allowed_next = math.ceil(max(current_size, 1) * mu)
    return max(allowed_next - current_size, 0)


class _VideoSwarm:
    """Entry log of one video's swarm, struct-of-arrays.

    Boxes and entry times are appended in arrival order; while entry times
    stay non-decreasing (the engine's case — time only moves forward),
    windowed size/membership queries are ``searchsorted`` slices.  Out-of-
    order entries (possible through the public API) flip a flag and
    queries fall back to a linear scan, preserving insertion order.
    """

    __slots__ = ("boxes", "times", "size", "sorted")

    def __init__(self):
        self.boxes = np.empty(16, dtype=np.int64)
        self.times = np.empty(16, dtype=np.int64)
        self.size = 0
        self.sorted = True

    def __getstate__(self):
        return (self.boxes[: self.size].copy(), self.times[: self.size].copy(), self.sorted)

    def __setstate__(self, state):
        self.boxes, self.times, self.sorted = state
        self.size = self.boxes.size

    def append(self, box: int, time: int) -> None:
        ensure_column_capacity(self, ("boxes", "times"), self.size, self.size + 1)
        if self.size and time < self.times[self.size - 1]:
            self.sorted = False
        self.boxes[self.size] = box
        self.times[self.size] = time
        self.size += 1

    def window(self, lo_exclusive: int, hi_inclusive: int) -> np.ndarray:
        """Boxes whose entry time lies in ``(lo_exclusive, hi_inclusive]``."""
        times = self.times[: self.size]
        if self.sorted:
            a = int(np.searchsorted(times, lo_exclusive, side="right"))
            b = int(np.searchsorted(times, hi_inclusive, side="right"))
            return self.boxes[a:b]
        mask = (times > lo_exclusive) & (times <= hi_inclusive)
        return self.boxes[: self.size][mask]

    def count(self, lo_exclusive: int, hi_inclusive: int) -> int:
        """Number of entries with time in ``(lo_exclusive, hi_inclusive]``."""
        times = self.times[: self.size]
        if self.sorted:
            a = int(np.searchsorted(times, lo_exclusive, side="right"))
            b = int(np.searchsorted(times, hi_inclusive, side="right"))
            return b - a
        return int(((times > lo_exclusive) & (times <= hi_inclusive)).sum())


class SwarmRegistry:
    """Tracks swarm membership per video and validates the growth bound.

    Membership is driven by *swarm entry times*: a box enters the swarm of
    a video when it issues its first (preloading) request for it and leaves
    ``duration`` rounds later.  Per-video membership is kept as
    struct-of-arrays entry logs, so size queries cost ``O(log members)``
    instead of a scan — the difference between toy populations and the
    100k-box scale tiers.
    """

    def __init__(self, mu: float, duration: int):
        self._mu = check_in_range(mu, "mu", 1.0, math.inf)
        self._duration = check_non_negative_integer(duration, "duration")
        # video_id -> entry log (boxes, entry times) in arrival order.
        self._swarms: Dict[int, _VideoSwarm] = {}
        # Size history: video_id -> {round: size at end of round}
        self._history: Dict[int, Dict[int, int]] = {}
        self._violations: List[SwarmGrowthViolation] = []
        # Rolling size cache for the batched entry path: live sizes as of
        # round ``_cache_time`` plus per-round arrival counts (to expire
        # entries leaving the duration window without re-counting entry
        # logs).  The unbatched ``enter`` bypasses and invalidates it;
        # ``enter_batch`` then falls back to counting the entry logs.
        self._size_cache: Dict[int, int] = {}
        self._round_adds: Dict[int, Dict[int, int]] = {}
        self._cache_time = -1
        self._cache_valid = True
        # Entry blocks accepted by ``enter_batch`` but not yet written to
        # the per-video logs / size history, as ``(time, videos, boxes,
        # unique_videos, final_sizes)`` with videos/boxes grouped by video.
        # Lean runs never query individual swarms, so the grouping work is
        # deferred until something does.
        self._pending_entries: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []

    @property
    def mu(self) -> float:
        """The growth bound ``µ`` being enforced."""
        return self._mu

    @property
    def violations(self) -> Tuple[SwarmGrowthViolation, ...]:
        """All growth-bound violations observed so far."""
        return tuple(self._violations)

    def _flush_entries(self) -> None:
        """Write deferred ``enter_batch`` blocks to the per-video logs.

        Blocks keep chronological order, so the logs end up exactly as if
        every entry had been appended eagerly.  ``getattr`` tolerates
        registries unpickled from snapshots predating the deferred log.
        """
        pending = getattr(self, "_pending_entries", None)
        if not pending:
            return
        self._pending_entries = []
        for time, videos, boxes, unique_videos, final_sizes in pending:
            n = int(videos.size)
            starts = np.empty(n, dtype=bool)
            starts[0] = True
            np.not_equal(videos[1:], videos[:-1], out=starts[1:])
            bounds = np.append(np.flatnonzero(starts), n)
            for j, vid in enumerate(unique_videos.tolist()):
                lo, hi = int(bounds[j]), int(bounds[j + 1])
                swarm = self._swarms.get(vid)
                if swarm is None:
                    swarm = self._swarms[vid] = _VideoSwarm()
                size = swarm.size
                ensure_column_capacity(swarm, ("boxes", "times"), size, size + hi - lo)
                if size and time < swarm.times[size - 1]:
                    swarm.sorted = False
                swarm.boxes[size : size + hi - lo] = boxes[lo:hi]
                swarm.times[size : size + hi - lo] = time
                swarm.size = size + hi - lo
                self._history.setdefault(vid, {})[time] = int(final_sizes[j])

    def size(self, video_id: int, time: int) -> int:
        """Swarm size of ``video_id`` at round ``time`` (members not yet expired)."""
        self._flush_entries()
        swarm = self._swarms.get(int(video_id))
        if swarm is None:
            return 0
        # entry <= time < entry + duration  <=>  time - duration < entry <= time
        return swarm.count(time - self._duration, time)

    def members(self, video_id: int, time: int) -> List[int]:
        """Boxes in the swarm of ``video_id`` at round ``time``."""
        self._flush_entries()
        swarm = self._swarms.get(int(video_id))
        if swarm is None:
            return []
        return swarm.window(time - self._duration, time).tolist()

    def enter(self, video_id: int, box_id: int, time: int) -> None:
        """Record that ``box_id`` enters the swarm of ``video_id`` at round ``time``.

        Checks the growth bound against the size at round ``time − 1`` and
        records a violation (without raising) when it is exceeded; the
        engine surfaces violations in its result.
        """
        video_id = int(video_id)
        self._cache_valid = False
        self._flush_entries()
        previous = self.size(video_id, time - 1) if time > 0 else 0
        swarm = self._swarms.get(video_id)
        if swarm is None:
            swarm = self._swarms[video_id] = _VideoSwarm()
        swarm.append(int(box_id), int(time))
        new_size = self.size(video_id, time)
        allowed = math.ceil(max(previous, 1) * self._mu)
        if new_size > allowed:
            self._violations.append(
                SwarmGrowthViolation(
                    video_id=video_id,
                    time=int(time),
                    previous_size=previous,
                    new_size=new_size,
                    allowed_size=allowed,
                )
            )
        self._history.setdefault(video_id, {})[int(time)] = new_size

    def enter_batch(
        self, video_ids: np.ndarray, box_ids: np.ndarray, time: int
    ) -> None:
        """Batched :meth:`enter` over one round's arrivals (hot path).

        Records the same swarm entries, growth-bound violations (in the
        same arrival order, with the same per-entry sizes) and size
        history as calling :meth:`enter` per ``(video, box)`` pair, but
        touches each video's entry log once instead of once per arrival.
        All entries share the arrival round ``time``.
        """
        n = int(video_ids.size)
        if n == 0:
            return
        time = int(time)
        order = np.argsort(video_ids, kind="stable")
        sorted_videos = video_ids[order]
        starts = np.empty(n, dtype=bool)
        starts[0] = True
        np.not_equal(sorted_videos[1:], sorted_videos[:-1], out=starts[1:])
        start_pos = np.flatnonzero(starts)
        counts = np.diff(np.append(start_pos, n))
        unique_videos = sorted_videos[start_pos]

        base = np.empty(unique_videos.size, dtype=np.int64)
        previous = np.empty(unique_videos.size, dtype=np.int64)
        sorted_boxes = box_ids[order]

        # Size queries: O(1) against the rolling cache when it is live,
        # entry-log counting otherwise (after unbatched enter() calls or
        # restores from pre-cache snapshots).
        duration = self._duration
        cache_live = (
            getattr(self, "_cache_valid", False) and self._cache_time <= time
        )
        if not cache_live:
            self._cache_valid = False
            self._flush_entries()
            for j, vid in enumerate(unique_videos.tolist()):
                swarm = self._swarms.get(vid)
                if swarm is None:
                    swarm = self._swarms[vid] = _VideoSwarm()
                k = int(counts[j])
                previous[j] = (
                    swarm.count(time - 1 - duration, time - 1) if time > 0 else 0
                )
                base[j] = swarm.count(time - duration, time)
                lo = int(start_pos[j])
                size = swarm.size
                ensure_column_capacity(swarm, ("boxes", "times"), size, size + k)
                if size and time < swarm.times[size - 1]:
                    swarm.sorted = False
                swarm.boxes[size : size + k] = sorted_boxes[lo : lo + k]
                swarm.times[size : size + k] = time
                swarm.size = size + k
                self._history.setdefault(vid, {})[time] = int(base[j]) + k
        else:
            sizes = self._size_cache
            adds = self._round_adds
            # Advance pre-append to `time`: entries from the rounds that
            # left the duration window stop counting.
            for r in range(self._cache_time + 1, time + 1):
                expired = adds.get(r - duration)
                if expired:
                    for vid, expired_count in expired.items():
                        left = sizes.get(vid, 0) - expired_count
                        if left > 0:
                            sizes[vid] = left
                        else:
                            sizes.pop(vid, None)
            prev_adds = adds.get(time - duration) or {}
            this_adds = adds.setdefault(time, {})
            for stale in [r for r in adds if r < time - duration]:
                del adds[stale]
            self._cache_time = time
            for j, vid in enumerate(unique_videos.tolist()):
                k = int(counts[j])
                before = sizes.get(vid, 0)
                previous[j] = (
                    before - this_adds.get(vid, 0) + prev_adds.get(vid, 0)
                    if time > 0
                    else 0
                )
                base[j] = before
                sizes[vid] = before + k
                this_adds[vid] = this_adds.get(vid, 0) + k
            # Log writes and size history are deferred: nothing reads them
            # inside a lean engine round.
            self._pending_entries.append(
                (time, sorted_videos, sorted_boxes, unique_videos, base + counts)
            )

        allowed = np.ceil(np.maximum(previous, 1) * self._mu).astype(np.int64)
        # Per-entry size after the append, in arrival order: the i-th
        # arrival of a video this round takes its swarm to base + i + 1
        # (the stable sort keeps arrival order within each video).
        rank_sorted = np.arange(n, dtype=np.int64) - np.repeat(start_pos, counts)
        new_size_sorted = base.repeat(counts) + rank_sorted + 1
        new_size = np.empty(n, dtype=np.int64)
        new_size[order] = new_size_sorted
        allowed_per = np.empty(n, dtype=np.int64)
        allowed_per[order] = allowed.repeat(counts)
        previous_per = np.empty(n, dtype=np.int64)
        previous_per[order] = previous.repeat(counts)
        violating = new_size > allowed_per
        if violating.any():
            for k in np.flatnonzero(violating).tolist():
                self._violations.append(
                    SwarmGrowthViolation(
                        video_id=int(video_ids[k]),
                        time=time,
                        previous_size=int(previous_per[k]),
                        new_size=int(new_size[k]),
                        allowed_size=int(allowed_per[k]),
                    )
                )

    def admissible_joiners(self, video_id: int, time: int) -> int:
        """How many boxes may still join ``video_id``'s swarm at round ``time``."""
        previous = self.size(int(video_id), time - 1) if time > 0 else 0
        current = self.size(int(video_id), time)
        allowed = math.ceil(max(previous, 1) * self._mu)
        return max(allowed - current, 0)

    def history(self, video_id: int) -> Dict[int, int]:
        """Recorded swarm sizes of ``video_id`` keyed by round."""
        self._flush_entries()
        return dict(self._history.get(int(video_id), {}))

    def active_videos(self, time: int) -> List[int]:
        """Videos with a non-empty swarm at round ``time``."""
        self._flush_entries()
        return [vid for vid in self._swarms if self.size(vid, time) > 0]
