"""Metrics collected during a simulation run.

The collector aggregates per-round observations into the quantities the
experiments report: feasibility rate, unmatched requests, per-box upload
utilization, start-up delays and obstruction events.  It is deliberately
simple (plain Python + NumPy) so that every number in EXPERIMENTS.md can
be traced to one accumulation site here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

__all__ = ["RoundStats", "MetricsCollector", "SimulationMetrics"]


@dataclass(frozen=True)
class RoundStats:
    """Per-round aggregate statistics."""

    time: int
    active_requests: int
    new_requests: int
    matched: int
    unmatched: int
    feasible: bool
    upload_used: int
    upload_capacity: int

    @property
    def utilization(self) -> float:
        """Fraction of the aggregate upload capacity in use this round."""
        if self.upload_capacity == 0:
            return 0.0
        return self.upload_used / self.upload_capacity

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form (numpy scalars coerced to Python types)."""
        return {
            "time": int(self.time),
            "active_requests": int(self.active_requests),
            "new_requests": int(self.new_requests),
            "matched": int(self.matched),
            "unmatched": int(self.unmatched),
            "feasible": bool(self.feasible),
            "upload_used": int(self.upload_used),
            "upload_capacity": int(self.upload_capacity),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoundStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            time=int(data["time"]),
            active_requests=int(data["active_requests"]),
            new_requests=int(data["new_requests"]),
            matched=int(data["matched"]),
            unmatched=int(data["unmatched"]),
            feasible=bool(data["feasible"]),
            upload_used=int(data["upload_used"]),
            upload_capacity=int(data["upload_capacity"]),
        )


#: Optional per-request latency percentile fields of
#: :class:`SimulationMetrics` — populated only by the event-driven engine.
_LATENCY_PERCENTILE_FIELDS = (
    "admission_latency_p50",
    "admission_latency_p99",
    "startup_delay_p50",
    "startup_delay_p99",
)


@dataclass(frozen=True)
class SimulationMetrics:
    """Final aggregated metrics of a simulation run."""

    rounds: int
    total_demands: int
    total_requests: int
    infeasible_rounds: int
    unmatched_requests: int
    max_startup_delay: Optional[int]
    mean_startup_delay: Optional[float]
    peak_utilization: float
    mean_utilization: float
    peak_box_load: int
    swarm_growth_violations: int
    round_stats: Tuple[RoundStats, ...]
    #: Per-request latency percentiles, recorded only by the event-driven
    #: engine (:mod:`repro.events`): admission latency is the continuous
    #: time between a demand's arrival and its admission at the next round
    #: boundary; startup delay here is the *continuous* arrival-to-playback
    #: time (the round engine's integer ``max``/``mean`` fields above count
    #: whole rounds).  ``None`` on round-engine runs, and serialized only
    #: when set, so every pre-existing recording stays byte-identical.
    admission_latency_p50: Optional[float] = None
    admission_latency_p99: Optional[float] = None
    startup_delay_p50: Optional[float] = None
    startup_delay_p99: Optional[float] = None

    @property
    def all_feasible(self) -> bool:
        """Whether every round's connection matching was feasible."""
        return self.infeasible_rounds == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form, round-tripping through :meth:`from_dict`.

        Every value is a native Python scalar (numpy scalars coerced), so the
        output feeds ``json.dumps`` directly — this is what external services
        log from a live session.
        """
        payload: Dict[str, Any] = {
            "rounds": int(self.rounds),
            "total_demands": int(self.total_demands),
            "total_requests": int(self.total_requests),
            "infeasible_rounds": int(self.infeasible_rounds),
            "unmatched_requests": int(self.unmatched_requests),
            "max_startup_delay": None
            if self.max_startup_delay is None
            else int(self.max_startup_delay),
            "mean_startup_delay": None
            if self.mean_startup_delay is None
            else float(self.mean_startup_delay),
            "peak_utilization": float(self.peak_utilization),
            "mean_utilization": float(self.mean_utilization),
            "peak_box_load": int(self.peak_box_load),
            "swarm_growth_violations": int(self.swarm_growth_violations),
            "round_stats": [stats.to_dict() for stats in self.round_stats],
        }
        # Latency percentiles serialize only when recorded (event-engine
        # runs): round-engine payloads keep their historical key set.
        for name in _LATENCY_PERCENTILE_FIELDS:
            value = getattr(self, name)
            if value is not None:
                payload[name] = float(value)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationMetrics":
        """Rebuild from :meth:`to_dict` output."""
        max_delay = data.get("max_startup_delay")
        mean_delay = data.get("mean_startup_delay")
        return cls(
            rounds=int(data["rounds"]),
            total_demands=int(data["total_demands"]),
            total_requests=int(data["total_requests"]),
            infeasible_rounds=int(data["infeasible_rounds"]),
            unmatched_requests=int(data["unmatched_requests"]),
            max_startup_delay=None if max_delay is None else int(max_delay),
            mean_startup_delay=None if mean_delay is None else float(mean_delay),
            peak_utilization=float(data["peak_utilization"]),
            mean_utilization=float(data["mean_utilization"]),
            peak_box_load=int(data["peak_box_load"]),
            swarm_growth_violations=int(data["swarm_growth_violations"]),
            round_stats=tuple(
                RoundStats.from_dict(stats) for stats in data.get("round_stats", ())
            ),
            **{
                name: None if data.get(name) is None else float(data[name])
                for name in _LATENCY_PERCENTILE_FIELDS
            },
        )

    def describe(self) -> Dict[str, float]:
        """Flat dictionary view used by experiment tables."""
        return {
            "rounds": self.rounds,
            "total_demands": self.total_demands,
            "total_requests": self.total_requests,
            "infeasible_rounds": self.infeasible_rounds,
            "unmatched_requests": self.unmatched_requests,
            "all_feasible": self.all_feasible,
            "max_startup_delay": self.max_startup_delay
            if self.max_startup_delay is not None
            else float("nan"),
            "mean_startup_delay": self.mean_startup_delay
            if self.mean_startup_delay is not None
            else float("nan"),
            "peak_utilization": self.peak_utilization,
            "mean_utilization": self.mean_utilization,
            "peak_box_load": self.peak_box_load,
            "swarm_growth_violations": self.swarm_growth_violations,
        }


class MetricsCollector:
    """Accumulates per-round statistics and start-up delays."""

    def __init__(self, num_boxes: int):
        if num_boxes <= 0:
            raise ValueError(f"num_boxes must be positive, got {num_boxes}")
        self._num_boxes = num_boxes
        self._round_stats: List[RoundStats] = []
        self._startup_delays: List[int] = []
        # Continuous-time per-request samples (event-driven engine only).
        self._admission_latencies: List[float] = []
        self._continuous_delays: List[float] = []
        self._total_demands = 0
        self._total_requests = 0
        self._peak_box_load = 0
        self._swarm_violations = 0

    @property
    def rounds_recorded(self) -> int:
        """Number of rounds recorded so far."""
        return len(self._round_stats)

    @property
    def last_round(self) -> Optional[RoundStats]:
        """The most recently recorded round's statistics (``None`` before any)."""
        return self._round_stats[-1] if self._round_stats else None

    def grow(self, num_boxes: int) -> None:
        """Record that the population grew to ``num_boxes`` boxes."""
        if num_boxes < self._num_boxes:
            raise ValueError(
                f"population cannot shrink: {num_boxes} < {self._num_boxes}"
            )
        self._num_boxes = num_boxes

    # ------------------------------------------------------------------ #
    # Accumulation
    # ------------------------------------------------------------------ #
    def record_demands(self, count: int) -> None:
        """Record ``count`` demand arrivals."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._total_demands += count

    def record_requests(self, count: int) -> None:
        """Record ``count`` newly issued stripe requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._total_requests += count

    def record_round(
        self,
        time: int,
        active_requests: int,
        new_requests: int,
        matched: int,
        feasible: bool,
        box_load: np.ndarray,
        upload_capacity: int,
    ) -> RoundStats:
        """Record the outcome of one round's connection matching."""
        stats = RoundStats(
            time=time,
            active_requests=active_requests,
            new_requests=new_requests,
            matched=matched,
            unmatched=active_requests - matched,
            feasible=feasible,
            upload_used=int(box_load.sum()),
            upload_capacity=int(upload_capacity),
        )
        self._round_stats.append(stats)
        if box_load.size:
            self._peak_box_load = max(self._peak_box_load, int(box_load.max()))
        return stats

    def record_startup_delay(self, delay: int) -> None:
        """Record the start-up delay of one playback."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._startup_delays.append(delay)

    def record_startup_delays(self, delays: np.ndarray) -> None:
        """Record a round's start-up delays in one append."""
        if delays.size:
            if int(delays.min()) < 0:
                raise ValueError("delay must be non-negative")
            self._startup_delays.extend(delays.tolist())

    def record_admission_latencies(self, latencies: np.ndarray) -> None:
        """Record a round's continuous admission latencies (event engine)."""
        if len(latencies):
            if float(np.min(latencies)) < 0:
                raise ValueError("admission latency must be non-negative")
            self._admission_latencies.extend(float(x) for x in latencies)

    def record_continuous_delays(self, delays: np.ndarray) -> None:
        """Record a round's continuous startup delays (event engine)."""
        if len(delays):
            if float(np.min(delays)) < 0:
                raise ValueError("delay must be non-negative")
            self._continuous_delays.extend(float(x) for x in delays)

    def record_swarm_violations(self, count: int) -> None:
        """Record the (final) number of swarm-growth violations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._swarm_violations = count

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def finalize(self) -> SimulationMetrics:
        """Aggregate everything recorded so far into a :class:`SimulationMetrics`."""
        infeasible = sum(1 for s in self._round_stats if not s.feasible)
        unmatched = sum(s.unmatched for s in self._round_stats)
        utilizations = [s.utilization for s in self._round_stats]
        return SimulationMetrics(
            rounds=len(self._round_stats),
            total_demands=self._total_demands,
            total_requests=self._total_requests,
            infeasible_rounds=infeasible,
            unmatched_requests=unmatched,
            max_startup_delay=max(self._startup_delays) if self._startup_delays else None,
            mean_startup_delay=float(np.mean(self._startup_delays))
            if self._startup_delays
            else None,
            peak_utilization=max(utilizations) if utilizations else 0.0,
            mean_utilization=float(np.mean(utilizations)) if utilizations else 0.0,
            peak_box_load=self._peak_box_load,
            swarm_growth_violations=self._swarm_violations,
            round_stats=tuple(self._round_stats),
            **_percentile_pair("admission_latency", self._admission_latencies),
            **_percentile_pair("startup_delay", self._continuous_delays),
        )


def _percentile_pair(prefix: str, samples: List[float]) -> Dict[str, Optional[float]]:
    """``{prefix}_p50``/``{prefix}_p99`` of ``samples`` (``None`` when empty)."""
    if not samples:
        return {f"{prefix}_p50": None, f"{prefix}_p99": None}
    arr = np.asarray(samples, dtype=np.float64)
    return {
        f"{prefix}_p50": float(np.percentile(arr, 50)),
        f"{prefix}_p99": float(np.percentile(arr, 99)),
    }
