"""Edmonds–Karp maximum flow (BFS augmenting paths).

The simplest of the three solvers; ``O(V·E²)`` worst case.  Kept primarily
as an oracle to cross-check Dinic and push-relabel in tests, and as the
reference implementation whose behaviour is easiest to audit against the
min-cut/max-flow argument of Lemma 1.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.flow.network import FlowNetwork

__all__ = ["edmonds_karp_max_flow"]


def _bfs_augmenting_path(
    network: FlowNetwork, source: int, sink: int
) -> Optional[List[int]]:
    """Return the edge ids of a shortest augmenting path, or ``None``."""
    parent_edge: List[int] = [-1] * network.num_nodes
    visited = [False] * network.num_nodes
    visited[source] = True
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        if node == sink:
            break
        for edge_id in network.out_edges(node):
            target = network.edge_target(edge_id)
            if not visited[target] and network.residual(edge_id) > 0:
                visited[target] = True
                parent_edge[target] = edge_id
                queue.append(target)
    if not visited[sink]:
        return None
    # Reconstruct the path from sink back to source.
    path: List[int] = []
    node = sink
    while node != source:
        edge_id = parent_edge[node]
        path.append(edge_id)
        node = network.edge_source(edge_id)
    path.reverse()
    return path


def edmonds_karp_max_flow(network: FlowNetwork, source: int, sink: int) -> int:
    """Compute the maximum ``source``→``sink`` flow in place.

    The network's flow state is updated; the function returns the value of
    the maximum flow.

    Raises
    ------
    ValueError
        If ``source == sink`` or either node is out of range.
    """
    _validate_terminals(network, source, sink)
    total_flow = 0
    while True:
        path = _bfs_augmenting_path(network, source, sink)
        if path is None:
            return total_flow
        bottleneck = min(network.residual(edge_id) for edge_id in path)
        for edge_id in path:
            network.push(edge_id, bottleneck)
        total_flow += bottleneck


def _validate_terminals(network: FlowNetwork, source: int, sink: int) -> None:
    if not 0 <= source < network.num_nodes:
        raise ValueError(f"source {source} out of range")
    if not 0 <= sink < network.num_nodes:
        raise ValueError(f"sink {sink} out of range")
    if source == sink:
        raise ValueError("source and sink must differ")
