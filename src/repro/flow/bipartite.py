"""Bipartite b-matchings, Hall-style feasibility and expansion measurement.

The connection-matching problem of Section 2.2 is a bipartite *b-matching*:
every request (left node) must be matched with degree exactly 1, and every
box (right node) may be matched with degree at most ``⌊u_b·c⌋``.  This
module provides:

* :func:`solve_b_matching` — solve the b-matching through max flow and
  return the request→box assignment;
* :func:`hall_violations` — search for a violated (generalized) Hall
  condition, i.e. a request subset ``X`` with ``U_{B(X)} < |X|/c``;
  used to exhibit *obstruction witnesses*;
* :func:`expansion_ratio` — measure the vertex expansion of the bipartite
  graph, the quantity the paper's probabilistic argument controls
  (the allocation graph must be a ``1/(u·c)``-expander).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.flow.dinic import dinic_max_flow
from repro.flow.edmonds_karp import edmonds_karp_max_flow
from repro.flow.hopcroft_karp import csr_from_edges, hopcroft_karp_matching
from repro.flow.mincut import residual_reachable
from repro.flow.network import FlowNetwork, build_bipartite_network
from repro.flow.push_relabel import push_relabel_max_flow

__all__ = [
    "BMatchingResult",
    "FLOW_SOLVERS",
    "solve_b_matching",
    "hall_violations",
    "worst_expansion_subset",
    "expansion_ratio",
]

#: Max-flow kernels usable on the network-reduction path of
#: :func:`solve_b_matching` (every entry is a valid ``method=``).
FLOW_SOLVERS = {
    "dinic": dinic_max_flow,
    "push_relabel": push_relabel_max_flow,
    "edmonds_karp": edmonds_karp_max_flow,
}


@dataclass(frozen=True)
class BMatchingResult:
    """Result of a bipartite b-matching computation.

    Attributes
    ----------
    feasible:
        Whether every left node was matched (flow value == number of left
        nodes weighted by their demand).
    assignment:
        ``assignment[i]`` is the right node serving left node ``i`` or
        ``-1`` if the instance is infeasible and ``i`` was left unmatched.
    matched:
        Total matched demand (the max-flow value).
    deficient_left:
        Left nodes that could not be fully served (empty when feasible).
    unsatisfied_witness:
        When infeasible, a set of left nodes whose neighbourhood violates
        the generalized Hall condition (extracted from the min cut);
        ``None`` when feasible.
    """

    feasible: bool
    assignment: np.ndarray
    matched: int
    deficient_left: Tuple[int, ...]
    unsatisfied_witness: Optional[Tuple[int, ...]]


def solve_b_matching(
    num_left: int,
    num_right: int,
    edges: Sequence[Tuple[int, int]],
    right_capacities: Sequence[int],
    left_demands: Optional[Sequence[int]] = None,
    method: str = "auto",
) -> BMatchingResult:
    """Solve a bipartite b-matching (left demands vs right capacities).

    Parameters
    ----------
    num_left, num_right:
        Sizes of the two sides.
    edges:
        Admissible (left, right) pairs.
    right_capacities:
        Maximum degree of each right node (``⌊u_b·c⌋`` for boxes).
    left_demands:
        Required degree of each left node; defaults to 1 for every node
        (each stripe request needs exactly one server).
    method:
        ``"auto"`` (default) uses the Hopcroft–Karp kernel when every left
        demand is 1 and falls back to the Dinic max-flow reduction
        otherwise; ``"hopcroft_karp"``, ``"dinic"``, ``"push_relabel"``
        and ``"edmonds_karp"`` force one path (the max-flow reductions
        double as oracles in cross-validation tests — see
        :mod:`repro.scenarios.oracle`).
    """
    demands = [1] * num_left if left_demands is None else [int(x) for x in left_demands]
    if len(demands) != num_left:
        raise ValueError("left_demands length must equal num_left")
    caps = [int(x) for x in right_capacities]
    if len(caps) != num_right:
        raise ValueError("right_capacities length must equal num_right")

    unit_demand = all(x == 1 for x in demands)
    if method == "auto":
        method = "hopcroft_karp" if unit_demand else "dinic"
    if method == "hopcroft_karp":
        if not unit_demand:
            raise ValueError(
                "method='hopcroft_karp' requires unit left demands; "
                "use method='dinic' (or 'auto') for general demands"
            )
        indptr, indices = csr_from_edges(num_left, num_right, edges)
        hk = hopcroft_karp_matching(num_left, num_right, indptr, indices, caps)
        return BMatchingResult(
            feasible=hk.feasible,
            assignment=hk.assignment,
            matched=hk.matched,
            deficient_left=hk.deficient_left,
            unsatisfied_witness=hk.unsatisfied_witness,
        )
    if method not in FLOW_SOLVERS:
        raise ValueError(f"unknown b-matching method {method!r}")
    max_flow = FLOW_SOLVERS[method]

    network, source, sink = build_bipartite_network(
        num_left=num_left,
        num_right=num_right,
        edges=list(edges),
        left_capacities=demands,
        right_capacities=caps,
        edge_capacity=max(demands) if demands else 1,
    )
    matched = max_flow(network, source, sink)
    demand_total = sum(demands)
    feasible = matched == demand_total

    assignment = np.full(num_left, -1, dtype=np.int64)
    # Forward edges were added in order: source->left (num_left of them),
    # right->sink (num_right), then the left->right edges.
    edge_offset = 2 * (num_left + num_right)
    for idx, (left, right) in enumerate(edges):
        edge_id = edge_offset + 2 * idx
        if network.flow_on(edge_id) > 0:
            assignment[left] = right

    deficient: List[int] = []
    for left in range(num_left):
        # Left node is deficient when its source edge is not saturated.
        source_edge = 2 * left
        if network.flow_on(source_edge) < demands[left]:
            deficient.append(left)

    witness: Optional[Tuple[int, ...]] = None
    if not feasible:
        # The left nodes on the source side of the min cut form a Hall
        # violation witness (their joint neighbourhood is too small).
        reachable = residual_reachable(network, source)
        witness = tuple(
            left for left in range(num_left) if (1 + left) in reachable
        )
    return BMatchingResult(
        feasible=feasible,
        assignment=assignment,
        matched=matched,
        deficient_left=tuple(deficient),
        unsatisfied_witness=witness,
    )


def hall_violations(
    neighbourhoods: Sequence[Set[int]],
    right_weights: Sequence[float],
    demand_per_left: float,
    max_subset_size: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """Exhaustively search for violated generalized Hall conditions.

    A subset ``X`` of left nodes is a violation when
    ``Σ_{b ∈ B(X)} w_b < |X| · demand_per_left`` where ``B(X)`` is the
    union of the neighbourhoods.  Exponential in the number of left nodes —
    intended for the small crafted instances used in tests and for
    extracting human-readable obstruction witnesses.
    """
    num_left = len(neighbourhoods)
    limit = num_left if max_subset_size is None else min(max_subset_size, num_left)
    weights = np.asarray(right_weights, dtype=np.float64)
    violations: List[Tuple[int, ...]] = []
    for size in range(1, limit + 1):
        for subset in combinations(range(num_left), size):
            neighbourhood: Set[int] = set()
            for left in subset:
                neighbourhood |= neighbourhoods[left]
            capacity = float(weights[list(neighbourhood)].sum()) if neighbourhood else 0.0
            if capacity + 1e-12 < size * demand_per_left:
                violations.append(subset)
    return violations


def worst_expansion_subset(
    neighbourhoods: Sequence[Set[int]],
    max_subset_size: Optional[int] = None,
) -> Tuple[Tuple[int, ...], float]:
    """Find the left subset with the smallest ``|B(X)| / |X|`` ratio.

    Exhaustive (exponential) search; used on small instances to validate
    the expander claims and the Monte-Carlo estimator.
    Returns ``(subset, ratio)``; for an empty input returns ``((), inf)``.
    """
    num_left = len(neighbourhoods)
    if num_left == 0:
        return (), float("inf")
    limit = num_left if max_subset_size is None else min(max_subset_size, num_left)
    best_subset: Tuple[int, ...] = ()
    best_ratio = float("inf")
    for size in range(1, limit + 1):
        for subset in combinations(range(num_left), size):
            neighbourhood: Set[int] = set()
            for left in subset:
                neighbourhood |= neighbourhoods[left]
            ratio = len(neighbourhood) / size
            if ratio < best_ratio:
                best_ratio = ratio
                best_subset = subset
    return best_subset, best_ratio


def expansion_ratio(
    neighbourhoods: Sequence[Set[int]],
    subsets: Sequence[Sequence[int]],
) -> Dict[Tuple[int, ...], float]:
    """Expansion ``|B(X)|/|X|`` of each given subset ``X`` of left nodes."""
    result: Dict[Tuple[int, ...], float] = {}
    for subset in subsets:
        subset_t = tuple(subset)
        if not subset_t:
            raise ValueError("subsets must be non-empty")
        neighbourhood: Set[int] = set()
        for left in subset_t:
            neighbourhood |= neighbourhoods[left]
        result[subset_t] = len(neighbourhood) / len(subset_t)
    return result
