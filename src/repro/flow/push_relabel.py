"""FIFO push–relabel maximum flow with the gap heuristic.

Included both as an independent implementation to cross-check Dinic and
Edmonds–Karp (three-way agreement is asserted by the test suite and, on
random instances, against :mod:`networkx`), and because push–relabel is
the asymptotically strongest of the three (``O(V³)`` FIFO variant) on the
denser networks produced by large heterogeneous systems.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.flow.network import FlowNetwork

__all__ = ["push_relabel_max_flow"]


def push_relabel_max_flow(network: FlowNetwork, source: int, sink: int) -> int:
    """Compute the maximum ``source``→``sink`` flow in place (FIFO push–relabel)."""
    n = network.num_nodes
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    if not 0 <= sink < n:
        raise ValueError(f"sink {sink} out of range")
    if source == sink:
        raise ValueError("source and sink must differ")

    height: List[int] = [0] * n
    excess: List[int] = [0] * n
    # Count of nodes at each height, for the gap heuristic.
    height_count: List[int] = [0] * (2 * n + 1)
    height[source] = n
    height_count[0] = n - 1
    height_count[n] = 1

    active: deque[int] = deque()
    in_queue = [False] * n

    def _activate(node: int) -> None:
        if not in_queue[node] and node not in (source, sink) and excess[node] > 0:
            in_queue[node] = True
            active.append(node)

    # Saturate all edges out of the source.
    for edge_id in list(network.out_edges(source)):
        residual = network.residual(edge_id)
        if residual > 0:
            target = network.edge_target(edge_id)
            network.push(edge_id, residual)
            excess[target] += residual
            excess[source] -= residual
            _activate(target)

    def _relabel(node: int) -> None:
        """Raise ``node`` to one more than its lowest admissible neighbour."""
        old_height = height[node]
        min_height = 2 * n
        for edge_id in network.out_edges(node):
            if network.residual(edge_id) > 0:
                min_height = min(min_height, height[network.edge_target(edge_id)])
        new_height = min_height + 1 if min_height < 2 * n else 2 * n
        height_count[old_height] -= 1
        height[node] = new_height
        height_count[new_height] += 1
        # Gap heuristic: if no node remains at old_height, every node above
        # it (below n) can never reach the sink again — lift them past n.
        if height_count[old_height] == 0 and old_height < n:
            for v in range(n):
                if v not in (source, sink) and old_height < height[v] <= n:
                    height_count[height[v]] -= 1
                    height[v] = n + 1
                    height_count[n + 1] += 1

    def _discharge(node: int) -> None:
        while excess[node] > 0:
            pushed_any = False
            for edge_id in network.out_edges(node):
                if excess[node] == 0:
                    break
                residual = network.residual(edge_id)
                target = network.edge_target(edge_id)
                if residual > 0 and height[node] == height[target] + 1:
                    amount = min(excess[node], residual)
                    network.push(edge_id, amount)
                    excess[node] -= amount
                    excess[target] += amount
                    _activate(target)
                    pushed_any = True
            if excess[node] > 0:
                if height[node] >= 2 * n:
                    break
                _relabel(node)
                if not pushed_any and height[node] >= 2 * n:
                    break

    while active:
        node = active.popleft()
        in_queue[node] = False
        _discharge(node)
        if excess[node] > 0 and height[node] < 2 * n:
            _activate(node)

    return excess[sink]
