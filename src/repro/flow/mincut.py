"""Min-cut extraction and max-flow/min-cut verification.

After a max flow has been computed the source side of a minimum cut is the
set of nodes reachable from the source in the residual graph.  The paper's
Lemma 1 is exactly the statement that the connection-matching network has
min cut ``|Y|/c``; these helpers let the tests and the obstruction
analysis inspect which request subset ``X`` witnesses an infeasible cut.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

from repro.flow.network import FlowNetwork

__all__ = ["residual_reachable", "min_cut", "cut_capacity", "verify_max_flow_min_cut"]


def residual_reachable(network: FlowNetwork, source: int) -> Set[int]:
    """Nodes reachable from ``source`` through positive-residual edges."""
    if not 0 <= source < network.num_nodes:
        raise ValueError(f"source {source} out of range")
    seen: Set[int] = {source}
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        for edge_id in network.out_edges(node):
            target = network.edge_target(edge_id)
            if target not in seen and network.residual(edge_id) > 0:
                seen.add(target)
                queue.append(target)
    return seen


def min_cut(network: FlowNetwork, source: int, sink: int) -> Tuple[Set[int], List[int]]:
    """Return ``(source_side, cut_edges)`` of a minimum cut.

    Must be called *after* a max flow has been computed on ``network``.
    ``source_side`` is the set of nodes on the source side of the cut and
    ``cut_edges`` the forward edges crossing it (source side → sink side).
    """
    source_side = residual_reachable(network, source)
    if sink in source_side:
        raise ValueError(
            "sink is reachable in the residual graph: the flow on this network "
            "is not maximal (run a max-flow solver first)"
        )
    cut_edges: List[int] = []
    for edge in network.forward_edges():
        if edge.source in source_side and edge.target not in source_side:
            cut_edges.append(edge.edge_id)
    return source_side, cut_edges


def cut_capacity(network: FlowNetwork, source_side: Set[int]) -> int:
    """Total capacity of forward edges leaving ``source_side``."""
    total = 0
    for edge in network.forward_edges():
        if edge.source in source_side and edge.target not in source_side:
            total += edge.capacity
    return total


def verify_max_flow_min_cut(network: FlowNetwork, source: int, sink: int) -> bool:
    """Check the max-flow/min-cut certificate on the current flow state.

    Returns ``True`` iff (i) flow conservation holds, (ii) the sink is not
    residual-reachable, and (iii) the flow value equals the capacity of the
    cut induced by residual reachability — i.e. the current flow really is
    maximal and the cut really is minimal.
    """
    if not network.check_conservation(source, sink):
        return False
    source_side = residual_reachable(network, source)
    if sink in source_side:
        return False
    return network.flow_value(source) == cut_capacity(network, source_side)
