"""Dinic's maximum-flow algorithm.

The default solver used by the per-round connection scheduler: on the
unit-ish bipartite networks produced by the connection-matching reduction
Dinic runs in ``O(E·√V)`` and is in practice far faster than Edmonds–Karp.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.flow.network import FlowNetwork

__all__ = ["dinic_max_flow"]

_INF = float("inf")


def _build_level_graph(
    network: FlowNetwork, source: int, sink: int, level: List[int]
) -> bool:
    """BFS from ``source`` over positive-residual edges; fill ``level``."""
    for i in range(len(level)):
        level[i] = -1
    level[source] = 0
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        for edge_id in network.out_edges(node):
            target = network.edge_target(edge_id)
            if level[target] < 0 and network.residual(edge_id) > 0:
                level[target] = level[node] + 1
                queue.append(target)
    return level[sink] >= 0


def _send_blocking_flow(
    network: FlowNetwork,
    node: int,
    sink: int,
    pushed: int,
    level: List[int],
    next_edge: List[int],
) -> int:
    """DFS with edge pointers; returns the amount of flow pushed."""
    if node == sink:
        return pushed
    edges = network.out_edges(node)
    while next_edge[node] < len(edges):
        edge_id = edges[next_edge[node]]
        target = network.edge_target(edge_id)
        if level[target] == level[node] + 1 and network.residual(edge_id) > 0:
            amount = min(pushed, network.residual(edge_id))
            result = _send_blocking_flow(network, target, sink, amount, level, next_edge)
            if result > 0:
                network.push(edge_id, result)
                return result
        next_edge[node] += 1
    return 0


def dinic_max_flow(network: FlowNetwork, source: int, sink: int) -> int:
    """Compute the maximum ``source``→``sink`` flow in place (Dinic).

    The network's flow state is updated; returns the max-flow value.
    """
    if not 0 <= source < network.num_nodes:
        raise ValueError(f"source {source} out of range")
    if not 0 <= sink < network.num_nodes:
        raise ValueError(f"sink {sink} out of range")
    if source == sink:
        raise ValueError("source and sink must differ")

    total_flow = 0
    level = [-1] * network.num_nodes
    infinity = _int_infinity(network)
    # Iterative deepening over level graphs.
    while _build_level_graph(network, source, sink, level):
        next_edge = [0] * network.num_nodes
        while True:
            pushed = _send_blocking_flow(
                network, source, sink, infinity, level, next_edge
            )
            if pushed == 0:
                break
            total_flow += pushed
    return total_flow


def _int_infinity(network: FlowNetwork) -> int:
    """A finite "infinite" bound: more than any possible flow in the network."""
    total = 1
    for edge in network.forward_edges():
        total += edge.capacity
    return total
