"""Flow-network data structure.

A minimal, array-backed directed flow network with integer capacities.
Every edge is stored together with its residual reverse edge at index
``edge_id ^ 1`` (the classical pairing trick), so all three max-flow
solvers (:mod:`repro.flow.edmonds_karp`, :mod:`repro.flow.dinic`,
:mod:`repro.flow.push_relabel`) share the same residual representation and
min-cut extraction (:mod:`repro.flow.mincut`) works on any of them.

Capacities are integers by design: the connection-matching networks of the
paper have all capacities equal to multiples of ``1/c`` and are scaled by
``c`` (or an LCM for heterogeneous uploads) before being handed to the
solver, so flow conservation and feasibility checks are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.util.validation import check_non_negative_integer

__all__ = ["Edge", "FlowNetwork"]


@dataclass(frozen=True)
class Edge:
    """A view of one directed edge of the network (for inspection)."""

    edge_id: int
    source: int
    target: int
    capacity: int
    flow: int

    @property
    def residual_capacity(self) -> int:
        """Remaining capacity ``capacity − flow``."""
        return self.capacity - self.flow


class FlowNetwork:
    """Directed graph with integer edge capacities and residual edges.

    Parameters
    ----------
    num_nodes:
        Number of nodes, identified ``0 .. num_nodes-1``.

    Notes
    -----
    ``add_edge(s, t, cap)`` creates the forward edge at an even index and
    its residual (capacity 0) reverse edge at the following odd index.
    Solvers mutate the internal ``flow`` list in place; ``reset_flow()``
    restores the zero flow.
    """

    def __init__(self, num_nodes: int):
        self._num_nodes = check_non_negative_integer(num_nodes, "num_nodes")
        self._head: List[List[int]] = [[] for _ in range(self._num_nodes)]
        self._to: List[int] = []
        self._from: List[int] = []
        self._cap: List[int] = []
        self._flow: List[int] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of *forward* edges added with :meth:`add_edge`."""
        return len(self._to) // 2

    def add_node(self) -> int:
        """Append a new node and return its identifier."""
        self._head.append([])
        self._num_nodes += 1
        return self._num_nodes - 1

    def add_edge(self, source: int, target: int, capacity: int) -> int:
        """Add a directed edge and its residual; return the forward edge id."""
        source = check_non_negative_integer(source, "source")
        target = check_non_negative_integer(target, "target")
        if source >= self._num_nodes or target >= self._num_nodes:
            raise ValueError(
                f"edge ({source} -> {target}) references a node outside "
                f"0..{self._num_nodes - 1}"
            )
        if not isinstance(capacity, (int,)) or isinstance(capacity, bool):
            raise TypeError(f"capacity must be an integer, got {capacity!r}")
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        edge_id = len(self._to)
        # forward edge
        self._from.append(source)
        self._to.append(target)
        self._cap.append(int(capacity))
        self._flow.append(0)
        self._head[source].append(edge_id)
        # residual edge
        self._from.append(target)
        self._to.append(source)
        self._cap.append(0)
        self._flow.append(0)
        self._head[target].append(edge_id + 1)
        return edge_id

    # ------------------------------------------------------------------ #
    # Residual-graph primitives used by the solvers
    # ------------------------------------------------------------------ #
    def out_edges(self, node: int) -> List[int]:
        """Edge identifiers (forward and residual) leaving ``node``."""
        return self._head[node]

    def edge_target(self, edge_id: int) -> int:
        """Head node of edge ``edge_id``."""
        return self._to[edge_id]

    def edge_source(self, edge_id: int) -> int:
        """Tail node of edge ``edge_id``."""
        return self._from[edge_id]

    def residual(self, edge_id: int) -> int:
        """Residual capacity of edge ``edge_id``."""
        return self._cap[edge_id] - self._flow[edge_id]

    def push(self, edge_id: int, amount: int) -> None:
        """Push ``amount`` units of flow along ``edge_id`` (and its reverse)."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        if amount > self.residual(edge_id):
            raise ValueError(
                f"cannot push {amount} along edge {edge_id} with residual "
                f"{self.residual(edge_id)}"
            )
        self._flow[edge_id] += amount
        self._flow[edge_id ^ 1] -= amount

    def reset_flow(self) -> None:
        """Reset every edge flow to zero."""
        for i in range(len(self._flow)):
            self._flow[i] = 0

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def edge(self, edge_id: int) -> Edge:
        """Return an immutable view of edge ``edge_id``."""
        if not 0 <= edge_id < len(self._to):
            raise ValueError(f"edge_id {edge_id} out of range")
        return Edge(
            edge_id=edge_id,
            source=self._from[edge_id],
            target=self._to[edge_id],
            capacity=self._cap[edge_id],
            flow=self._flow[edge_id],
        )

    def forward_edges(self) -> Iterator[Edge]:
        """Iterate over the forward edges (even identifiers)."""
        for edge_id in range(0, len(self._to), 2):
            yield self.edge(edge_id)

    def flow_value(self, source: int) -> int:
        """Net flow currently leaving ``source``."""
        total = 0
        for edge_id in self._head[source]:
            if edge_id % 2 == 0:
                total += self._flow[edge_id]
            else:
                total -= self._flow[edge_id]
        return total

    def flow_on(self, edge_id: int) -> int:
        """Flow currently assigned to edge ``edge_id``."""
        return self._flow[edge_id]

    def check_conservation(self, source: int, sink: int) -> bool:
        """Verify flow conservation at every node except ``source``/``sink``."""
        balance = [0] * self._num_nodes
        for edge_id in range(0, len(self._to), 2):
            f = self._flow[edge_id]
            balance[self._from[edge_id]] -= f
            balance[self._to[edge_id]] += f
        return all(
            balance[v] == 0 for v in range(self._num_nodes) if v not in (source, sink)
        )

    def copy(self) -> "FlowNetwork":
        """Deep copy of the network (capacities and current flow)."""
        clone = FlowNetwork(self._num_nodes)
        clone._head = [list(edges) for edges in self._head]
        clone._to = list(self._to)
        clone._from = list(self._from)
        clone._cap = list(self._cap)
        clone._flow = list(self._flow)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlowNetwork(nodes={self._num_nodes}, edges={self.num_edges})"


def build_bipartite_network(
    num_left: int,
    num_right: int,
    edges: List[Tuple[int, int]],
    left_capacities: List[int],
    right_capacities: List[int],
    edge_capacity: int = 1,
) -> Tuple[FlowNetwork, int, int]:
    """Build the standard source/sink flow network for a bipartite b-matching.

    Nodes are laid out ``[source, left_0..left_{L-1}, right_0..right_{R-1},
    sink]``.  Left node ``i`` receives capacity ``left_capacities[i]`` from
    the source, right node ``j`` sends ``right_capacities[j]`` to the sink,
    and each pair in ``edges`` is connected with ``edge_capacity``.

    Returns ``(network, source, sink)``.
    """
    if len(left_capacities) != num_left:
        raise ValueError("left_capacities length must equal num_left")
    if len(right_capacities) != num_right:
        raise ValueError("right_capacities length must equal num_right")
    network = FlowNetwork(num_left + num_right + 2)
    source = 0
    sink = num_left + num_right + 1
    for i, cap in enumerate(left_capacities):
        network.add_edge(source, 1 + i, int(cap))
    for j, cap in enumerate(right_capacities):
        network.add_edge(1 + num_left + j, sink, int(cap))
    for left, right in edges:
        if not 0 <= left < num_left or not 0 <= right < num_right:
            raise ValueError(f"edge ({left}, {right}) out of range")
        network.add_edge(1 + left, 1 + num_left + right, int(edge_capacity))
    return network, source, sink
