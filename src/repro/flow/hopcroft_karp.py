"""Hopcroft–Karp unit-demand b-matching on CSR adjacency.

The per-round connection matching of Section 2.2 is, in the common case,
a *unit-demand* bipartite b-matching: every stripe request (left node)
needs exactly one server, every box (right node) can serve at most
``⌊u_b·c⌋`` requests.  Reducing it to max flow (as
:func:`repro.flow.bipartite.solve_b_matching` historically did) pays for
building a :class:`~repro.flow.network.FlowNetwork` object per round; this
module solves the same problem directly on a CSR (``indptr``/``indices``)
adjacency with a capacitated Hopcroft–Karp:

* a greedy pass matches the easy requests in ``O(E)``;
* alternating BFS/DFS phases augment along shortest paths only
  (``O(E·√V)`` phases bound, as for classical Hopcroft–Karp);
* an optional *warm start* seeds the matching with a previous round's
  assignment, so only the changed part of the instance is re-solved;
* when the instance is infeasible, the final BFS frontier yields the same
  generalized-Hall witness (Lemma 1) the min-cut extraction produced.

The kernel is exact and deterministic: for a fixed instance it always
returns the same assignment (warm starts may change *which* maximum
matching is returned, never its cardinality or feasibility).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AugmentationBudgetExceeded",
    "HKMatchingResult",
    "csr_from_edges",
    "hopcroft_karp_matching",
    "repair_matching",
]

_INF = float("inf")


class AugmentationBudgetExceeded(RuntimeError):
    """The per-call augmentation budget ran out before the deficit cleared.

    Raised by :func:`hopcroft_karp_matching` when ``augmentation_budget``
    is set and resolving the residual deficit would need more
    augmenting-path searches than allowed.  The caller decides what to do
    with the partially-solved instance — the degraded-solver fallback in
    :class:`repro.core.matching.ConnectionMatcher` re-solves it with the
    Dinic max-flow kernel instead of crashing the round.
    """


@dataclass(frozen=True)
class HKMatchingResult:
    """Result of a unit-demand b-matching computation.

    Attributes
    ----------
    feasible:
        Whether every left node was matched.
    assignment:
        ``assignment[i]`` is the right node matched to left node ``i`` or
        ``-1`` when ``i`` was left unmatched.
    matched:
        Number of matched left nodes (the maximum matching cardinality).
    deficient_left:
        Left nodes that remained unmatched (empty when feasible).
    unsatisfied_witness:
        When infeasible, the left nodes reachable from the unmatched ones
        through alternating paths; their joint neighbourhood violates the
        generalized Hall condition.  ``None`` when feasible.
    """

    feasible: bool
    assignment: np.ndarray
    matched: int
    deficient_left: Tuple[int, ...]
    unsatisfied_witness: Optional[Tuple[int, ...]]


def csr_from_edges(
    num_left: int, num_right: int, edges: Sequence[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a left→right CSR adjacency (sorted rows) from an edge list.

    Returns ``(indptr, indices)`` with ``indices[indptr[i]:indptr[i+1]]``
    the right neighbours of left node ``i`` in ascending order (duplicate
    edges are preserved; they are harmless to the kernel).
    """
    arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return np.zeros(num_left + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    arr = arr.reshape(-1, 2)
    left, right = arr[:, 0], arr[:, 1]
    if left.min() < 0 or left.max() >= num_left:
        raise ValueError("edge references a left node out of range")
    if right.min() < 0 or right.max() >= num_right:
        raise ValueError("edge references a right node out of range")
    order = np.lexsort((right, left))
    counts = np.bincount(left, minlength=num_left)
    indptr = np.zeros(num_left + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, right[order]


def _stable_right_order(seq_b: np.ndarray) -> np.ndarray:
    """Stable argsort of right-node ids, radix-friendly when they fit.

    The int32 cast halves the radix passes, but past ``2**31 - 1`` it
    would wrap negative and silently scramble the CSR adoption order —
    so ids beyond int32 take the full-width sort instead of the cast.
    """
    if seq_b.size and int(seq_b.max()) > np.iinfo(np.int32).max:
        return np.argsort(seq_b, kind="stable")
    return np.argsort(seq_b.astype(np.int32), kind="stable")


class _LazyRightMatches:
    """Per-right matched-left lists, materialized on first touch.

    Built from the warm/greedy adoption order as a CSR; a right node's
    mutable list is created only when an augmentation actually visits it,
    so small-deficit rounds touch O(path) lists instead of building all
    ``num_right`` of them.
    """

    __slots__ = ("_num_right", "_indptr", "_lefts", "_rows")

    def __init__(
        self,
        num_right: int,
        warm_i: np.ndarray,
        warm_b: np.ndarray,
        greedy_pairs: List[Tuple[int, int]],
    ):
        self._num_right = num_right
        n_greedy = len(greedy_pairs)
        seq_i = np.empty(warm_i.size + n_greedy, dtype=np.int64)
        seq_b = np.empty(warm_i.size + n_greedy, dtype=np.int64)
        seq_i[: warm_i.size] = warm_i
        seq_b[: warm_i.size] = warm_b
        for k, (i, b) in enumerate(greedy_pairs):
            seq_i[warm_i.size + k] = i
            seq_b[warm_i.size + k] = b
        # Stable sort by right node keeps, per node, the exact adoption
        # order (warm pairs in left order, then greedy first-fits).
        order = _stable_right_order(seq_b)
        self._lefts = seq_i[order]
        counts = np.bincount(seq_b, minlength=num_right) if seq_b.size else np.zeros(
            num_right, dtype=np.int64
        )
        self._indptr = np.zeros(num_right + 1, dtype=np.int64)
        np.cumsum(counts, out=self._indptr[1:])
        self._rows: dict = {}

    def __getitem__(self, j) -> List[int]:
        j = int(j)
        row = self._rows.get(j)
        if row is None:
            row = self._rows[j] = self._lefts[
                self._indptr[j]: self._indptr[j + 1]
            ].tolist()
        return row

    def materialize(self) -> List[List[int]]:
        """All per-right lists (mutations included), for the BFS fallback."""
        return [self[j] for j in range(self._num_right)]


def _kuhn_augment(i0: int, starts, adj, cap, load, match_left, right_matches) -> bool:
    """Single-source augmentation without layering (small deficits).

    Iterative DFS over alternating paths; every full right node is
    expanded at most once, so one call costs O(V + E).  A left for
    which it fails has no augmenting path — and by the standard
    monotonicity lemma never will, whatever else gets augmented.

    Generic over list- and array-backed structures: ``starts``/``adj``/
    ``cap`` are read element-wise, ``load``/``match_left`` are mutated
    element-wise, and ``right_matches[j]`` must yield the mutable list of
    lefts matched to ``j``.
    """
    visited = set()
    # Frame: [left node, current edge index, child position in the
    # current edge's right_matches list (advanced while backtracking)].
    stack: List[List[int]] = [[i0, starts[i0], 0]]
    while stack:
        frame = stack[-1]
        i, e = frame[0], frame[1]
        end = starts[i + 1]
        descended = False
        while e < end:
            j = adj[e]
            if load[j] < cap[j]:
                frame[1] = e
                right_matches[j].append(i)
                load[j] += 1
                match_left[i] = j
                for t in range(len(stack) - 2, -1, -1):
                    fi, fe, fm = stack[t]
                    jt = adj[fe]
                    right_matches[jt][fm] = fi
                    match_left[fi] = jt
                return True
            if j not in visited:
                visited.add(j)
                row = right_matches[j]
                if row:
                    frame[1], frame[2] = e, 0
                    stack.append([row[0], starts[row[0]], 0])
                    descended = True
                    break
            e += 1
        if descended:
            continue
        stack.pop()
        if stack:
            parent = stack[-1]
            pj = adj[parent[1]]
            parent[2] += 1
            row = right_matches[pj]
            if parent[2] < len(row):
                i2 = row[parent[2]]
                stack.append([i2, starts[i2], 0])
            else:
                parent[1] += 1
                parent[2] = 0
    return False


def hopcroft_karp_matching(
    num_left: int,
    num_right: int,
    indptr: Sequence[int],
    indices: Sequence[int],
    right_capacities: Sequence[int],
    initial_assignment: Optional[Sequence[int]] = None,
    augmentation_budget: Optional[int] = None,
) -> HKMatchingResult:
    """Maximum unit-demand b-matching on a CSR bipartite adjacency.

    Parameters
    ----------
    num_left, num_right:
        Sizes of the two sides.
    indptr, indices:
        CSR adjacency: left node ``i`` is adjacent to
        ``indices[indptr[i]:indptr[i+1]]``.
    right_capacities:
        Maximum number of left nodes each right node may be matched to.
    initial_assignment:
        Optional warm start: a previous assignment (``-1`` = unmatched).
        Entries are *validated* — kept only while the right node is still
        adjacent and its capacity is not exhausted — then the kernel
        augments from there.  An arbitrary/stale assignment therefore
        cannot corrupt the result, only speed it up or slow it down.
    augmentation_budget:
        Optional hard cap on the number of augmenting-path searches spent
        *after* the warm-start and greedy passes.  ``None`` (the default)
        means unlimited; when the cap would be exceeded the kernel raises
        :class:`AugmentationBudgetExceeded` instead of finishing, so a
        supervising caller can fall back to another solver.  A budget of
        ``0`` forbids any augmentation: the call raises whenever the
        greedy pass leaves a deficit.
    """
    if augmentation_budget is not None:
        augmentation_budget = int(augmentation_budget)
        if augmentation_budget < 0:
            raise ValueError("augmentation_budget must be non-negative")
    indptr_arr = np.asarray(indptr, dtype=np.int64)
    if indptr_arr.shape != (num_left + 1,):
        raise ValueError("indptr must have num_left + 1 entries")
    indices_arr = np.asarray(indices, dtype=np.int64)
    cap_arr = np.asarray(right_capacities, dtype=np.int64)
    if cap_arr.shape != (num_right,):
        raise ValueError("right_capacities must have one entry per right node")
    if cap_arr.size and int(cap_arr.min()) < 0:
        raise ValueError("right_capacities must be non-negative")

    match_arr = np.full(num_left, -1, dtype=np.int64)
    load_arr = np.zeros(num_right, dtype=np.int64)
    # Per-right matched lefts, in the exact adoption order of the scalar
    # algorithm: warm-validated pairs (ascending left) first, then greedy
    # first-fits.  Only materialized on the (rare) deficit fallback.
    warm_i = warm_b = np.empty(0, dtype=np.int64)
    greedy_pairs: List[Tuple[int, int]] = []

    # Warm start: adopt still-valid pairs of a previous assignment.  A
    # pair survives when the right node is still adjacent and (processing
    # lefts in ascending order) its capacity is not yet exhausted — the
    # vectorized form keeps, per right node, the first cap[b] adjacent
    # candidates in left order, which is the same set the scalar loop kept.
    if initial_assignment is not None:
        warm = np.asarray(initial_assignment, dtype=np.int64)
        if warm.shape != (num_left,):
            raise ValueError("initial_assignment must have one entry per left node")
        in_range = (warm >= 0) & (warm < num_right)
        adjacent = np.zeros(num_left, dtype=bool)
        if indices_arr.size and in_range.any():
            # Membership in one O(E) pass: compare every edge against its
            # row's warm target (out-of-range rows get the impossible -2),
            # then map the few hit edges back to their rows.  This avoids
            # the old dense ``row_of`` index plus two O(E) gathers.
            targets = np.where(in_range, warm, -2)
            hit_edges = indices_arr == np.repeat(targets, np.diff(indptr_arr))
            hit_pos = np.flatnonzero(hit_edges)
            if hit_pos.size:
                hit_rows = np.searchsorted(indptr_arr, hit_pos, side="right") - 1
                adjacent[hit_rows] = True
        candidates = np.flatnonzero(in_range & adjacent)
        if candidates.size:
            cand_b = warm[candidates]
            counts = np.bincount(cand_b, minlength=num_right).astype(np.int64)
            if (counts <= cap_arr).all():
                # Every warm pair fits: adopt them all without the per-box
                # ranking sort.  On a fully valid warm start this is the
                # whole validation, and a maximal warm assignment returns
                # from the greedy early-out without further work.
                warm_i, warm_b = candidates, cand_b
                match_arr[warm_i] = warm_b
                load_arr += counts
            else:
                order = np.argsort(cand_b, kind="stable")
                cand_i = candidates[order]
                cand_b = cand_b[order]
                new_group = np.empty(cand_b.size, dtype=bool)
                new_group[0] = True
                new_group[1:] = cand_b[1:] != cand_b[:-1]
                group_start = np.flatnonzero(new_group)
                group_id = np.cumsum(new_group) - 1
                rank_in_group = (
                    np.arange(cand_b.size, dtype=np.int64) - group_start[group_id]
                )
                keep = rank_in_group < cap_arr[cand_b]
                warm_i, warm_b = cand_i[keep], cand_b[keep]
                match_arr[warm_i] = warm_b
                load_arr += np.bincount(warm_b, minlength=num_right).astype(np.int64)

    # Greedy pass: first-fit for everything still unmatched.  The loop is
    # inherently sequential; the unmatched rows are gathered into plain
    # Python lists once so the inner scan avoids NumPy scalar indexing.
    unmatched = np.flatnonzero(match_arr < 0)
    if unmatched.size:
        row_starts = indptr_arr[unmatched]
        row_lens = (indptr_arr[unmatched + 1] - row_starts).tolist()
        total = int(sum(row_lens))
        if total:
            gather = (
                np.arange(total, dtype=np.int64)
                - np.repeat(np.cumsum([0] + row_lens[:-1]), row_lens)
                + np.repeat(row_starts, row_lens)
            )
            flat_rows = indices_arr[gather].tolist()
        else:
            flat_rows = []
        load = load_arr.tolist()
        cap = cap_arr.tolist()
        offset = 0
        for i, row_len in zip(unmatched.tolist(), row_lens):
            for e in range(offset, offset + row_len):
                j = flat_rows[e]
                if load[j] < cap[j]:
                    match_arr[i] = j
                    load[j] += 1
                    greedy_pairs.append((i, j))
                    break
            offset += row_len
        if greedy_pairs:
            greedy_b = np.fromiter(
                (b for _, b in greedy_pairs), dtype=np.int64, count=len(greedy_pairs)
            )
            load_arr += np.bincount(greedy_b, minlength=num_right).astype(np.int64)

    matched = int((match_arr >= 0).sum())
    if matched == num_left:
        return HKMatchingResult(
            feasible=True,
            assignment=match_arr,
            matched=matched,
            deficient_left=(),
            unsatisfied_witness=None,
        )

    # Deficit remains: fall back to the scalar augmenting machinery on
    # plain-list structures (faster for element-wise traversal), seeded
    # with exactly the state the scalar algorithm would have built.
    starts = indptr_arr.tolist()
    adj: List[int] = indices_arr.tolist()
    cap = cap_arr.tolist()
    match_left = match_arr.tolist()
    load = load_arr.tolist()

    # Small deficits — the typical warm-started round — augment one source
    # at a time with Kuhn, which touches only a small neighbourhood; the
    # per-right matched lists are materialized lazily so the round never
    # pays for all ``num_right`` of them.
    deficit = num_left - matched
    searches_spent = 0

    def _charge_search() -> None:
        nonlocal searches_spent
        searches_spent += 1
        if augmentation_budget is not None and searches_spent > augmentation_budget:
            raise AugmentationBudgetExceeded(
                f"augmentation budget of {augmentation_budget} searches "
                f"exhausted with a deficit of {num_left - matched} left"
            )

    lazy_rm: Optional[_LazyRightMatches] = None
    if 0 < deficit <= max(8, math.isqrt(num_left)):
        lazy_rm = _LazyRightMatches(num_right, warm_i, warm_b, greedy_pairs)
        for i in range(num_left):
            if match_left[i] < 0:
                _charge_search()
                if _kuhn_augment(i, starts, adj, cap, load, match_left, lazy_rm):
                    matched += 1
        if matched == num_left:
            return HKMatchingResult(
                feasible=True,
                assignment=np.asarray(match_left, dtype=np.int64),
                matched=matched,
                deficient_left=(),
                unsatisfied_witness=None,
            )

    if lazy_rm is not None:
        right_matches = lazy_rm.materialize()
    else:
        right_matches = [[] for _ in range(num_right)]
        for i, b in zip(warm_i.tolist(), warm_b.tolist()):
            right_matches[b].append(i)
        for i, b in greedy_pairs:
            right_matches[b].append(i)

    dist: List[float] = [_INF] * num_left

    def bfs() -> float:
        """Layer the lefts by alternating-path distance from the free ones."""
        queue: deque = deque()
        for i in range(num_left):
            if match_left[i] < 0:
                dist[i] = 0
                queue.append(i)
            else:
                dist[i] = _INF
        seen_right = [False] * num_right
        dist_nil = _INF
        while queue:
            i = queue.popleft()
            di = dist[i]
            if di >= dist_nil:
                continue
            dn = di + 1
            for e in range(starts[i], starts[i + 1]):
                j = adj[e]
                if load[j] < cap[j]:
                    if dn < dist_nil:
                        dist_nil = dn
                elif not seen_right[j]:
                    # Expand each full right node once: BFS order guarantees
                    # the first visit assigns the minimal layer.
                    seen_right[j] = True
                    for i2 in right_matches[j]:
                        if dist[i2] == _INF:
                            dist[i2] = dn
                            queue.append(i2)
        return dist_nil

    def augment(i0: int, ptr: List[int], dist_nil: float) -> bool:
        """Iterative layered DFS from free left ``i0``; applies one augmentation."""
        # Frame: [left node, current edge index, position in right_matches].
        stack: List[List[int]] = [[i0, ptr[i0], 0]]
        while stack:
            frame = stack[-1]
            i, e, m = frame
            end = starts[i + 1]
            descended = False
            while e < end:
                j = adj[e]
                layer = dist[i] + 1
                if load[j] < cap[j] and layer == dist_nil:
                    # Free capacity at the frontier layer: augment the path.
                    frame[1] = e
                    right_matches[j].append(i)
                    load[j] += 1
                    match_left[i] = j
                    for t in range(len(stack) - 2, -1, -1):
                        fi, fe, fm = stack[t]
                        jt = adj[fe]
                        # Replace the deeper left (rematched above) in place:
                        # the right node's load is unchanged.
                        right_matches[jt][fm] = fi
                        match_left[fi] = jt
                    return True
                row = right_matches[j]
                while m < len(row):
                    i2 = row[m]
                    if dist[i2] == layer:
                        frame[1], frame[2] = e, m
                        stack.append([i2, ptr[i2], 0])
                        descended = True
                        break
                    m += 1
                if descended:
                    break
                e += 1
                m = 0
            if descended:
                continue
            # Dead end: prune this left for the rest of the phase.
            ptr[i] = end
            dist[i] = _INF
            stack.pop()
            if stack:
                stack[-1][2] += 1
        return False

    while matched < num_left:
        dist_nil = bfs()
        if dist_nil == _INF:
            break
        # Per-left persistent edge pointers (reset at each phase).
        ptr = starts[:num_left]
        for i in range(num_left):
            if match_left[i] < 0:
                _charge_search()
                if augment(i, ptr, dist_nil):
                    matched += 1

    assignment = np.asarray(match_left, dtype=np.int64)
    deficient = tuple(i for i in range(num_left) if match_left[i] < 0)
    witness: Optional[Tuple[int, ...]] = None
    if deficient:
        # ``dist`` holds the final (failed) BFS layering: the lefts reachable
        # from the unmatched ones form the Hall-violating subset, exactly as
        # the min-cut extraction of the flow formulation.
        witness = tuple(i for i in range(num_left) if dist[i] != _INF)
    return HKMatchingResult(
        feasible=not deficient,
        assignment=assignment,
        matched=matched,
        deficient_left=deficient,
        unsatisfied_witness=witness,
    )


# ---------------------------------------------------------------------- #
# Incremental repair
# ---------------------------------------------------------------------- #
def _kuhn_augment_lazy(
    i0: int, get_row, cap, load, has_free, match_left, right_matches,
    pair_expiry, budget: List[int],
) -> Optional[bool]:
    """One shortest-augmenting-path search over lazily materialized rows.

    Plays the role of :func:`_kuhn_augment` in the incremental repair,
    but rows are fetched on demand through ``get_row(i) -> (boxes_array,
    boxes_list, expiry_list)`` instead of a global CSR, so a repair
    touches only the adjacency of the lefts an actual alternating path
    visits.  On success the flipped pairs' expiries are written into
    ``pair_expiry`` so the caller's retirement bookkeeping stays exact.

    The search is breadth-first: each discovered left first sweeps its
    whole row for a box with spare capacity (one vectorized gather of
    the ``has_free`` mask, which the augment step keeps in sync with
    ``load``), and only the fully saturated boxes contribute displaced
    lefts to the frontier.  Under Zipf load the saturated boxes
    cluster, so a depth-first search would plunge through thousands of
    full boxes while a length-3 path (row → full box → displaced left →
    free box) sits one level away; BFS finds it after a handful of row
    scans.  The free-slot test runs at discovery, not at dequeue: the
    last BFS level is by far the widest (popular rows reach thousands
    of displaced lefts), and testing on generation means it is never
    materialized.

    ``budget[0]`` is decremented per discovered left; hitting zero
    aborts with ``None`` (caller falls back to the full kernel) so one
    pathological round cannot cost more than a cold solve.
    """
    # Per discovered left: (predecessor left, box the predecessor reaches
    # it through, expiry of that predecessor edge); ``None`` at the root.
    parent: dict = {i0: None}

    def try_free(u, boxes_arr, boxes, exps):
        # Sweep ``u``'s row for a box with spare capacity; on a hit,
        # augment: ``u`` takes the free slot, every predecessor takes
        # over the slot its displaced left vacates.
        if not boxes_arr.size:
            return False
        mask = has_free[boxes_arr]
        e = int(np.argmax(mask))
        if not mask[e]:
            return False
        j = boxes[e]
        right_matches[j].append(u)
        load[j] += 1
        if load[j] >= cap[j]:
            has_free[j] = False
        match_left[u] = j
        pair_expiry[u] = exps[e]
        cur = u
        link = parent[cur]
        while link is not None:
            p, b, x = link
            siblings = right_matches[b]
            siblings[siblings.index(cur)] = p
            match_left[p] = b
            pair_expiry[p] = x
            cur = p
            link = parent[cur]
        return True

    arr0, row0, exp0 = get_row(i0)
    if try_free(i0, arr0, row0, exp0):
        return True
    visited = set()
    frontier = deque(((i0, row0, exp0),))
    while frontier:
        u, boxes, exps = frontier.popleft()
        for e in range(len(boxes)):
            j = boxes[e]
            if j in visited:
                continue
            visited.add(j)
            x = exps[e]
            for k in right_matches[j]:
                if k in parent:
                    continue
                if budget[0] <= 0:
                    return None
                budget[0] -= 1
                parent[k] = (u, j, x)
                ak, bk, xk = get_row(k)
                if try_free(k, ak, bk, xk):
                    return True
                frontier.append((k, bk, xk))
    return False


def repair_matching(
    num_left: int,
    num_right: int,
    get_row,
    right_capacities: np.ndarray,
    assignment: np.ndarray,
    load: np.ndarray,
    pair_expiry: np.ndarray,
    deficit_rows: Sequence[int],
    search_budget: Optional[int] = None,
) -> bool:
    """Repair a partial matching by augmenting from a small deficit set.

    The resumable entry point of the incremental round path: ``assignment``
    (and the matching ``load``/``pair_expiry`` arrays) hold the survivors
    of the previous round after delta retirement, and ``deficit_rows`` the
    lefts still unmatched.  Each deficit row gets one exhaustive Kuhn
    search through ``get_row`` (lazily materialized adjacency); all three
    arrays are mutated in place.

    Returns ``True`` when every deficit row was matched — the matching is
    then perfect, hence maximum.  Returns ``False`` (without finishing)
    when ``search_budget`` searches would be exceeded, the shared
    displacement budget ran dry, or some row has no augmenting path; the
    caller falls back to the full kernel, which also produces the Hall
    witness on genuinely infeasible rounds.
    """
    deficit_rows = list(deficit_rows)
    if search_budget is not None and len(deficit_rows) > search_budget:
        return False
    matched_i = np.flatnonzero(assignment >= 0)
    right_matches = _LazyRightMatches(
        num_right, matched_i, assignment[matched_i], []
    )
    has_free = load < right_capacities
    # Shared across the round's searches: bounds the total displacement
    # work at roughly the cost of one cold solve, whatever the instance.
    budget = [max(100_000, 16 * len(deficit_rows))]
    for i in deficit_rows:
        if not _kuhn_augment_lazy(
            int(i), get_row, right_capacities, load, has_free, assignment,
            right_matches, pair_expiry, budget,
        ):
            return False
    return True
