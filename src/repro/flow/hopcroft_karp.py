"""Hopcroft–Karp unit-demand b-matching on CSR adjacency.

The per-round connection matching of Section 2.2 is, in the common case,
a *unit-demand* bipartite b-matching: every stripe request (left node)
needs exactly one server, every box (right node) can serve at most
``⌊u_b·c⌋`` requests.  Reducing it to max flow (as
:func:`repro.flow.bipartite.solve_b_matching` historically did) pays for
building a :class:`~repro.flow.network.FlowNetwork` object per round; this
module solves the same problem directly on a CSR (``indptr``/``indices``)
adjacency with a capacitated Hopcroft–Karp:

* a greedy pass matches the easy requests in ``O(E)``;
* alternating BFS/DFS phases augment along shortest paths only
  (``O(E·√V)`` phases bound, as for classical Hopcroft–Karp);
* an optional *warm start* seeds the matching with a previous round's
  assignment, so only the changed part of the instance is re-solved;
* when the instance is infeasible, the final BFS frontier yields the same
  generalized-Hall witness (Lemma 1) the min-cut extraction produced.

The kernel is exact and deterministic: for a fixed instance it always
returns the same assignment (warm starts may change *which* maximum
matching is returned, never its cardinality or feasibility).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "HKMatchingResult",
    "csr_from_edges",
    "hopcroft_karp_matching",
]

_INF = float("inf")


@dataclass(frozen=True)
class HKMatchingResult:
    """Result of a unit-demand b-matching computation.

    Attributes
    ----------
    feasible:
        Whether every left node was matched.
    assignment:
        ``assignment[i]`` is the right node matched to left node ``i`` or
        ``-1`` when ``i`` was left unmatched.
    matched:
        Number of matched left nodes (the maximum matching cardinality).
    deficient_left:
        Left nodes that remained unmatched (empty when feasible).
    unsatisfied_witness:
        When infeasible, the left nodes reachable from the unmatched ones
        through alternating paths; their joint neighbourhood violates the
        generalized Hall condition.  ``None`` when feasible.
    """

    feasible: bool
    assignment: np.ndarray
    matched: int
    deficient_left: Tuple[int, ...]
    unsatisfied_witness: Optional[Tuple[int, ...]]


def csr_from_edges(
    num_left: int, num_right: int, edges: Sequence[Tuple[int, int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Build a left→right CSR adjacency (sorted rows) from an edge list.

    Returns ``(indptr, indices)`` with ``indices[indptr[i]:indptr[i+1]]``
    the right neighbours of left node ``i`` in ascending order (duplicate
    edges are preserved; they are harmless to the kernel).
    """
    arr = np.asarray(list(edges), dtype=np.int64)
    if arr.size == 0:
        return np.zeros(num_left + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    arr = arr.reshape(-1, 2)
    left, right = arr[:, 0], arr[:, 1]
    if left.min() < 0 or left.max() >= num_left:
        raise ValueError("edge references a left node out of range")
    if right.min() < 0 or right.max() >= num_right:
        raise ValueError("edge references a right node out of range")
    order = np.lexsort((right, left))
    counts = np.bincount(left, minlength=num_left)
    indptr = np.zeros(num_left + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, right[order]


def hopcroft_karp_matching(
    num_left: int,
    num_right: int,
    indptr: Sequence[int],
    indices: Sequence[int],
    right_capacities: Sequence[int],
    initial_assignment: Optional[Sequence[int]] = None,
) -> HKMatchingResult:
    """Maximum unit-demand b-matching on a CSR bipartite adjacency.

    Parameters
    ----------
    num_left, num_right:
        Sizes of the two sides.
    indptr, indices:
        CSR adjacency: left node ``i`` is adjacent to
        ``indices[indptr[i]:indptr[i+1]]``.
    right_capacities:
        Maximum number of left nodes each right node may be matched to.
    initial_assignment:
        Optional warm start: a previous assignment (``-1`` = unmatched).
        Entries are *validated* — kept only while the right node is still
        adjacent and its capacity is not exhausted — then the kernel
        augments from there.  An arbitrary/stale assignment therefore
        cannot corrupt the result, only speed it up or slow it down.
    """
    starts = [int(x) for x in indptr]
    if len(starts) != num_left + 1:
        raise ValueError("indptr must have num_left + 1 entries")
    adj: List[int] = (
        indices.tolist() if isinstance(indices, np.ndarray) else [int(x) for x in indices]
    )
    cap = [int(x) for x in right_capacities]
    if len(cap) != num_right:
        raise ValueError("right_capacities must have one entry per right node")
    if any(x < 0 for x in cap):
        raise ValueError("right_capacities must be non-negative")

    match_left = [-1] * num_left
    load = [0] * num_right
    right_matches: List[List[int]] = [[] for _ in range(num_right)]

    # Warm start: adopt still-valid pairs of a previous assignment.
    if initial_assignment is not None:
        warm = (
            initial_assignment.tolist()
            if isinstance(initial_assignment, np.ndarray)
            else list(initial_assignment)
        )
        if len(warm) != num_left:
            raise ValueError("initial_assignment must have one entry per left node")
        for i, b in enumerate(warm):
            b = int(b)
            if b < 0:
                continue
            if not 0 <= b < num_right or load[b] >= cap[b]:
                continue
            # Linear membership scan: rows are short and need not be sorted.
            if b in adj[starts[i]: starts[i + 1]]:
                match_left[i] = b
                load[b] += 1
                right_matches[b].append(i)

    # Greedy pass: first-fit for everything still unmatched.
    for i in range(num_left):
        if match_left[i] >= 0:
            continue
        for e in range(starts[i], starts[i + 1]):
            j = adj[e]
            if load[j] < cap[j]:
                match_left[i] = j
                load[j] += 1
                right_matches[j].append(i)
                break

    matched = sum(1 for b in match_left if b >= 0)
    dist: List[float] = [_INF] * num_left

    def bfs() -> float:
        """Layer the lefts by alternating-path distance from the free ones."""
        queue: deque = deque()
        for i in range(num_left):
            if match_left[i] < 0:
                dist[i] = 0
                queue.append(i)
            else:
                dist[i] = _INF
        seen_right = [False] * num_right
        dist_nil = _INF
        while queue:
            i = queue.popleft()
            di = dist[i]
            if di >= dist_nil:
                continue
            dn = di + 1
            for e in range(starts[i], starts[i + 1]):
                j = adj[e]
                if load[j] < cap[j]:
                    if dn < dist_nil:
                        dist_nil = dn
                elif not seen_right[j]:
                    # Expand each full right node once: BFS order guarantees
                    # the first visit assigns the minimal layer.
                    seen_right[j] = True
                    for i2 in right_matches[j]:
                        if dist[i2] == _INF:
                            dist[i2] = dn
                            queue.append(i2)
        return dist_nil

    def kuhn_augment(i0: int) -> bool:
        """Single-source augmentation without layering (small deficits).

        Iterative DFS over alternating paths; every full right node is
        expanded at most once, so one call costs O(V + E).  A left for
        which it fails has no augmenting path — and by the standard
        monotonicity lemma never will, whatever else gets augmented.
        """
        visited = [False] * num_right
        # Frame: [left node, current edge index, child position in the
        # current edge's right_matches list (advanced while backtracking)].
        stack: List[List[int]] = [[i0, starts[i0], 0]]
        while stack:
            frame = stack[-1]
            i, e = frame[0], frame[1]
            end = starts[i + 1]
            descended = False
            while e < end:
                j = adj[e]
                if load[j] < cap[j]:
                    frame[1] = e
                    right_matches[j].append(i)
                    load[j] += 1
                    match_left[i] = j
                    for t in range(len(stack) - 2, -1, -1):
                        fi, fe, fm = stack[t]
                        jt = adj[fe]
                        right_matches[jt][fm] = fi
                        match_left[fi] = jt
                    return True
                if not visited[j]:
                    visited[j] = True
                    row = right_matches[j]
                    if row:
                        frame[1], frame[2] = e, 0
                        stack.append([row[0], starts[row[0]], 0])
                        descended = True
                        break
                e += 1
            if descended:
                continue
            stack.pop()
            if stack:
                parent = stack[-1]
                pj = adj[parent[1]]
                parent[2] += 1
                row = right_matches[pj]
                if parent[2] < len(row):
                    i2 = row[parent[2]]
                    stack.append([i2, starts[i2], 0])
                else:
                    parent[1] += 1
                    parent[2] = 0
        return False

    def augment(i0: int, ptr: List[int], dist_nil: float) -> bool:
        """Iterative layered DFS from free left ``i0``; applies one augmentation."""
        # Frame: [left node, current edge index, position in right_matches].
        stack: List[List[int]] = [[i0, ptr[i0], 0]]
        while stack:
            frame = stack[-1]
            i, e, m = frame
            end = starts[i + 1]
            descended = False
            while e < end:
                j = adj[e]
                layer = dist[i] + 1
                if load[j] < cap[j] and layer == dist_nil:
                    # Free capacity at the frontier layer: augment the path.
                    frame[1] = e
                    right_matches[j].append(i)
                    load[j] += 1
                    match_left[i] = j
                    for t in range(len(stack) - 2, -1, -1):
                        fi, fe, fm = stack[t]
                        jt = adj[fe]
                        # Replace the deeper left (rematched above) in place:
                        # the right node's load is unchanged.
                        right_matches[jt][fm] = fi
                        match_left[fi] = jt
                    return True
                row = right_matches[j]
                while m < len(row):
                    i2 = row[m]
                    if dist[i2] == layer:
                        frame[1], frame[2] = e, m
                        stack.append([i2, ptr[i2], 0])
                        descended = True
                        break
                    m += 1
                if descended:
                    break
                e += 1
                m = 0
            if descended:
                continue
            # Dead end: prune this left for the rest of the phase.
            ptr[i] = end
            dist[i] = _INF
            stack.pop()
            if stack:
                stack[-1][2] += 1
        return False

    # Small deficits — the typical warm-started round — augment one source
    # at a time without paying for full BFS phases.
    deficit = num_left - matched
    if 0 < deficit <= max(8, math.isqrt(num_left)):
        for i in range(num_left):
            if match_left[i] < 0 and kuhn_augment(i):
                matched += 1

    while matched < num_left:
        dist_nil = bfs()
        if dist_nil == _INF:
            break
        # Per-left persistent edge pointers (reset at each phase).
        ptr = starts[:num_left]
        for i in range(num_left):
            if match_left[i] < 0 and augment(i, ptr, dist_nil):
                matched += 1

    assignment = np.asarray(match_left, dtype=np.int64)
    deficient = tuple(i for i in range(num_left) if match_left[i] < 0)
    witness: Optional[Tuple[int, ...]] = None
    if deficient:
        # ``dist`` holds the final (failed) BFS layering: the lefts reachable
        # from the unmatched ones form the Hall-violating subset, exactly as
        # the min-cut extraction of the flow formulation.
        witness = tuple(i for i in range(num_left) if dist[i] != _INF)
    return HKMatchingResult(
        feasible=not deficient,
        assignment=assignment,
        matched=matched,
        deficient_left=deficient,
        unsatisfied_witness=witness,
    )
