"""Maximum-flow substrate.

The paper reduces the per-round connection problem to a maximum-flow
computation on a bipartite network (Section 2.2–2.3).  This subpackage
implements that substrate from scratch:

* :class:`repro.flow.network.FlowNetwork` — array-backed residual network
  with exact integer capacities;
* three independent max-flow solvers (Edmonds–Karp, Dinic, FIFO
  push–relabel with gap heuristic), cross-checked in the test suite;
* min-cut extraction and max-flow/min-cut certificate verification;
* bipartite b-matching, generalized-Hall-violation search and expansion
  measurement, the exact objects appearing in Lemma 1 and the expander
  argument.
"""

from repro.flow.network import Edge, FlowNetwork, build_bipartite_network
from repro.flow.edmonds_karp import edmonds_karp_max_flow
from repro.flow.dinic import dinic_max_flow
from repro.flow.hopcroft_karp import (
    HKMatchingResult,
    csr_from_edges,
    hopcroft_karp_matching,
)
from repro.flow.push_relabel import push_relabel_max_flow
from repro.flow.mincut import (
    cut_capacity,
    min_cut,
    residual_reachable,
    verify_max_flow_min_cut,
)
from repro.flow.bipartite import (
    BMatchingResult,
    expansion_ratio,
    hall_violations,
    solve_b_matching,
    worst_expansion_subset,
)

__all__ = [
    "Edge",
    "FlowNetwork",
    "build_bipartite_network",
    "edmonds_karp_max_flow",
    "dinic_max_flow",
    "push_relabel_max_flow",
    "HKMatchingResult",
    "csr_from_edges",
    "hopcroft_karp_matching",
    "cut_capacity",
    "min_cut",
    "residual_reachable",
    "verify_max_flow_min_cut",
    "BMatchingResult",
    "expansion_ratio",
    "hall_violations",
    "solve_b_matching",
    "worst_expansion_subset",
]

MAX_FLOW_SOLVERS = {
    "edmonds_karp": edmonds_karp_max_flow,
    "dinic": dinic_max_flow,
    "push_relabel": push_relabel_max_flow,
}
"""Registry of the available max-flow solvers, keyed by name."""
