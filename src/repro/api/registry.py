"""String-keyed registry of pluggable system components.

One registry serves every component *kind* the facade can wire:

===============  ==================================================  =========================
kind             factory signature                                   built-in names
===============  ==================================================  =========================
``solver``       ``f(upload_slots) -> Solver``                       ``hopcroft_karp``,
                                                                     ``dinic``,
                                                                     ``push_relabel``,
                                                                     ``edmonds_karp``
``scheduler``    ``f(catalog, **params) -> RequestScheduler``        ``preloading``,
                                                                     ``immediate``
``workload``     ``f(params, start, mu, rng) -> DemandGenerator``    the 8 scenario kinds
                                                                     plus ``static``
``churn``        ``f(num_boxes, horizon, params, rng)``              ``random``
``population``   ``f(kind_params, rng) -> BoxPopulation``            ``homogeneous``,
                                                                     ``two_class``, ``pareto``
``allocation``   ``f(catalog, population, k, params, rng)``          ``permutation``,
                                                                     ``independent``,
                                                                     ``round_robin``,
                                                                     ``full_replication``
``experiment``   ``f(params) -> rows``                               the campaign runners of
                                                                     :mod:`repro.orchestrate`
===============  ==================================================  =========================

The scenario compiler (:mod:`repro.scenarios.build`) resolves every
stochastic ingredient through this registry, so registering a new
component name makes it immediately usable from :class:`ScenarioSpec`
files, the CLI and the :class:`~repro.api.system.VodSystem` facade alike.
``full_replication`` wires the Push-to-Peer baseline allocation into the
same surface.

Factories must be deterministic given their ``rng`` argument — scenario
replay and golden traces rely on it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.api.errors import ComponentLookupError
from repro.baselines.full_replication import full_replication_allocation
from repro.baselines.hierarchy import hierarchical_cache_allocation, tiered_population
from repro.core.allocation import (
    random_independent_allocation,
    random_permutation_allocation,
    round_robin_allocation,
)
from repro.core.matching import ConnectionMatcher
from repro.core.parameters import (
    homogeneous_population,
    pareto_population,
    two_class_population,
)
from repro.core.preloading import Demand, ImmediateRequestScheduler, PreloadingScheduler
from repro.sim.churn import random_churn_schedule
from repro.workloads.adversarial import (
    ColdStartAdversary,
    LeastReplicatedAdversary,
    MissingVideoAdversary,
)
from repro.workloads.base import StaticDemandSchedule
from repro.workloads.drift import DriftingZipfWorkload, FlashRotationWorkload
from repro.workloads.flashcrowd import FlashCrowdWorkload, StaggeredFlashCrowdWorkload
from repro.workloads.popularity import UniformDemandWorkload, ZipfDemandWorkload
from repro.workloads.sequential import SequentialViewingWorkload
from repro.workloads.trace import TraceDemandWorkload

__all__ = [
    "COMPONENT_KINDS",
    "register_component",
    "component_factory",
    "create_component",
    "available_components",
]

COMPONENT_KINDS = (
    "solver",
    "scheduler",
    "workload",
    "churn",
    "population",
    "allocation",
    "experiment",
    "fault",
)

#: kind -> name -> (factory, description)
_REGISTRY: Dict[str, Dict[str, Tuple[Callable[..., Any], str]]] = {
    kind: {} for kind in COMPONENT_KINDS
}


def _check_kind(kind: str) -> str:
    if kind not in _REGISTRY:
        raise ComponentLookupError(
            f"unknown component kind {kind!r}; kinds: {', '.join(COMPONENT_KINDS)}"
        )
    return kind


def register_component(
    kind: str,
    name: str,
    factory: Callable[..., Any],
    description: str = "",
    overwrite: bool = False,
) -> Callable[..., Any]:
    """Register ``factory`` under ``(kind, name)``; returns the factory.

    Refuses silent redefinitions unless ``overwrite`` is set.
    """
    _check_kind(kind)
    if not name:
        raise ValueError("component name must not be empty")
    if not callable(factory):
        raise TypeError(f"factory for {kind}:{name} must be callable")
    if not overwrite and name in _REGISTRY[kind]:
        raise ValueError(f"component {kind}:{name} is already registered")
    _REGISTRY[kind][name] = (factory, description)
    return factory


def component_factory(kind: str, name: str) -> Callable[..., Any]:
    """Look up the factory registered under ``(kind, name)``."""
    _check_kind(kind)
    try:
        return _REGISTRY[kind][name][0]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY[kind])) or "(none)"
        raise ComponentLookupError(
            f"unknown {kind} component {name!r}; registered: {known}"
        ) from None


def create_component(kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
    """Instantiate the component ``(kind, name)`` with the factory's arguments."""
    return component_factory(kind, name)(*args, **kwargs)


def available_components(kind: Optional[str] = None) -> Dict[str, List[str]]:
    """Registered names, per kind (or only for ``kind`` when given)."""
    kinds = (_check_kind(kind),) if kind is not None else COMPONENT_KINDS
    return {k: sorted(_REGISTRY[k]) for k in kinds}


# ---------------------------------------------------------------------- #
# Built-in solvers
# ---------------------------------------------------------------------- #
def _solver_factory(kernel: str) -> Callable[..., ConnectionMatcher]:
    def build(upload_slots) -> ConnectionMatcher:
        return ConnectionMatcher(upload_slots, solver=kernel)

    build.__name__ = f"build_{kernel}_solver"
    return build


for _kernel, _desc in (
    ("hopcroft_karp", "capacitated Hopcroft–Karp on CSR adjacency (default)"),
    ("dinic", "Dinic max-flow oracle"),
    ("push_relabel", "push–relabel max-flow oracle"),
    ("edmonds_karp", "Edmonds–Karp max-flow oracle"),
):
    register_component("solver", _kernel, _solver_factory(_kernel), _desc)


# ---------------------------------------------------------------------- #
# Built-in schedulers
# ---------------------------------------------------------------------- #
register_component(
    "scheduler",
    "preloading",
    lambda catalog, **params: PreloadingScheduler(catalog, **params),
    "Theorem 1 preloading strategy (1 preload + c−1 postponed requests)",
)
register_component(
    "scheduler",
    "immediate",
    lambda catalog, **params: ImmediateRequestScheduler(catalog),
    "ablation: request all c stripes at the demand round",
)


# ---------------------------------------------------------------------- #
# Built-in workloads (the scenario phase kinds)
# ---------------------------------------------------------------------- #
def _build_zipf(p: Mapping[str, Any], start: int, mu: float, rng):
    return ZipfDemandWorkload(
        arrival_rate=float(p["arrival_rate"]),
        exponent=float(p.get("exponent", 0.8)),
        start_time=start,
        random_state=rng,
    )


def _build_uniform(p: Mapping[str, Any], start: int, mu: float, rng):
    return UniformDemandWorkload(
        arrival_rate=float(p["arrival_rate"]),
        start_time=start,
        random_state=rng,
    )


def _build_flashcrowd(p: Mapping[str, Any], start: int, mu: float, rng):
    max_members = p.get("max_members")
    return FlashCrowdWorkload(
        mu=mu,
        target_videos=tuple(int(v) for v in p.get("target_videos", (0,))),
        start_time=start,
        max_members=None if max_members is None else int(max_members),
        random_state=rng,
    )


def _build_staggered_flashcrowd(p: Mapping[str, Any], start: int, mu: float, rng):
    max_members = p.get("max_members")
    return StaggeredFlashCrowdWorkload(
        mu=mu,
        target_videos=tuple(int(v) for v in p["target_videos"]),
        start_times=tuple(int(t) for t in p["start_times"]),
        max_members=None if max_members is None else int(max_members),
        random_state=rng,
    )


def _build_sequential(p: Mapping[str, Any], start: int, mu: float, rng):
    boxes = p.get("boxes")
    playlist = p.get("playlist")
    return SequentialViewingWorkload(
        boxes=None if boxes is None else tuple(int(b) for b in boxes),
        playlist=None if playlist is None else tuple(int(v) for v in playlist),
        start_time=start,
        random_state=rng,
    )


def _build_missing_video(p: Mapping[str, Any], start: int, mu: float, rng):
    cap = p.get("max_demands_per_round")
    return MissingVideoAdversary(
        start_time=start,
        max_demands_per_round=None if cap is None else int(cap),
        respect_growth=bool(p.get("respect_growth", False)),
        mu=mu,
        random_state=rng,
    )


def _build_least_replicated(p: Mapping[str, Any], start: int, mu: float, rng):
    return LeastReplicatedAdversary(
        mu=mu,
        num_target_videos=int(p.get("num_target_videos", 1)),
        start_time=start,
        random_state=rng,
    )


def _build_cold_start(p: Mapping[str, Any], start: int, mu: float, rng):
    cap = p.get("max_demands_per_round")
    return ColdStartAdversary(
        start_time=start,
        max_demands_per_round=None if cap is None else int(cap),
        random_state=rng,
    )


def _build_drift(p: Mapping[str, Any], start: int, mu: float, rng):
    return DriftingZipfWorkload(
        arrival_rate=float(p["arrival_rate"]),
        exponent=float(p.get("exponent", 0.8)),
        drift_period=int(p.get("drift_period", 8)),
        start_time=start,
        random_state=rng,
    )


def _build_flash_rotation(p: Mapping[str, Any], start: int, mu: float, rng):
    return FlashRotationWorkload(
        arrival_rate=float(p["arrival_rate"]),
        hot_videos=int(p.get("hot_videos", 4)),
        rotation_period=int(p.get("rotation_period", 6)),
        boost=float(p.get("boost", 8.0)),
        start_time=start,
        random_state=rng,
    )


def _build_trace(p: Mapping[str, Any], start: int, mu: float, rng):
    return TraceDemandWorkload(
        trace=str(p["trace"]),
        start_time=start,
        random_state=rng,
    )


def _build_static(p: Mapping[str, Any], start: int, mu: float, rng):
    demands = [
        Demand(time=int(d["time"]), box_id=int(d["box_id"]), video_id=int(d["video_id"]))
        if isinstance(d, Mapping)
        else d
        for d in p["demands"]
    ]
    return StaticDemandSchedule(demands)


for _name, _factory, _desc in (
    ("zipf", _build_zipf, "Poisson arrivals over a Zipf popularity law"),
    ("uniform", _build_uniform, "Poisson arrivals, uniformly popular catalog"),
    ("flashcrowd", _build_flashcrowd, "mu-rate flash crowd on target videos"),
    (
        "staggered_flashcrowd",
        _build_staggered_flashcrowd,
        "several flash crowds with staggered start rounds",
    ),
    ("sequential", _build_sequential, "boxes binge a playlist back to back"),
    ("missing_video", _build_missing_video, "adversary demanding unallocated videos"),
    (
        "least_replicated",
        _build_least_replicated,
        "adaptive adversary flooding the least-replicated videos",
    ),
    ("cold_start", _build_cold_start, "adversary demanding only cold videos"),
    ("drift", _build_drift, "Zipf popularity whose ranks reshuffle on a schedule"),
    (
        "flash_rotation",
        _build_flash_rotation,
        "rotating promoted hot set over a flat catalog",
    ),
    ("trace", _build_trace, "replay a recorded on-disk demand trace"),
    ("static", _build_static, "fixed precomputed demand schedule"),
):
    register_component("workload", _name, _factory, _desc)


# ---------------------------------------------------------------------- #
# Built-in churn models
# ---------------------------------------------------------------------- #
def _build_random_churn(num_boxes: int, horizon: int, params: Mapping[str, Any], rng):
    return random_churn_schedule(
        num_boxes=num_boxes,
        horizon=horizon,
        failure_probability=float(params["failure_probability"]),
        outage_duration=int(params["outage_duration"]),
        random_state=rng,
        protected_boxes=tuple(params.get("protected_boxes", ())),
    )


register_component(
    "churn",
    "random",
    _build_random_churn,
    "independent per-round failures with fixed outage duration",
)


# ---------------------------------------------------------------------- #
# Built-in populations
# ---------------------------------------------------------------------- #
def _build_homogeneous_population(params: Mapping[str, Any], rng):
    return homogeneous_population(
        n=int(params["n"]), u=float(params["u"]), d=float(params["d"])
    )


def _build_two_class_population(params: Mapping[str, Any], rng):
    return two_class_population(
        n=int(params["n"]),
        rich_fraction=float(params["rich_fraction"]),
        u_rich=float(params["u_rich"]),
        u_poor=float(params["u_poor"]),
        d_rich=float(params["d_rich"]),
        d_poor=float(params["d_poor"]),
        random_state=rng,
        shuffle=bool(params.get("shuffle", False)),
    )


def _build_pareto_population(params: Mapping[str, Any], rng):
    u_cap = params.get("u_cap")
    return pareto_population(
        n=int(params["n"]),
        u_min=float(params["u_min"]),
        shape=float(params["shape"]),
        storage_per_upload=float(params["storage_per_upload"]),
        u_cap=None if u_cap is None else float(u_cap),
        random_state=rng,
    )


def _build_tiered_population(params: Mapping[str, Any], rng):
    return tiered_population(params)


for _name, _factory, _desc in (
    ("homogeneous", _build_homogeneous_population, "identical (u, d) boxes"),
    ("two_class", _build_two_class_population, "rich/poor upload tiers"),
    ("pareto", _build_pareto_population, "truncated-Pareto upload distribution"),
    (
        "tiered",
        _build_tiered_population,
        "CDN / vCDN / µCDN / client capacity hierarchy",
    ),
):
    register_component("population", _name, _factory, _desc)


# ---------------------------------------------------------------------- #
# Built-in allocations (paper schemes + the full-replication baseline)
# ---------------------------------------------------------------------- #
def _build_permutation_allocation(catalog, population, k, params: Mapping[str, Any], rng):
    return random_permutation_allocation(catalog, population, k, random_state=rng)


def _build_independent_allocation(catalog, population, k, params: Mapping[str, Any], rng):
    return random_independent_allocation(
        catalog,
        population,
        k,
        random_state=rng,
        on_full=str(params.get("on_full", "redraw")),
    )


def _build_round_robin_allocation(catalog, population, k, params: Mapping[str, Any], rng):
    return round_robin_allocation(
        catalog, population, k, offset=int(params.get("offset", 0))
    )


def _build_full_replication_allocation(
    catalog, population, k, params: Mapping[str, Any], rng
):
    return full_replication_allocation(catalog, population, replicas_per_stripe=k)


def _build_hierarchical_cache_allocation(
    catalog, population, k, params: Mapping[str, Any], rng
):
    return hierarchical_cache_allocation(
        catalog, population, k, params=params, random_state=rng
    )


for _name, _factory, _desc in (
    ("permutation", _build_permutation_allocation, "random permutation over storage slots"),
    ("independent", _build_independent_allocation, "independent storage-weighted draws"),
    ("round_robin", _build_round_robin_allocation, "deterministic round-robin control"),
    (
        "full_replication",
        _build_full_replication_allocation,
        "Push-to-Peer baseline: every box stores a stripe of every video",
    ),
    (
        "hierarchical_cache",
        _build_hierarchical_cache_allocation,
        "CDN origin copy plus tier-preferred whole-video helper caches",
    ),
):
    register_component("allocation", _name, _factory, _desc)
