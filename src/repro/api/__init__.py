"""repro.api — the canonical service layer of the reproduction.

The paper's model is online: demands arrive every round and the Lemma 1
matching is re-solved incrementally.  This package exposes that loop as a
service-shaped surface:

* :class:`VodSystem` — configure → allocate → open sessions facade over
  one deployment (catalog, population, allocation, growth bound);
* :class:`VodSession` — stepwise lifecycle with online admission
  (:meth:`~VodSession.submit_demands`), per-round :class:`RoundReport`
  results, deterministic :meth:`~VodSession.snapshot` /
  :meth:`VodSession.restore` checkpoints and live reconfiguration
  (:meth:`~VodSession.add_videos`, :meth:`~VodSession.join_boxes`,
  :meth:`~VodSession.set_capacity`);
* a string-keyed component registry (:func:`register_component`,
  :func:`create_component`, :func:`available_components`) with
  :mod:`typing.Protocol` interfaces (:class:`Solver`,
  :class:`RequestScheduler`, :class:`DemandGenerator`,
  :class:`ChurnModel`) so solvers, schedulers, workloads, churn models,
  populations and allocation schemes are pluggable by name;
* typed errors (:class:`SessionClosedError`, :class:`AdmissionError`)
  instead of silent mis-counting.

Batch ``VodSimulator.run`` and session stepping share one per-round code
path, so the two execution styles are bit-identical on the same workload
(the golden-trace suite pins this).
"""

from repro.api.errors import (
    AdmissionError,
    ApiError,
    ComponentLookupError,
    SessionClosedError,
    SnapshotFormatError,
    SnapshotIntegrityError,
)
from repro.api.protocols import (
    ChurnModel,
    DemandGenerator,
    RequestScheduler,
    Solver,
)
from repro.api.registry import (
    COMPONENT_KINDS,
    available_components,
    component_factory,
    create_component,
    register_component,
)
from repro.api.session import RoundReport, SessionSnapshot, VodSession
from repro.api.system import VodSystem

__all__ = [
    "ApiError",
    "SessionClosedError",
    "AdmissionError",
    "ComponentLookupError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "Solver",
    "RequestScheduler",
    "DemandGenerator",
    "ChurnModel",
    "COMPONENT_KINDS",
    "register_component",
    "component_factory",
    "create_component",
    "available_components",
    "RoundReport",
    "SessionSnapshot",
    "VodSession",
    "VodSystem",
]
