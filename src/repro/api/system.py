"""The `VodSystem` facade: configure → allocate → open sessions.

One object owns the static side of a simulated deployment — catalog, box
population, replica allocation, growth bound — and stamps out engines,
batch runs and stepwise :class:`~repro.api.session.VodSession` handles
from it.  Every component is resolvable by name through the
:mod:`repro.api.registry`, so a system can be described entirely with
strings and parameter dicts:

>>> from repro.api import VodSystem
>>> system = VodSystem.configure(
...     catalog={"num_videos": 16, "num_stripes": 4, "duration": 12},
...     population=("homogeneous", {"n": 32, "u": 2.0, "d": 3.0}),
...     mu=1.5,
... )
>>> _ = system.allocate("permutation", replicas_per_stripe=4, seed=7)
>>> session = system.open_session(workload=("zipf", {"arrival_rate": 3.0}),
...                               workload_seed=1, horizon=8)
>>> report = session.step()
>>> report.feasible
True

The scenario compiler, the Monte-Carlo harness and the baselines all
construct their engines through this facade, so it is the single
construction path of the codebase.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.errors import ApiError
from repro.api.registry import component_factory, create_component
from repro.api.session import VodSession
from repro.core.allocation import Allocation
from repro.core.parameters import BoxPopulation
from repro.core.video import Catalog
from repro.sim.engine import SimulationResult, VodSimulator
from repro.workloads.base import DemandGenerator

__all__ = ["VodSystem"]

#: A workload argument: a generator, or a ``(name, params)`` registry spec.
WorkloadSpec = Union[DemandGenerator, Tuple[str, Mapping[str, Any]], None]


def _as_rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class VodSystem:
    """Facade over one simulated VoD deployment.

    Parameters
    ----------
    catalog:
        The video catalog (``m`` videos of ``c`` stripes, duration ``T``).
    population:
        The box population (per-box upload/storage).
    mu:
        Swarm-growth bound runs are measured against.
    """

    def __init__(
        self,
        catalog: Catalog,
        population: BoxPopulation,
        mu: float = 1.5,
    ):
        self._catalog = catalog
        self._population = population
        self._mu = float(mu)
        self._allocation: Optional[Allocation] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def configure(
        cls,
        catalog: Union[Catalog, Mapping[str, Any]],
        population: Union[BoxPopulation, Tuple[str, Mapping[str, Any]]],
        mu: float = 1.5,
        population_seed=None,
    ) -> "VodSystem":
        """Build a system from declarative component specs.

        ``catalog`` may be a :class:`Catalog` or a mapping with
        ``num_videos``/``num_stripes``/``duration``; ``population`` may be a
        :class:`BoxPopulation` or a ``(kind, params)`` pair resolved through
        the component registry (seeded by ``population_seed``).
        """
        if not isinstance(catalog, Catalog):
            catalog = Catalog(
                num_videos=int(catalog["num_videos"]),
                num_stripes=int(catalog["num_stripes"]),
                duration=int(catalog.get("duration", 120)),
            )
        if not isinstance(population, BoxPopulation):
            kind, params = population
            population = create_component(
                "population", str(kind), dict(params), _as_rng(population_seed)
            )
        return cls(catalog=catalog, population=population, mu=mu)

    @classmethod
    def for_allocation(cls, allocation: Allocation, mu: float = 1.5) -> "VodSystem":
        """Wrap an already-drawn allocation (catalog/population implied)."""
        system = cls(
            catalog=allocation.catalog,
            population=allocation.population,
            mu=mu,
        )
        system._allocation = allocation
        return system

    @classmethod
    def from_scenario(cls, scenario, seed: Optional[int] = None):
        """Compile a registered scenario (name or spec) through the facade.

        Returns the :class:`~repro.scenarios.build.CompiledScenario`, whose
        ``system`` attribute is the facade and whose ``session()`` method
        opens a stepwise session over the compiled run.
        """
        from repro.scenarios.build import build_scenario
        from repro.scenarios.registry import get_scenario

        spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
        return build_scenario(spec, seed=seed)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def catalog(self) -> Catalog:
        """The video catalog."""
        return self._catalog

    @property
    def population(self) -> BoxPopulation:
        """The box population."""
        return self._population

    @property
    def mu(self) -> float:
        """The swarm-growth bound."""
        return self._mu

    @property
    def allocation(self) -> Optional[Allocation]:
        """The current allocation (``None`` before :meth:`allocate`)."""
        return self._allocation

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate(
        self,
        scheme: str = "permutation",
        replicas_per_stripe: int = 2,
        seed=None,
        **params: Any,
    ) -> Allocation:
        """Draw and adopt a replica allocation through the registry.

        ``scheme`` is any registered allocation component (including the
        ``full_replication`` baseline); extra keyword arguments are passed
        to the scheme factory as its parameter dict.
        """
        allocation = create_component(
            "allocation",
            scheme,
            self._catalog,
            self._population,
            int(replicas_per_stripe),
            dict(params),
            _as_rng(seed),
        )
        self._allocation = allocation
        return allocation

    def adopt_allocation(self, allocation: Allocation) -> Allocation:
        """Adopt an externally drawn allocation (must match the system).

        The engine derives per-box capacities from the *allocation's*
        population, so the check compares the actual upload/storage vectors
        — a same-sized population with different capacities would silently
        change what the facade reports versus what the engine enforces.
        """
        if allocation.catalog is not self._catalog and (
            allocation.catalog.num_videos != self._catalog.num_videos
            or allocation.catalog.num_stripes_per_video
            != self._catalog.num_stripes_per_video
            or allocation.catalog.duration != self._catalog.duration
        ):
            raise ApiError("allocation catalog does not match the system catalog")
        theirs = allocation.population
        if theirs is not self._population and (
            theirs.n != self._population.n
            or not np.array_equal(theirs.uploads, self._population.uploads)
            or not np.array_equal(theirs.storages, self._population.storages)
        ):
            raise ApiError("allocation population does not match the system population")
        self._allocation = allocation
        return allocation

    # ------------------------------------------------------------------ #
    # Engines, sessions, batch runs
    # ------------------------------------------------------------------ #
    def build_simulator(
        self,
        scheduler: Union[str, object, None] = None,
        compensation_plan=None,
        record_connections: bool = False,
        stop_on_infeasible: bool = False,
        churn=None,
        warm_start: bool = True,
        solver: str = "hopcroft_karp",
        round_observer=None,
        trace_level: str = "full",
        n_shards: Optional[int] = None,
        shard_host: str = "process",
        shard_random_state=None,
        shard_checkpoint_every: int = 8,
        engine: str = "round",
        event_random_state=None,
    ) -> VodSimulator:
        """Construct the round engine over the adopted allocation.

        This is the facade's single engine-construction path — the scenario
        compiler, the Monte-Carlo harness and the session API all come
        through here.  ``scheduler`` may be a registered scheduler name, a
        ready component, or ``None`` for the paper's preloading strategy;
        ``solver`` any registered solver name — including names registered
        by the caller, whose factories are invoked to build the matcher.

        Passing ``n_shards`` returns the sharded multi-process engine
        (:class:`~repro.shard.ShardedVodSimulator`): the box space is
        partitioned across that many worker shards (``shard_host``
        ``"process"`` or ``"inline"``), digest-identical to the
        single-process engine on the same inputs.

        ``engine`` selects the clock: ``"round"`` (default) is the paper's
        round engine; ``"event"`` returns the continuous-time
        :class:`~repro.events.EventDrivenVodSimulator` — round records
        stay bit-identical, and per-request admission-latency and
        startup-delay percentiles are additionally reported.
        ``event_random_state`` seeds the intra-round arrival offsets (the
        only randomness the event layer consumes).
        """
        if self._allocation is None:
            raise ApiError(
                "no allocation adopted yet: call allocate(...) or "
                "adopt_allocation(...) first"
            )
        if engine not in ("round", "event"):
            raise ApiError(
                f"engine must be 'round' or 'event', got {engine!r}"
            )
        if engine == "event" and n_shards is not None:
            raise ApiError(
                "the event-driven engine does not support sharded execution "
                "yet: pass engine='round' with n_shards, or drop n_shards"
            )
        # Resolve through the registry (failing early, with the registry's
        # name list, on unknown kernels) and hand the engine the factory so
        # custom registered solvers actually get constructed.
        solver_factory = component_factory("solver", solver)
        if isinstance(scheduler, str):
            scheduler = create_component("scheduler", scheduler, self._catalog)
        if n_shards is not None:
            from repro.shard import ShardedVodSimulator

            return ShardedVodSimulator(
                self._allocation,
                mu=self._mu,
                scheduler=scheduler,
                compensation_plan=compensation_plan,
                record_connections=record_connections,
                stop_on_infeasible=stop_on_infeasible,
                churn=churn,
                warm_start=warm_start,
                solver=solver_factory,
                round_observer=round_observer,
                trace_level=trace_level,
                n_shards=int(n_shards),
                shard_host=shard_host,
                shard_random_state=shard_random_state,
                shard_checkpoint_every=shard_checkpoint_every,
            )
        if engine == "event":
            # Imported lazily: the event package is only paid for when used.
            from repro.events.engine import EventDrivenVodSimulator

            return EventDrivenVodSimulator(
                self._allocation,
                mu=self._mu,
                scheduler=scheduler,
                compensation_plan=compensation_plan,
                record_connections=record_connections,
                stop_on_infeasible=stop_on_infeasible,
                churn=churn,
                warm_start=warm_start,
                solver=solver_factory,
                round_observer=round_observer,
                trace_level=trace_level,
                event_random_state=event_random_state,
            )
        return VodSimulator(
            self._allocation,
            mu=self._mu,
            scheduler=scheduler,
            compensation_plan=compensation_plan,
            record_connections=record_connections,
            stop_on_infeasible=stop_on_infeasible,
            churn=churn,
            warm_start=warm_start,
            solver=solver_factory,
            round_observer=round_observer,
            trace_level=trace_level,
        )

    def _resolve_workload(
        self, workload: WorkloadSpec, workload_seed
    ) -> Optional[DemandGenerator]:
        if workload is None or isinstance(workload, DemandGenerator):
            return workload
        if isinstance(workload, tuple) and len(workload) == 2:
            name, params = workload
            params = dict(params)
            # Same parameter semantics as the scenario compiler: an explicit
            # params["mu"] overrides the system growth bound.
            return create_component(
                "workload",
                str(name),
                params,
                int(params.get("start", 0)),
                float(params.get("mu", self._mu)),
                _as_rng(workload_seed),
            )
        raise ApiError(
            "workload must be a DemandGenerator, a (name, params) registry "
            f"spec, or None; got {workload!r}"
        )

    def open_session(
        self,
        workload: WorkloadSpec = None,
        horizon: Optional[int] = None,
        workload_seed=None,
        **engine_kwargs: Any,
    ) -> VodSession:
        """Open a stepwise :class:`VodSession` on a fresh engine.

        ``workload`` optionally names a background demand generator (object
        or ``(name, params)`` registry spec, seeded by ``workload_seed``);
        without one the session is driven purely by
        :meth:`VodSession.submit_demands`.  Engine keyword arguments are
        forwarded to :meth:`build_simulator`.
        """
        generator = self._resolve_workload(workload, workload_seed)
        engine = self.build_simulator(**engine_kwargs)
        return VodSession(engine, workload=generator, horizon=horizon)

    def run(
        self,
        workload: WorkloadSpec,
        num_rounds: int,
        workload_seed=None,
        **engine_kwargs: Any,
    ) -> SimulationResult:
        """Batch-run a fresh engine for ``num_rounds`` (thin convenience)."""
        generator = self._resolve_workload(workload, workload_seed)
        if generator is None:
            raise ApiError("run() requires a workload")
        return self.build_simulator(**engine_kwargs).run(generator, num_rounds)

    def __repr__(self) -> str:  # pragma: no cover
        alloc = "unallocated" if self._allocation is None else self._allocation.scheme
        return (
            f"VodSystem(m={self._catalog.num_videos}, "
            f"c={self._catalog.num_stripes_per_video}, "
            f"n={self._population.n}, mu={self._mu}, allocation={alloc})"
        )
