"""Typed errors raised by the service layer.

The session API never mis-counts silently: driving a closed session or
submitting an inadmissible demand raises one of the exceptions below, so
external callers (services, schedulers, admission controllers) can react
per error class instead of parsing messages.
"""

from __future__ import annotations

__all__ = [
    "ApiError",
    "SessionClosedError",
    "AdmissionError",
    "ComponentLookupError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
]


class ApiError(RuntimeError):
    """Base class of every error raised by :mod:`repro.api`."""


class SessionClosedError(ApiError):
    """The session's horizon is exhausted or it was closed explicitly."""


class AdmissionError(ApiError):
    """A submitted demand cannot be admitted.

    Raised when the target box is still playing a video, is offline under
    the churn schedule, already has a demand queued for the next round, or
    the demand references a box/video outside the system.
    """


class ComponentLookupError(ApiError, KeyError):
    """An unknown component name/kind was requested from the registry."""


class SnapshotFormatError(ApiError, ValueError):
    """A session snapshot was recorded under an incompatible format version,
    or the bytes handed to :meth:`SessionSnapshot.from_file` are not a
    snapshot at all.

    Snapshot payloads pickle the engine's internal state; a payload from a
    different ``SNAPSHOT_FORMAT_VERSION`` cannot be deserialized into the
    current engine layout and must be re-recorded from a fresh run.
    """


class SnapshotIntegrityError(SnapshotFormatError):
    """A snapshot file or payload is truncated or corrupt.

    Raised instead of a raw ``UnpicklingError``/``EOFError`` when a
    checkpoint was torn mid-write, truncated on disk, or its payload does
    not match the checksum recorded at :meth:`VodSession.snapshot` time.
    The snapshot must be discarded; restore from an intact checkpoint.
    """
