"""Stepwise simulation sessions with checkpoint/restore.

The paper's model is online: demands arrive every round and the Lemma 1
matching is re-solved incrementally.  :class:`VodSession` exposes that
loop one round at a time on top of the exact per-round path batch
``VodSimulator.run`` uses, so stepwise and batch executions of the same
workload are bit-identical:

* :meth:`VodSession.submit_demands` — admission-checked external demand
  injection (typed :class:`~repro.api.errors.AdmissionError` on a busy or
  offline box), merged ahead of the session's background workload;
* :meth:`VodSession.step` / :meth:`VodSession.step_until` — execute rounds
  and receive structured :class:`RoundReport` records
  (:class:`~repro.api.errors.SessionClosedError` past the horizon);
* :meth:`VodSession.snapshot` / :meth:`VodSession.restore` — full
  deterministic state capture (clock, swarms, caches, possession index,
  RNG streams, warm-start assignment, pending requests) as one opaque
  blob; restoring and stepping reproduces an uninterrupted run bit for
  bit, for every solver;
* :meth:`VodSession.add_videos` / :meth:`VodSession.join_boxes` /
  :meth:`VodSession.set_capacity` — live reconfiguration between rounds.
"""

from __future__ import annotations

import hashlib
import json
import pickle

import numpy as np
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.errors import (
    AdmissionError,
    SessionClosedError,
    SnapshotFormatError,
    SnapshotIntegrityError,
)
from repro.core.preloading import Demand
from repro.sim.engine import SimulationResult, VodSimulator
from repro.sim.metrics import RoundStats
from repro.workloads.base import DemandGenerator, SystemView

__all__ = ["RoundReport", "SessionSnapshot", "VodSession"]

#: Bump when the snapshot payload layout changes.  Version history:
#: 1 — object-graph engine state (per-request/per-member Python objects);
#: 2 — struct-of-arrays engine core (NumPy request pool, download log,
#:     swarm entry logs, demand log).  Version-1 payloads pickle classes
#:     whose layout no longer exists, so loading one raises a typed
#:     :class:`~repro.api.errors.SnapshotFormatError` instead of
#:     deserializing into a torn engine.
SNAPSHOT_FORMAT_VERSION = 2


@dataclass(frozen=True)
class RoundReport:
    """Structured outcome of one stepped round.

    The first eight fields mirror the engine's
    :class:`~repro.sim.metrics.RoundStats` (serialization and the
    batch-parity view derive from it generically — adding a stats field
    flows through automatically); the rest are session-only.  All
    fields are native Python scalars; :meth:`to_dict` output feeds
    ``json.dumps`` directly, which is what external services log.
    """

    #: Round the report describes.
    time: int
    #: Active stripe requests handed to the matcher.
    active_requests: int
    #: Stripe requests newly issued this round.
    new_requests: int
    #: Requests served by the matching.
    matched: int
    #: Requests left unserved (0 in a feasible round).
    unmatched: int
    #: Whether the round's matching was feasible (Lemma 1 held).
    feasible: bool
    #: Upload slots used across all boxes.
    upload_used: int
    #: Aggregate per-round upload capacity.
    upload_capacity: int
    #: Demands injected through :meth:`VodSession.submit_demands`.
    demands_injected: int
    #: Demands the engine rejected this round (busy boxes).
    demands_rejected: int
    #: Playbacks that started as of this round.
    playback_starts: int
    #: Boxes offline under churn this round.
    offline_boxes: int
    #: 1 when the round was solved through the degraded fallback chain
    #: (augmentation budget exhausted → Dinic re-solve), 0 otherwise.
    #: Serialized only when set, so fault-free digests are unchanged.
    degraded: int = 0
    #: 1 when the incremental repair path gave up on its search budget and
    #: the round fell back to the full matching kernel, 0 otherwise.
    #: Serialized only when set (same digest-stability rule as ``degraded``).
    repair_fallback: int = 0
    #: Shard worker processes the sharded engine rebuilt from checkpoint
    #: during this round (always 0 single-process).  Serialized only when
    #: set (same digest-stability rule as ``degraded``).
    shard_restarts: int = 0
    #: Per-request latency percentiles of this round, reported only by the
    #: event-driven engine (:mod:`repro.events`): the continuous time from
    #: a demand's arrival to its admission boundary, and from arrival to
    #: playback start.  ``None`` on round-engine steps and on rounds with
    #: no accepted demand / no playback start; serialized only when set,
    #: so round-engine digests are unchanged.
    admission_latency_p50: Optional[float] = None
    admission_latency_p99: Optional[float] = None
    startup_delay_p50: Optional[float] = None
    startup_delay_p99: Optional[float] = None

    @property
    def utilization(self) -> float:
        """Fraction of the aggregate upload capacity in use."""
        if self.upload_capacity == 0:
            return 0.0
        return self.upload_used / self.upload_capacity

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready plain-dict form (round-trips through :meth:`from_dict`)."""
        payload = self.to_round_stats().to_dict()
        for name in _SESSION_ONLY_FIELDS:
            payload[name] = int(getattr(self, name))
        for flag in ("degraded", "repair_fallback", "shard_restarts"):
            if not payload[flag]:
                # Only rounds that tripped the flag serialize it: digests of
                # fault-free runs are byte-identical to earlier recordings.
                del payload[flag]
        for name in _LATENCY_FIELDS:
            value = getattr(self, name)
            if value is not None:
                # Event-engine rounds only: round-engine payloads keep
                # their historical key set.
                payload[name] = float(value)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoundReport":
        """Rebuild from :meth:`to_dict` output (tolerates absent flags)."""
        return cls.from_round_stats(
            RoundStats.from_dict(data),
            **{name: int(data.get(name, 0)) for name in _SESSION_ONLY_FIELDS},
            **{
                name: None if data.get(name) is None else float(data[name])
                for name in _LATENCY_FIELDS
            },
        )

    @classmethod
    def from_round_stats(cls, stats: RoundStats, **session_fields: int) -> "RoundReport":
        """Build a report from engine stats plus the session-only fields."""
        stats = RoundStats.from_dict(stats.to_dict())  # coerce numpy → native
        kwargs = {name: getattr(stats, name) for name in _ROUND_STATS_FIELDS}
        kwargs.update(session_fields)
        return cls(**kwargs)

    @property
    def digest(self) -> str:
        """SHA-256 digest of the canonical JSON form (replay comparisons)."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_round_stats(self) -> RoundStats:
        """The engine-level :class:`RoundStats` view of this round.

        The single comparison point for batch-vs-stepwise parity checks
        (CLI, golden tests, the overhead benchmark): a stepped round's
        report must equal ``run()``'s recorded stats field for field.
        """
        return RoundStats(**{name: getattr(self, name) for name in _ROUND_STATS_FIELDS})


#: Optional per-round latency percentiles (event-engine steps only).
_LATENCY_FIELDS = (
    "admission_latency_p50",
    "admission_latency_p99",
    "startup_delay_p50",
    "startup_delay_p99",
)

#: RoundReport = the engine's RoundStats fields + these session-only ones
#: (all integer counters; the optional latency floats are kept separate).
_ROUND_STATS_FIELDS = tuple(f.name for f in fields(RoundStats))
_SESSION_ONLY_FIELDS = tuple(
    f.name
    for f in fields(RoundReport)
    if f.name not in _ROUND_STATS_FIELDS and f.name not in _LATENCY_FIELDS
)


@dataclass(frozen=True)
class SessionSnapshot:
    """Opaque, restorable capture of a session's full deterministic state.

    The payload pickles the session object graph — engine (clock, swarms,
    playback/relay caches, possession index, warm-start assignments,
    pending postponed requests, metrics, trace), background workload with
    its RNG streams, and queued injected demands — so
    :meth:`VodSession.restore` continues exactly where the capture was
    taken.  A snapshot can be restored any number of times; restores are
    independent sessions.  Round observers are *not* captured (they may
    close over live resources) and must be re-attached after restore.
    """

    payload: bytes
    #: Round at which the snapshot was taken (the next round to execute).
    time: int
    #: Rounds completed when the snapshot was taken.
    rounds_completed: int
    format_version: int = SNAPSHOT_FORMAT_VERSION
    #: SHA-256 of ``payload``, recorded at :meth:`VodSession.snapshot`
    #: time; :meth:`VodSession.restore` re-verifies it so a corrupted
    #: in-memory or on-disk payload fails with a typed error.  Empty on
    #: snapshots recorded before checksums existed (then unverified).
    payload_sha256: str = ""

    def to_file(self, path: Union[str, Path]) -> Path:
        """Persist the snapshot to ``path`` (checkpoint files).

        The file is framed — magic, pickle length and a SHA-256 over the
        pickled snapshot — so :meth:`from_file` detects truncated or torn
        checkpoint files instead of unpickling garbage.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(body).digest()
        path.write_bytes(
            _SNAPSHOT_MAGIC + len(body).to_bytes(8, "big") + digest + body
        )
        return path

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SessionSnapshot":
        """Load a snapshot previously written with :meth:`to_file`.

        Raises :class:`~repro.api.errors.SnapshotIntegrityError` when the
        file is truncated or its checksum does not match (torn write,
        bit rot), and :class:`~repro.api.errors.SnapshotFormatError` when
        it is not a snapshot file at all or was recorded under a different
        snapshot format version — the payload pickles the engine's
        internal state, which is not migratable across layout changes;
        re-record the checkpoint from a fresh run instead.
        """
        raw = Path(path).read_bytes()
        if raw.startswith(_SNAPSHOT_MAGIC):
            header_len = len(_SNAPSHOT_MAGIC) + 8 + 32
            if len(raw) < header_len:
                raise SnapshotIntegrityError(
                    f"snapshot {path} is truncated: incomplete header "
                    f"({len(raw)} bytes)"
                )
            body_len = int.from_bytes(
                raw[len(_SNAPSHOT_MAGIC): len(_SNAPSHOT_MAGIC) + 8], "big"
            )
            digest = raw[len(_SNAPSHOT_MAGIC) + 8: header_len]
            body = raw[header_len:]
            if len(body) != body_len:
                raise SnapshotIntegrityError(
                    f"snapshot {path} is truncated: expected {body_len} "
                    f"payload bytes, found {len(body)}"
                )
            if hashlib.sha256(body).digest() != digest:
                raise SnapshotIntegrityError(
                    f"snapshot {path} is corrupt: checksum mismatch"
                )
        else:
            # Legacy checkpoint: a bare pickle of the snapshot object.
            body = raw
        try:
            snapshot = pickle.loads(body)
        except Exception as exc:
            raise SnapshotFormatError(
                f"{path} is not a readable snapshot file ({exc})"
            ) from exc
        if not isinstance(snapshot, cls):
            raise SnapshotFormatError(
                f"{path} does not contain a SessionSnapshot"
            )
        if snapshot.format_version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotFormatError(
                f"snapshot {path} has format version {snapshot.format_version}, "
                f"but this build reads version {SNAPSHOT_FORMAT_VERSION}; "
                "snapshots are not migratable across engine-layout changes — "
                "re-record the checkpoint from a fresh run"
            )
        return snapshot


#: Leading bytes of a framed snapshot checkpoint file (format: magic,
#: 8-byte big-endian pickle length, 32-byte SHA-256 of the pickle, pickle).
_SNAPSHOT_MAGIC = b"VODSNAP\x01"


class _SessionWorkload:
    """Adapter merging injected demands ahead of the background workload.

    With no injections it returns exactly the background generator's
    output, so a session stepping a scenario workload is bit-identical to
    the batch run of the same workload.
    """

    def __init__(self, session: "VodSession"):
        self._session = session

    def demand_arrays_for_round(self, view: SystemView):
        """Array-path arrivals; ``None`` whenever injected demands exist.

        Injection merging (and its duplicate-box filtering) lives on the
        object path, so any pending injected demand forces a fallback —
        returned before any random stream is touched.
        """
        if self._session._pending:
            return None
        background = self._session._workload
        if background is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        supplier = getattr(background, "demand_arrays_for_round", None)
        if supplier is None:
            return None
        return supplier(view)

    def demands_for_round(self, view: SystemView) -> List[Demand]:
        demands = [
            Demand(time=view.time, box_id=box_id, video_id=video_id)
            for box_id, video_id in self._session._drain_pending()
        ]
        background = self._session._workload
        if background is not None:
            taken = {demand.box_id for demand in demands}
            for demand in background.demands_for_round(view):
                if demand.box_id in taken:
                    continue
                demands.append(demand)
        return demands


class VodSession:
    """A stepwise handle on one live simulated system.

    Sessions are opened through :meth:`repro.api.VodSystem.open_session`
    (or :meth:`repro.scenarios.build.CompiledScenario.session`); the
    constructor accepts a ready engine for advanced embedding.

    Parameters
    ----------
    engine:
        The wrapped :class:`~repro.sim.engine.VodSimulator`.
    workload:
        Optional background demand generator queried every round (injected
        demands take precedence per box).  ``None`` means fully external
        demand: only :meth:`submit_demands` produces traffic.
    horizon:
        Optional round budget; :meth:`step` past it raises
        :class:`SessionClosedError`.  ``None`` = unbounded.
    fault_driver:
        Optional :class:`repro.faults.FaultDriver` applied at the start of
        every round (before the engine steps).  The driver's schedule is
        precomputed and keyed by absolute round, so it pickles with the
        session: snapshot/restore replays the remaining faults exactly.
    shed_when_degraded:
        When ``True``, :meth:`submit_demands` raises
        :class:`AdmissionError` while the engine's last round ran through
        the degraded solver fallback — load shedding instead of piling
        demand onto a struggling solver.
    """

    def __init__(
        self,
        engine: VodSimulator,
        workload: Optional[DemandGenerator] = None,
        horizon: Optional[int] = None,
        fault_driver=None,
        shed_when_degraded: bool = False,
    ):
        if horizon is not None and horizon <= 0:
            raise ValueError(f"horizon must be positive or None, got {horizon}")
        self._engine = engine
        self._workload = workload
        self._horizon = horizon
        self._adapter = _SessionWorkload(self)
        self._fault_driver = fault_driver
        self._shed_when_degraded = bool(shed_when_degraded)
        #: (box_id, video_id) demands queued for the next step, in order.
        self._pending: List[Tuple[int, int]] = []
        self._reports: List[RoundReport] = []
        self._closed = False
        self._stopped_early = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> VodSimulator:
        """The wrapped engine (read-only use; mutate through the hooks)."""
        return self._engine

    @property
    def now(self) -> int:
        """The next round to execute."""
        return self._engine.now

    @property
    def horizon(self) -> Optional[int]:
        """Round budget of the session (``None`` = unbounded)."""
        return self._horizon

    @property
    def rounds_completed(self) -> int:
        """Rounds executed so far."""
        return self._engine.rounds_completed

    @property
    def remaining_rounds(self) -> Optional[int]:
        """Rounds left before the horizon closes the session."""
        if self._horizon is None:
            return None
        return max(self._horizon - self.rounds_completed, 0)

    @property
    def closed(self) -> bool:
        """Whether the session refuses further rounds."""
        if self._closed:
            return True
        return self._horizon is not None and self.rounds_completed >= self._horizon

    @property
    def reports(self) -> Tuple[RoundReport, ...]:
        """Reports of every stepped round, in order."""
        return tuple(self._reports)

    @property
    def pending_demands(self) -> Tuple[Tuple[int, int], ...]:
        """Demands queued for the next round as ``(box_id, video_id)`` pairs."""
        return tuple(self._pending)

    def digest(self) -> str:
        """SHA-256 digest over all round reports (replay comparisons)."""
        payload = json.dumps(
            [report.to_dict() for report in self._reports],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Online admission
    # ------------------------------------------------------------------ #
    def submit_demands(
        self,
        demands: Iterable[Union[Demand, Tuple[int, int]]],
    ) -> int:
        """Queue external demands for the next round; returns the count.

        Each entry is a ``(box_id, video_id)`` pair or a
        :class:`~repro.core.preloading.Demand` whose ``time`` must be the
        session's current round.  Admission is checked *now*, against the
        round the demand will execute in: a busy box (still playing), an
        offline box, a box already queued, or an out-of-range box/video
        raises :class:`AdmissionError` and queues nothing from the failing
        entry on (earlier entries stay queued).
        """
        if self.closed:
            raise SessionClosedError(
                f"session is closed after {self.rounds_completed} rounds"
            )
        engine = self._engine
        if getattr(self, "_shed_when_degraded", False) and engine.last_round_degraded:
            raise AdmissionError(
                "admission shed: the previous round ran through the degraded "
                "solver fallback; retry once the solver recovers"
            )
        time = engine.now
        count = 0
        queued = {box_id for box_id, _ in self._pending}
        for entry in demands:
            if isinstance(entry, Demand):
                if entry.time != time:
                    raise AdmissionError(
                        f"demand is dated round {entry.time} but the session "
                        f"is at round {time}"
                    )
                box_id, video_id = entry.box_id, entry.video_id
            else:
                box_id, video_id = (int(entry[0]), int(entry[1]))
            if not 0 <= box_id < engine.population.n:
                raise AdmissionError(
                    f"box {box_id} outside the population of {engine.population.n}"
                )
            if not 0 <= video_id < engine.catalog.num_videos:
                raise AdmissionError(
                    f"video {video_id} outside the catalog of "
                    f"{engine.catalog.num_videos}"
                )
            if box_id in queued:
                raise AdmissionError(
                    f"box {box_id} already has a demand queued for round {time}"
                )
            if engine.is_box_busy(box_id, time):
                raise AdmissionError(
                    f"box {box_id} is busy playing a video at round {time}"
                )
            if engine.is_box_offline(box_id, time):
                raise AdmissionError(f"box {box_id} is offline at round {time}")
            self._pending.append((box_id, video_id))
            queued.add(box_id)
            count += 1
        return count

    def submit(self, box_id: int, video_id: int) -> None:
        """Queue a single demand (:meth:`submit_demands` convenience)."""
        self.submit_demands([(int(box_id), int(video_id))])

    def _drain_pending(self) -> List[Tuple[int, int]]:
        pending, self._pending = self._pending, []
        return pending

    # ------------------------------------------------------------------ #
    # Stepping
    # ------------------------------------------------------------------ #
    def step(self) -> RoundReport:
        """Execute one round and return its :class:`RoundReport`.

        Raises :class:`SessionClosedError` once the horizon is exhausted or
        the session was closed.
        """
        if self.closed:
            raise SessionClosedError(
                f"session is closed after {self.rounds_completed} rounds"
                + (
                    f" (horizon {self._horizon})"
                    if self._horizon is not None
                    else ""
                )
            )
        engine = self._engine
        time = engine.now
        driver = getattr(self, "_fault_driver", None)
        if driver is not None:
            driver.apply(engine, time)
        injected = len(self._pending)
        rejected_before = engine.rejected_demands
        playbacks_before = engine.playbacks_started

        feasible = engine.step(self._adapter)

        stats = engine.last_round_stats
        playback_starts = engine.playbacks_started - playbacks_before
        report = RoundReport.from_round_stats(
            stats,
            demands_injected=injected,
            demands_rejected=int(engine.rejected_demands - rejected_before),
            playback_starts=playback_starts,
            offline_boxes=len(engine.offline_boxes(time)),
            degraded=int(engine.last_round_degraded),
            repair_fallback=int(getattr(engine, "last_round_repair_fallback", False)),
            shard_restarts=int(getattr(engine, "last_round_shard_restarts", 0)),
            **{
                name: getattr(engine, f"last_round_{name}", None)
                for name in _LATENCY_FIELDS
            },
        )
        self._reports.append(report)
        if not feasible and engine._stop_on_infeasible:
            self._stopped_early = True
            self._closed = True
        return report

    def step_until(
        self,
        round: Optional[int] = None,
        *,
        rounds: Optional[int] = None,
    ) -> List[RoundReport]:
        """Step until the clock reaches ``round`` (or ``rounds`` more rounds).

        Exactly one of ``round`` / ``rounds`` must be given.  Stops early
        (without error) if the engine's ``stop_on_infeasible`` closes the
        session; raises :class:`SessionClosedError` only when asked to step
        a session that is already closed.
        """
        if (round is None) == (rounds is None):
            raise ValueError("provide exactly one of round= or rounds=")
        if rounds is not None:
            if rounds < 0:
                raise ValueError(f"rounds must be non-negative, got {rounds}")
            target = self.now + rounds
        else:
            target = int(round)
            if target < self.now:
                raise ValueError(
                    f"target round {target} is in the past (now: {self.now})"
                )
        collected: List[RoundReport] = []
        while self.now < target:
            collected.append(self.step())
            if self._closed:
                break
        return collected

    def run_to_horizon(self) -> SimulationResult:
        """Step through every remaining round and return the final result."""
        if self._horizon is None:
            raise ValueError("run_to_horizon requires a bounded session")
        self.step_until(round=self._horizon)
        return self.result()

    def result(self) -> SimulationResult:
        """Aggregate everything executed so far (callable mid-session)."""
        return self._engine.result(stopped_early=self._stopped_early)

    def close(self) -> None:
        """Refuse further rounds; stepping afterwards raises."""
        self._closed = True

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #
    def snapshot(self) -> SessionSnapshot:
        """Capture the session's full deterministic state.

        Everything a continuation needs is included — clock, swarms,
        playback/relay caches, possession index, RNG streams of every
        component, warm-start assignment, pending postponed requests and
        queued injected demands — so ``restore(snapshot)`` followed by
        ``step()``s is bit-identical to continuing uninterrupted.  The
        engine's ``round_observer`` (if any) is excluded and must be
        re-attached after restore.
        """
        engine = self._engine
        observer = engine._round_observer
        engine._round_observer = None
        try:
            payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            engine._round_observer = observer
        return SessionSnapshot(
            payload=payload,
            time=self.now,
            rounds_completed=self.rounds_completed,
            payload_sha256=hashlib.sha256(payload).hexdigest(),
        )

    @classmethod
    def restore(cls, snapshot: SessionSnapshot) -> "VodSession":
        """Reconstruct an independent session from a snapshot.

        Each call produces a fresh object graph: restoring twice yields two
        sessions that evolve independently (and identically, given the same
        inputs).  A snapshot from a different format version raises
        :class:`~repro.api.errors.SnapshotFormatError`; a truncated or
        corrupted payload raises
        :class:`~repro.api.errors.SnapshotIntegrityError` instead of a raw
        ``UnpicklingError``/``EOFError``.
        """
        if snapshot.format_version != SNAPSHOT_FORMAT_VERSION:
            raise SnapshotFormatError(
                f"snapshot has format version {snapshot.format_version}, "
                f"but this build reads version {SNAPSHOT_FORMAT_VERSION}; "
                "re-record the checkpoint from a fresh run"
            )
        recorded = getattr(snapshot, "payload_sha256", "")
        if recorded and hashlib.sha256(snapshot.payload).hexdigest() != recorded:
            raise SnapshotIntegrityError(
                "snapshot payload is corrupt: checksum mismatch against the "
                "digest recorded at capture time"
            )
        try:
            session = pickle.loads(snapshot.payload)
        except Exception as exc:
            raise SnapshotIntegrityError(
                f"snapshot payload is truncated or corrupt ({exc})"
            ) from exc
        if not isinstance(session, cls):
            raise SnapshotFormatError(
                "snapshot payload does not contain a VodSession"
            )
        return session

    # ------------------------------------------------------------------ #
    # Live reconfiguration
    # ------------------------------------------------------------------ #
    def add_videos(self, num_videos: int, random_state=None) -> List[int]:
        """Grow the catalog mid-run; returns the new video identifiers.

        New stripes are replicated at the allocation's ``k`` over the
        population's free storage slots (see
        :meth:`repro.sim.engine.VodSimulator.add_videos`).
        """
        return self._engine.add_videos(num_videos, random_state=random_state)

    def join_boxes(
        self, uploads: Sequence[float], storages: Sequence[float]
    ) -> List[int]:
        """Add boxes to the live population; returns their identifiers."""
        return self._engine.join_boxes(uploads, storages)

    def set_capacity(self, box_id: int, upload: float) -> int:
        """Reconfigure a box's upload capacity; returns its new stripe budget."""
        return self._engine.set_upload_capacity(box_id, upload)
