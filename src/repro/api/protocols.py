"""Structural interfaces of the pluggable engine components.

These :class:`typing.Protocol` definitions pin down what the engine
actually consumes from each component, so alternative implementations can
be registered (:mod:`repro.api.registry`) and swapped without inheriting
from the built-in classes:

* :class:`Solver` — the per-round connection matcher (Lemma 1);
  :class:`~repro.core.matching.ConnectionMatcher` is the reference
  implementation, parameterized by kernel name;
* :class:`RequestScheduler` — turns user demands into dated stripe
  requests (:class:`~repro.core.preloading.PreloadingScheduler` is the
  paper's preloading strategy, ``ImmediateRequestScheduler`` the ablation);
* :class:`DemandGenerator` — re-exported from :mod:`repro.workloads.base`:
  the per-round demand source;
* :class:`ChurnModel` — decides which boxes are offline each round
  (:class:`~repro.sim.churn.ChurnSchedule` is the deterministic reference).

All protocols are ``runtime_checkable`` so facade construction can
validate injected components early with ``isinstance``.
"""

from __future__ import annotations

from typing import (
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    runtime_checkable,
)

import numpy as np

from repro.core.matching import ConnectionMatching, PossessionIndex, RequestSet
from repro.core.matching import StripeRequest
from repro.core.preloading import Demand
from repro.workloads.base import DemandGenerator, SystemView

__all__ = [
    "Solver",
    "RequestScheduler",
    "DemandGenerator",
    "ChurnModel",
    "SystemView",
]


@runtime_checkable
class Solver(Protocol):
    """Per-round connection matching: requests × possession → assignment."""

    @property
    def upload_slots(self) -> np.ndarray:
        """Per-box stripe-upload capacities ``⌊u_b·c⌋`` of the instance."""
        ...  # pragma: no cover

    def match(
        self,
        requests: RequestSet,
        possession: PossessionIndex,
        current_time: int,
        busy_slots: Optional[Sequence[int]] = None,
        warm_start: Optional[Sequence[int]] = None,
    ) -> ConnectionMatching:
        """Solve the round's b-matching; must return a *maximum* matching."""
        ...  # pragma: no cover


@runtime_checkable
class RequestScheduler(Protocol):
    """Demand → dated stripe requests (the preloading strategy of Section 3)."""

    @property
    def start_up_delay(self) -> int:
        """Nominal start-up delay of the strategy, in rounds."""
        ...  # pragma: no cover

    def on_demand(
        self, demand: Demand, locally_stored: Optional[Set[int]] = None
    ) -> List[StripeRequest]:
        """Requests to issue at the demand round (others queued internally)."""
        ...  # pragma: no cover

    def requests_due(self, time: int) -> List[StripeRequest]:
        """Pop the postponed requests queued for round ``time``."""
        ...  # pragma: no cover


@runtime_checkable
class ChurnModel(Protocol):
    """Per-round box availability."""

    def offline_boxes(self, time: int) -> Set[int]:
        """Boxes offline at round ``time``."""
        ...  # pragma: no cover

    def is_offline(self, box_id: int, time: int) -> bool:
        """Whether ``box_id`` is offline at round ``time``."""
        ...  # pragma: no cover
