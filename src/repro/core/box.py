"""Boxes: storage slots and the playback cache.

A *box* combines three resources (Section 1.1):

* **static storage** — ``⌊d_b·c⌋`` stripe-sized slots filled once and for
  all by the allocation (Section 2.1);
* **playback cache** — a sliding window of the data most recently viewed,
  of total size one video; when a box plays videos one after another the
  cache straddles the end of the previous video and the beginning of the
  current one;
* **upload capacity** — ``u_b`` full video streams, i.e. ``⌊u_b·c⌋``
  stripes per round.

The feasibility analysis only needs to know, at round ``t``, whether box
``b`` *possesses* the data at position ``t − t_i`` of stripe ``s_i``; this
is the case when either ``b`` stores the stripe statically, or ``b``
itself requested the stripe at some earlier time ``t_j`` with
``t − T ≤ t_j < t_i`` (it is further ahead in the same playback and still
holds the data in its cache).  :class:`PlaybackCache` implements exactly
that predicate; :class:`Box` bundles it with the static storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.core.video import StripeId
from repro.util.intmath import floor_to_stripe_units
from repro.util.validation import (
    check_non_negative,
    check_non_negative_integer,
    check_positive_integer,
)

__all__ = ["PlaybackCache", "Box"]


class PlaybackCache:
    """Sliding-window cache of recently requested stripes.

    The cache records, for every stripe the box has requested, the time of
    that request.  Entries older than ``window`` rounds are evicted (the
    cache holds at most one video worth of data, i.e. ``T`` rounds).

    Parameters
    ----------
    window:
        Cache window ``T`` in rounds (the common video duration).
    """

    def __init__(self, window: int):
        self._window = check_positive_integer(window, "window")
        # stripe_id -> list of request times still inside the window,
        # kept sorted in insertion (hence chronological) order.
        self._entries: Dict[StripeId, List[int]] = {}

    @property
    def window(self) -> int:
        """Cache window ``T`` in rounds."""
        return self._window

    def record_request(self, stripe_id: StripeId, time: int) -> None:
        """Record that the owning box requested ``stripe_id`` at ``time``."""
        check_non_negative_integer(time, "time")
        self._entries.setdefault(int(stripe_id), []).append(int(time))

    def evict_older_than(self, current_time: int) -> None:
        """Drop entries that have left the ``T``-round window at ``current_time``."""
        check_non_negative_integer(current_time, "current_time")
        horizon = current_time - self._window
        stale: List[StripeId] = []
        for stripe_id, times in self._entries.items():
            kept = [t for t in times if t >= horizon]
            if kept:
                self._entries[stripe_id] = kept
            else:
                stale.append(stripe_id)
        for stripe_id in stale:
            del self._entries[stripe_id]

    def can_serve(self, stripe_id: StripeId, request_time: int, current_time: int) -> bool:
        """Whether the cache can serve a request for ``stripe_id`` issued at ``request_time``.

        Per Section 2.2 the data at position ``t − t_i`` is possessed by a
        box that requested the same stripe at ``t_j`` with
        ``t − T ≤ t_j < t_i``.
        """
        times = self._entries.get(int(stripe_id))
        if not times:
            return False
        horizon = current_time - self._window
        return any(horizon <= t_j < request_time for t_j in times)

    def cached_stripes(self) -> Set[StripeId]:
        """Set of stripe identifiers currently present in the cache."""
        return set(self._entries)

    def earliest_request(self, stripe_id: StripeId) -> Optional[int]:
        """Earliest recorded request time for ``stripe_id`` (or ``None``)."""
        times = self._entries.get(int(stripe_id))
        return min(times) if times else None

    def __contains__(self, stripe_id: StripeId) -> bool:
        return int(stripe_id) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Empty the cache."""
        self._entries.clear()


@dataclass
class Box:
    """One box of the system.

    Attributes
    ----------
    box_id:
        Index of the box, ``0 ≤ box_id < n``.
    upload:
        Normalized upload capacity ``u_b``.
    storage:
        Storage capacity ``d_b`` in videos.
    num_stripes:
        Stripe count ``c`` (needed to convert capacities to stripe units).
    cache_window:
        Playback-cache window ``T`` in rounds.
    """

    box_id: int
    upload: float
    storage: float
    num_stripes: int
    cache_window: int = 120
    stored_stripes: Set[StripeId] = field(default_factory=set)
    cache: PlaybackCache = field(init=False)
    #: Stripes this box relays/caches on behalf of poor boxes (Section 4).
    relay_cached_stripes: Set[StripeId] = field(default_factory=set)

    def __post_init__(self) -> None:
        check_non_negative_integer(self.box_id, "box_id")
        check_non_negative(self.upload, "upload")
        check_non_negative(self.storage, "storage")
        check_positive_integer(self.num_stripes, "num_stripes")
        check_positive_integer(self.cache_window, "cache_window")
        self.cache = PlaybackCache(self.cache_window)

    # ------------------------------------------------------------------ #
    # Capacities in stripe units
    # ------------------------------------------------------------------ #
    @property
    def upload_slots(self) -> int:
        """Stripes this box can upload per round, ``⌊u_b·c⌋``."""
        return floor_to_stripe_units(self.upload, self.num_stripes)

    @property
    def effective_upload(self) -> float:
        """Effective upload ``u'_b = ⌊u_b·c⌋ / c``."""
        return self.upload_slots / self.num_stripes

    @property
    def storage_slots(self) -> int:
        """Stripe-sized storage slots, ``⌊d_b·c⌋``."""
        return floor_to_stripe_units(self.storage, self.num_stripes)

    @property
    def free_storage_slots(self) -> int:
        """Remaining storage slots given the stripes already allocated."""
        return self.storage_slots - len(self.stored_stripes)

    # ------------------------------------------------------------------ #
    # Static storage
    # ------------------------------------------------------------------ #
    def store_stripe(self, stripe_id: StripeId) -> None:
        """Statically store a replica of ``stripe_id`` on this box."""
        if self.free_storage_slots <= 0 and int(stripe_id) not in self.stored_stripes:
            raise ValueError(
                f"box {self.box_id} storage full "
                f"({self.storage_slots} slots) — cannot store stripe {stripe_id}"
            )
        self.stored_stripes.add(int(stripe_id))

    def stores(self, stripe_id: StripeId) -> bool:
        """Whether the box statically stores ``stripe_id``."""
        return int(stripe_id) in self.stored_stripes

    def store_many(self, stripe_ids: Iterable[StripeId]) -> None:
        """Store a batch of stripe replicas (allocation helper)."""
        for stripe_id in stripe_ids:
            self.store_stripe(stripe_id)

    # ------------------------------------------------------------------ #
    # Possession predicate (Section 2.2)
    # ------------------------------------------------------------------ #
    def possesses(
        self, stripe_id: StripeId, request_time: int, current_time: int
    ) -> bool:
        """Whether this box can serve a request for ``stripe_id`` made at ``request_time``.

        True when the box stores the stripe statically, relays/caches it on
        behalf of a poor box, or has itself requested it early enough that
        the needed position is still in its playback cache.
        """
        sid = int(stripe_id)
        if sid in self.stored_stripes or sid in self.relay_cached_stripes:
            return True
        return self.cache.can_serve(sid, request_time, current_time)

    def record_playback_request(self, stripe_id: StripeId, time: int) -> None:
        """Record in the playback cache that this box requested ``stripe_id`` at ``time``."""
        self.cache.record_request(stripe_id, time)

    def advance_to(self, current_time: int) -> None:
        """Evict playback-cache entries that fell out of the ``T``-round window."""
        self.cache.evict_older_than(current_time)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Box(id={self.box_id}, u={self.upload}, d={self.storage}, "
            f"stored={len(self.stored_stripes)}/{self.storage_slots})"
        )
