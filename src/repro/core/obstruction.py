"""Obstruction analysis: Lemmas 2–4 and the first-moment bound (Equation 1).

An *obstruction* is a multiset ``σ`` of stripes for which some reachable
request set ``X`` with ``M(X) = σ`` violates the feasibility condition of
Lemma 1 (``U_{B(X)} < |X|/c``).  Theorem 1 is proven by showing that a
random allocation admits **no** obstruction with high probability, through
a union (first-moment) bound over all candidate multisets:

``P(N_k > 0) ≤ Σ_{σ ∈ O} P(σ)``                                    (Eq. 1)

with the per-multiset probability bounded by Lemma 4 (using the server
count of Lemma 2 and the allocation tail bound of Lemma 3).  This module
evaluates every one of those quantities numerically (in log space, since
the binomial terms overflow doubles immediately) so that the analysis can
be swept over ``(n, u, d, µ, c, k)`` and compared to Monte-Carlo estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.util.validation import (
    check_in_range,
    check_non_negative_integer,
    check_positive,
    check_positive_integer,
)

__all__ = [
    "lemma2_server_lower_bound",
    "lemma3_log_probability",
    "lemma4_log_probability",
    "log_multiset_count",
    "phi_log",
    "i_star",
    "first_moment_bound_paper",
    "first_moment_bound_exact",
    "minimum_replication_for_failure_probability",
    "ObstructionBoundSummary",
    "summarize_bound",
]


# ---------------------------------------------------------------------- #
# Lemma 2 — server counting
# ---------------------------------------------------------------------- #
def lemma2_server_lower_bound(i: int, i1: int, c: int, mu: float) -> float:
    """Lower bound on ``|B(X)|`` from Lemma 2.

    For a request set ``X`` of size ``i`` containing ``i1`` pairwise
    distinct stripes, the boxes able to serve ``X`` satisfy
    ``|B(X)| ≥ (i − (c + 2µ² − 1)·i1) / (c + 2(µ² − 1))``.
    The bound may be negative, in which case it is vacuous.
    """
    i = check_non_negative_integer(i, "i")
    i1 = check_non_negative_integer(i1, "i1")
    c = check_positive_integer(c, "c")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    if i1 > i:
        raise ValueError(f"i1 ({i1}) cannot exceed i ({i})")
    return (i - (c + 2.0 * mu**2 - 1.0) * i1) / (c + 2.0 * (mu**2 - 1.0))


# ---------------------------------------------------------------------- #
# Lemma 3 — allocation tail bound
# ---------------------------------------------------------------------- #
def lemma3_log_probability(p: int, n: int, k: int, i1: int) -> float:
    """``log`` of the Lemma 3 bound ``(p/n)^{k·i1}``.

    Probability that the ``k·i1`` replicas of ``i1`` given distinct stripes
    all fall into ``p`` given boxes under a random permutation (or
    independent) allocation.  Returns ``-inf`` when ``p = 0`` and
    ``0.0`` (probability 1) when ``p ≥ n``.
    """
    p = check_non_negative_integer(p, "p")
    n = check_positive_integer(n, "n")
    k = check_positive_integer(k, "k")
    i1 = check_non_negative_integer(i1, "i1")
    if p == 0:
        return 0.0 if i1 == 0 else -math.inf
    if p >= n:
        return 0.0
    return k * i1 * (math.log(p) - math.log(n))


# ---------------------------------------------------------------------- #
# Lemma 4 — per-multiset obstruction probability
# ---------------------------------------------------------------------- #
def lemma4_log_probability(
    i: int,
    i1: int,
    n: int,
    c: int,
    u_prime: float,
    k: int,
    nu: float,
) -> float:
    """``log P(σ)`` for a multiset of ``i`` stripes, ``i1`` of them distinct.

    Lemma 4: ``P(σ) ≤ (u'·n·c·e / i)^i · (i / (u'·c·n))^{k·i1}``, and
    ``P(σ) = 0`` whenever ``i1 ≤ ν·i`` (the request strategy itself
    guarantees enough servers).  The returned value is capped at ``0``
    (probability 1).
    """
    i = check_positive_integer(i, "i")
    i1 = check_non_negative_integer(i1, "i1")
    n = check_positive_integer(n, "n")
    c = check_positive_integer(c, "c")
    u_prime = check_positive(u_prime, "u_prime")
    k = check_positive_integer(k, "k")
    if i1 > i:
        raise ValueError(f"i1 ({i1}) cannot exceed i ({i})")
    if i1 <= nu * i:
        return -math.inf
    ucn = u_prime * n * c
    log_p = i * (math.log(ucn) + 1.0 - math.log(i)) + k * i1 * (
        math.log(i) - math.log(ucn)
    )
    return min(log_p, 0.0)


def log_multiset_count(i: int, i1: int, m: int, c: int) -> float:
    """``log M(i, i1)`` — the number of stripe multisets of size ``i`` with ``i1`` distinct stripes.

    ``M(i, i1) = C(m·c, i1) · C(i−1, i1−1)`` (choose the distinct stripes,
    then a composition of ``i`` into ``i1`` positive parts).
    """
    i = check_positive_integer(i, "i")
    i1 = check_positive_integer(i1, "i1")
    m = check_positive_integer(m, "m")
    c = check_positive_integer(c, "c")
    if i1 > i or i1 > m * c:
        return -math.inf
    return float(_log_binomial(m * c, i1) + _log_binomial(i - 1, i1 - 1))


def _log_binomial(a: int, b: int) -> float:
    """``log C(a, b)`` via log-gamma; ``-inf`` outside the valid range."""
    if b < 0 or b > a:
        return -math.inf
    return float(gammaln(a + 1) - gammaln(b + 1) - gammaln(a - b + 1))


# ---------------------------------------------------------------------- #
# The aggregated first-moment bound (proof of Theorem 1)
# ---------------------------------------------------------------------- #
def phi_log(
    i: np.ndarray,
    n: int,
    c: int,
    u_prime: float,
    d_prime: float,
    k: int,
    nu: float,
) -> np.ndarray:
    """``log φ(i)`` with ``φ(i) = (i/(u'·n·c))^{κ·i} · δ^i``.

    ``κ = ν·k − 2`` and ``δ = 4·d'·e²/u'`` as in the proof of Theorem 1.
    Vectorized over an integer array ``i``.
    """
    i_arr = np.asarray(i, dtype=np.float64)
    if np.any(i_arr <= 0):
        raise ValueError("i must be positive")
    n = check_positive_integer(n, "n")
    c = check_positive_integer(c, "c")
    u_prime = check_positive(u_prime, "u_prime")
    d_prime = check_positive(d_prime, "d_prime")
    k = check_positive_integer(k, "k")
    kappa = nu * k - 2.0
    delta = 4.0 * d_prime * math.e**2 / u_prime
    ucn = u_prime * n * c
    return kappa * i_arr * (np.log(i_arr) - math.log(ucn)) + i_arr * math.log(delta)


def i_star(n: int, c: int, u_prime: float, d_prime: float, k: int, nu: float) -> float:
    """The minimizer ``i* = u'·n·c / (e·δ^{1/κ})`` of ``φ`` (proof of Theorem 1)."""
    n = check_positive_integer(n, "n")
    c = check_positive_integer(c, "c")
    kappa = nu * k - 2.0
    if kappa <= 0:
        raise ValueError(f"κ = ν·k − 2 = {kappa:.4g} must be positive (increase k)")
    delta = 4.0 * d_prime * math.e**2 / u_prime
    return u_prime * n * c / (math.e * delta ** (1.0 / kappa))


def first_moment_bound_paper(
    n: int,
    c: int,
    u_prime: float,
    d_prime: float,
    k: int,
    nu: float,
) -> float:
    """The paper's aggregated bound ``P(N_k > 0) ≤ Σ_{i=1}^{nc} (1−ν)·i·φ(i)``.

    Evaluated exactly (log-space sum over all ``i``), then clipped to
    ``[0, 1]``.  This is the quantity the proof of Theorem 1 drives to
    ``O(1/n)`` by choosing ``k ≥ 5ν⁻¹ log d'/log u'``.
    """
    n = check_positive_integer(n, "n")
    c = check_positive_integer(c, "c")
    if not 0.0 < nu < 1.0:
        raise ValueError(f"nu must lie in (0, 1), got {nu}")
    i_values = np.arange(1, n * c + 1, dtype=np.int64)
    log_terms = (
        phi_log(i_values, n, c, u_prime, d_prime, k, nu)
        + np.log(i_values)
        + math.log(1.0 - nu)
    )
    log_total = float(logsumexp(log_terms))
    if log_total >= 0.0:
        return 1.0
    return float(math.exp(log_total))


def first_moment_bound_exact(
    n: int,
    c: int,
    m: int,
    k: int,
    u_prime: float,
    nu: float,
) -> float:
    """The exact Equation 1 double sum (before the paper's majorizations).

    ``P(N_k > 0) ≤ Σ_{i=1}^{nc} Σ_{i1=⌈νi⌉}^{min(i, mc)} M(i, i1) ·
    (u'nce/i)^i · (i/(u'nc))^{k·i1}``.

    Complexity is ``O((n·c)²)`` — intended for the moderate instance sizes
    of the experiments (``n·c`` up to a few thousands), where it is
    noticeably tighter than :func:`first_moment_bound_paper`.
    Result clipped to ``[0, 1]``.
    """
    n = check_positive_integer(n, "n")
    c = check_positive_integer(c, "c")
    m = check_positive_integer(m, "m")
    k = check_positive_integer(k, "k")
    u_prime = check_positive(u_prime, "u_prime")
    if not 0.0 < nu < 1.0:
        raise ValueError(f"nu must lie in (0, 1), got {nu}")

    nc = n * c
    mc = m * c
    ucn = u_prime * n * c
    log_ucn = math.log(ucn)
    # Precompute log-factorial table: lgamma_table[x] = log(x!) for binomials
    # up to max(nc, mc) + 1.
    max_arg = max(nc, mc) + 2
    lgamma_table = gammaln(np.arange(max_arg + 1, dtype=np.float64) + 1.0)

    def log_binom(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = lgamma_table[a] - lgamma_table[b] - lgamma_table[a - b]
        return out

    per_i_logs = np.full(nc, -np.inf, dtype=np.float64)
    for i in range(1, nc + 1):
        i1_low = int(math.ceil(nu * i))
        i1_low = max(i1_low, 1)
        i1_high = min(i, mc)
        if i1_low > i1_high:
            continue
        i1 = np.arange(i1_low, i1_high + 1, dtype=np.int64)
        log_m = log_binom(np.full(i1.size, mc), i1) + log_binom(
            np.full(i1.size, i - 1), i1 - 1
        )
        log_p = i * (log_ucn + 1.0 - math.log(i)) + k * i1 * (math.log(i) - log_ucn)
        # Each individual probability is at most 1.
        log_p = np.minimum(log_p, 0.0)
        per_i_logs[i - 1] = logsumexp(log_m + log_p)
    log_total = float(logsumexp(per_i_logs))
    if log_total >= 0.0:
        return 1.0
    return float(math.exp(log_total))


def minimum_replication_for_failure_probability(
    n: int,
    c: int,
    u_prime: float,
    d_prime: float,
    nu: float,
    target: float = 0.01,
    k_max: int = 10_000,
) -> int:
    """Smallest ``k`` whose first-moment bound is below ``target``.

    Uses :func:`first_moment_bound_paper`; raises ``ValueError`` when no
    ``k ≤ k_max`` achieves the target (e.g. ν too small).
    """
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target must lie in (0, 1], got {target}")
    low, high = 1, None
    k = 1
    while k <= k_max:
        bound = first_moment_bound_paper(n, c, u_prime, d_prime, k, nu)
        if bound <= target:
            high = k
            break
        low = k + 1
        k *= 2
    if high is None:
        raise ValueError(
            f"no replication k ≤ {k_max} achieves failure probability ≤ {target}"
        )
    # Binary search between low and high.
    while low < high:
        mid = (low + high) // 2
        if first_moment_bound_paper(n, c, u_prime, d_prime, mid, nu) <= target:
            high = mid
        else:
            low = mid + 1
    return high


@dataclass(frozen=True)
class ObstructionBoundSummary:
    """Summary of the obstruction bound for one parameter point."""

    n: int
    c: int
    k: int
    nu: float
    u_prime: float
    d_prime: float
    kappa: float
    delta: float
    i_star: float
    paper_bound: float
    exact_bound: Optional[float]

    def describe(self) -> Dict[str, float]:
        """Flat dictionary view for tables."""
        return {
            "n": self.n,
            "c": self.c,
            "k": self.k,
            "nu": self.nu,
            "u_prime": self.u_prime,
            "d_prime": self.d_prime,
            "kappa": self.kappa,
            "delta": self.delta,
            "i_star": self.i_star,
            "paper_bound": self.paper_bound,
            "exact_bound": self.exact_bound if self.exact_bound is not None else float("nan"),
        }


def summarize_bound(
    n: int,
    c: int,
    k: int,
    u_prime: float,
    d_prime: float,
    nu: float,
    m: Optional[int] = None,
    include_exact: bool = False,
) -> ObstructionBoundSummary:
    """Evaluate every quantity of the Theorem 1 obstruction bound at one point."""
    kappa = nu * k - 2.0
    delta = 4.0 * d_prime * math.e**2 / u_prime
    istar = (
        i_star(n, c, u_prime, d_prime, k, nu) if kappa > 0 else float("nan")
    )
    paper = first_moment_bound_paper(n, c, u_prime, d_prime, k, nu)
    exact = None
    if include_exact:
        if m is None:
            raise ValueError("m (catalog size) is required for the exact bound")
        exact = first_moment_bound_exact(n, c, m, k, u_prime, nu)
    return ObstructionBoundSummary(
        n=n,
        c=c,
        k=k,
        nu=nu,
        u_prime=u_prime,
        d_prime=d_prime,
        kappa=kappa,
        delta=delta,
        i_star=istar,
        paper_bound=paper,
        exact_bound=exact,
    )
