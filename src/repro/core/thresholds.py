"""Threshold formulas of Theorems 1 and 2.

This module evaluates, numerically and exactly as stated in the paper, the
parameter constraints and catalog-size guarantees of the two main
theorems:

* **Theorem 1 (homogeneous systems, u > 1).**  With ``c > (2µ²−1)/(u−1)``
  stripes and ``k ≥ 5 ν⁻¹ log d' / log u'`` replicas per stripe — where
  ``ν = 1/(c+2µ²−1) − 1/(u·c)``, ``u' = ⌊u·c⌋/c`` and
  ``d' = max{d, u, e}`` — a random (permutation) allocation serves every
  adversarial demand sequence with swarm growth ``µ`` w.h.p., achieving
  catalog size ``m = ⌊d·n/k⌋ = Ω((u−1)² log((u+1)/2) / (u³ µ²) · d·n / log d')``.

* **Theorem 2 (u*-balanced heterogeneous systems).**  With
  ``c > 4µ⁴/(u*−1)`` and ``k ≥ 5 ν⁻¹ log d'/log u'`` for
  ``ν = 1/(c+2µ⁴−1) − 1/(c+3µ⁴)``, ``u' = (c+3µ⁴)/c`` and
  ``d' = max{d, u*, e}``, the relay strategy of Section 4 achieves catalog
  size ``Ω((u*−1)² log((u*+3)/4) / µ⁴ · d·n / log d')``.

Every function returns plain floats/ints so the analysis and benchmark
harnesses can sweep them directly with NumPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.util.validation import (
    check_in_range,
    check_positive,
    check_positive_integer,
)

__all__ = [
    "ThresholdDesign",
    "recommended_stripes_homogeneous",
    "minimum_stripes_homogeneous",
    "effective_upload",
    "d_prime",
    "nu_homogeneous",
    "replication_homogeneous",
    "catalog_size_homogeneous",
    "catalog_lower_bound_theorem1",
    "design_homogeneous",
    "recommended_stripes_heterogeneous",
    "nu_heterogeneous",
    "u_prime_heterogeneous",
    "replication_heterogeneous",
    "catalog_lower_bound_theorem2",
    "design_heterogeneous",
    "scalability_threshold_satisfied",
]

_E = math.e


# ---------------------------------------------------------------------- #
# Homogeneous systems (Theorem 1)
# ---------------------------------------------------------------------- #
def minimum_stripes_homogeneous(u: float, mu: float) -> int:
    """Smallest integer ``c`` with ``c > (2µ²−1)/(u−1)`` (Theorem 1 hypothesis)."""
    u = check_in_range(u, "u", 1.0, math.inf, inclusive_low=False)
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    bound = (2.0 * mu**2 - 1.0) / (u - 1.0)
    return int(math.floor(bound)) + 1


def recommended_stripes_homogeneous(u: float, mu: float) -> int:
    """The explicit choice ``c = ⌈2·(2µ²−1)/(u−1)⌉`` used in the proof of Theorem 1."""
    u = check_in_range(u, "u", 1.0, math.inf, inclusive_low=False)
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    return int(math.ceil(2.0 * (2.0 * mu**2 - 1.0) / (u - 1.0)))


def effective_upload(u: float, c: int) -> float:
    """Effective upload ``u' = ⌊u·c⌋ / c`` (a box uploads whole stripes only)."""
    check_positive(u, "u")
    c = check_positive_integer(c, "c")
    return math.floor(u * c + 1e-9) / c


def d_prime(d: float, u: float) -> float:
    """``d' = max{d, u, e}`` (Theorem 1)."""
    check_positive(d, "d")
    check_positive(u, "u")
    return max(d, u, _E)


def nu_homogeneous(u: float, c: int, mu: float) -> float:
    """``ν = 1/(c+2µ²−1) − 1/(u·c)``; positive when ``u·c > c+2µ²−1``."""
    u = check_positive(u, "u")
    c = check_positive_integer(c, "c")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    return 1.0 / (c + 2.0 * mu**2 - 1.0) - 1.0 / (u * c)


def replication_homogeneous(
    u: float, d: float, c: int, mu: float
) -> int:
    """Replication ``k = ⌈5 ν⁻¹ log d' / log u'⌉`` of Theorem 1.

    Raises ``ValueError`` if the stripe count does not satisfy the
    hypothesis ``c > (2µ²−1)/(u−1)`` (equivalently ``ν ≤ 0`` or ``u' ≤ 1``),
    because the bound is vacuous there.
    """
    nu = nu_homogeneous(u, c, mu)
    if nu <= 0:
        raise ValueError(
            f"stripe count c={c} violates the Theorem 1 hypothesis "
            f"c > (2µ²−1)/(u−1) = {(2 * mu**2 - 1) / (u - 1):.3f}: ν = {nu:.4g} ≤ 0"
        )
    u_eff = effective_upload(u, c)
    if u_eff <= 1.0:
        raise ValueError(
            f"effective upload u' = ⌊u·c⌋/c = {u_eff:.4f} ≤ 1; "
            "increase c or u so that log u' > 0"
        )
    dp = d_prime(d, u)
    return int(math.ceil(5.0 / nu * math.log(dp) / math.log(u_eff)))


def catalog_size_homogeneous(
    n: int, u: float, d: float, mu: float, c: Optional[int] = None
) -> int:
    """Achievable catalog size ``m = ⌊d·n/k⌋`` under the Theorem 1 design.

    If ``c`` is not given the proof's choice ``⌈2(2µ²−1)/(u−1)⌉`` is used.
    Returns 0 when even one replica of each stripe does not fit.
    """
    n = check_positive_integer(n, "n")
    if c is None:
        c = recommended_stripes_homogeneous(u, mu)
    k = replication_homogeneous(u, d, c, mu)
    return int((d * n) // k)


def catalog_lower_bound_theorem1(n: int, u: float, d: float, mu: float) -> float:
    """The asymptotic lower bound of Theorem 1 (without the hidden constant).

    ``m = Ω( (u−1)² · log((u+1)/2) / (u³ µ²) · d n / log d' )``; this
    function returns the expression inside ``Ω(·)``.  Useful for shape
    comparisons (growth in ``n``, degradation as ``u → 1``).
    """
    n = check_positive_integer(n, "n")
    u = check_in_range(u, "u", 1.0, math.inf, inclusive_low=False)
    d = check_positive(d, "d")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    dp = d_prime(d, u)
    return (
        (u - 1.0) ** 2
        * math.log((u + 1.0) / 2.0)
        / (u**3 * mu**2)
        * d
        * n
        / math.log(dp)
    )


@dataclass(frozen=True)
class ThresholdDesign:
    """A concrete parameter design produced by the threshold formulas.

    Attributes
    ----------
    regime:
        ``"homogeneous"`` (Theorem 1) or ``"heterogeneous"`` (Theorem 2).
    u, d, mu, n:
        The system parameters the design was derived for.  For the
        heterogeneous regime ``u`` is the threshold ``u*``.
    c:
        Number of stripes per video.
    k:
        Replicas per stripe.
    nu:
        The ``ν`` margin appearing in the obstruction bound.
    u_prime:
        Effective upload used in the bound.
    d_prime:
        ``d' = max{d, u, e}`` (or ``max{d, u*, e}``).
    catalog_size:
        Achievable catalog ``⌊d·n/k⌋`` (0 when the storage cannot hold one
        replica of each stripe of even a single video).
    asymptotic_bound:
        The expression inside the theorem's ``Ω(·)``.
    """

    regime: str
    n: int
    u: float
    d: float
    mu: float
    c: int
    k: int
    nu: float
    u_prime: float
    d_prime: float
    catalog_size: int
    asymptotic_bound: float

    def describe(self) -> Dict[str, float]:
        """The design as a flat dictionary (for tables/reports)."""
        return {
            "regime": self.regime,
            "n": self.n,
            "u": self.u,
            "d": self.d,
            "mu": self.mu,
            "c": self.c,
            "k": self.k,
            "nu": self.nu,
            "u_prime": self.u_prime,
            "d_prime": self.d_prime,
            "catalog_size": self.catalog_size,
            "asymptotic_bound": self.asymptotic_bound,
        }


def design_homogeneous(
    n: int, u: float, d: float, mu: float, c: Optional[int] = None
) -> ThresholdDesign:
    """Full Theorem 1 design: stripes, replication, ν, u', d' and catalog size."""
    n = check_positive_integer(n, "n")
    if c is None:
        c = recommended_stripes_homogeneous(u, mu)
    else:
        c = check_positive_integer(c, "c")
    k = replication_homogeneous(u, d, c, mu)
    return ThresholdDesign(
        regime="homogeneous",
        n=n,
        u=u,
        d=d,
        mu=mu,
        c=c,
        k=k,
        nu=nu_homogeneous(u, c, mu),
        u_prime=effective_upload(u, c),
        d_prime=d_prime(d, u),
        catalog_size=int((d * n) // k),
        asymptotic_bound=catalog_lower_bound_theorem1(n, u, d, mu),
    )


# ---------------------------------------------------------------------- #
# Heterogeneous systems (Theorem 2)
# ---------------------------------------------------------------------- #
def recommended_stripes_heterogeneous(u_star: float, mu: float) -> int:
    """The explicit choice ``c = ⌈10µ⁴/(u*−1)⌉`` used in Theorem 2."""
    u_star = check_in_range(u_star, "u_star", 1.0, math.inf, inclusive_low=False)
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    return int(math.ceil(10.0 * mu**4 / (u_star - 1.0)))


def minimum_stripes_heterogeneous(u_star: float, mu: float) -> int:
    """Smallest integer ``c`` with ``c > 4µ⁴/(u*−1)`` (Theorem 2 hypothesis)."""
    u_star = check_in_range(u_star, "u_star", 1.0, math.inf, inclusive_low=False)
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    return int(math.floor(4.0 * mu**4 / (u_star - 1.0))) + 1


def nu_heterogeneous(c: int, mu: float) -> float:
    """``ν = 1/(c+2µ⁴−1) − 1/(c+3µ⁴)`` (Theorem 2)."""
    c = check_positive_integer(c, "c")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    return 1.0 / (c + 2.0 * mu**4 - 1.0) - 1.0 / (c + 3.0 * mu**4)


def u_prime_heterogeneous(c: int, mu: float) -> float:
    """``u' = (c + 3µ⁴)/c`` (Theorem 2)."""
    c = check_positive_integer(c, "c")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    return (c + 3.0 * mu**4) / c


def replication_heterogeneous(
    u_star: float, d: float, c: int, mu: float
) -> int:
    """Replication ``k = ⌈5 ν⁻¹ log d' / log u'⌉`` of Theorem 2."""
    nu = nu_heterogeneous(c, mu)
    if nu <= 0:
        raise ValueError(f"ν = {nu:.4g} ≤ 0 — µ must be ≥ 1 and c positive")
    u_eff = u_prime_heterogeneous(c, mu)
    dp = d_prime(d, u_star)
    return int(math.ceil(5.0 / nu * math.log(dp) / math.log(u_eff)))


def catalog_lower_bound_theorem2(
    n: int, u_star: float, d: float, mu: float
) -> float:
    """The asymptotic lower bound of Theorem 2 (expression inside ``Ω(·)``).

    ``m = Ω( (u*−1)² · log((u*+3)/4) / µ⁴ · d n / log d' )``.
    """
    n = check_positive_integer(n, "n")
    u_star = check_in_range(u_star, "u_star", 1.0, math.inf, inclusive_low=False)
    d = check_positive(d, "d")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    dp = d_prime(d, u_star)
    return (
        (u_star - 1.0) ** 2
        * math.log((u_star + 3.0) / 4.0)
        / (mu**4)
        * d
        * n
        / math.log(dp)
    )


def design_heterogeneous(
    n: int, u_star: float, d: float, mu: float, c: Optional[int] = None
) -> ThresholdDesign:
    """Full Theorem 2 design for a ``u*``-balanced heterogeneous system."""
    n = check_positive_integer(n, "n")
    if c is None:
        c = recommended_stripes_heterogeneous(u_star, mu)
    else:
        c = check_positive_integer(c, "c")
    k = replication_heterogeneous(u_star, d, c, mu)
    return ThresholdDesign(
        regime="heterogeneous",
        n=n,
        u=u_star,
        d=d,
        mu=mu,
        c=c,
        k=k,
        nu=nu_heterogeneous(c, mu),
        u_prime=u_prime_heterogeneous(c, mu),
        d_prime=d_prime(d, u_star),
        catalog_size=int((d * n) // k),
        asymptotic_bound=catalog_lower_bound_theorem2(n, u_star, d, mu),
    )


# ---------------------------------------------------------------------- #
# Scalability thresholds
# ---------------------------------------------------------------------- #
def scalability_threshold_satisfied(
    average_upload: float, upload_deficit_at_1: float, n: int
) -> bool:
    """Whether ``u > 1 + Δ(1)/n`` — the heterogeneous scalability condition.

    For a homogeneous system ``Δ(1) = 0`` and the condition reduces to the
    headline threshold ``u > 1``.
    """
    check_positive_integer(n, "n")
    if upload_deficit_at_1 < 0:
        raise ValueError("upload_deficit_at_1 must be non-negative")
    return average_upload > 1.0 + upload_deficit_at_1 / n
