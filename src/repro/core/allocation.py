"""Random allocation of stripe replicas onto boxes (Section 2.1).

An *allocation* statically places ``k`` replicas of each of the ``m·c``
stripes into the storage slots of the ``n`` boxes.  The paper analyses two
randomized schemes:

* **random permutation allocation** — the ``k·m·c`` stripe replicas are
  mapped to the ``⌊d·n·c⌋`` storage slots through a uniformly random
  permutation (replica ``i`` goes to slot ``π(i)``); every box ends up
  with exactly its ``⌊d_b·c⌋`` slots worth of replicas, so storage loads
  are perfectly balanced by construction;
* **random independent allocation** — each replica independently picks a
  box with probability proportional to the box storage capacity.  Storage
  loads may then be unbalanced; the paper notes that avoiding overflow
  w.h.p. additionally requires ``c = Ω(log n)``.

The :class:`Allocation` container stores the placement as flat NumPy
arrays with CSR-style indexes in both directions (stripe → boxes and
box → stripes), which is what the Monte-Carlo obstruction experiments and
the per-round scheduler iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.parameters import BoxPopulation
from repro.core.video import Catalog, StripeId
from repro.util.rng import RandomState, as_generator
from repro.util.validation import check_positive_integer

__all__ = [
    "Allocation",
    "AllocationError",
    "random_permutation_allocation",
    "random_independent_allocation",
    "round_robin_allocation",
]


class AllocationError(RuntimeError):
    """Raised when an allocation cannot be constructed (e.g. storage overflow)."""


@dataclass(frozen=True, eq=False)
class Allocation:
    """A static placement of stripe replicas onto boxes.

    Attributes
    ----------
    catalog:
        The catalog whose stripes are being placed.
    population:
        The box population receiving the replicas.
    replicas_per_stripe:
        The replication factor ``k``.
    replica_box:
        Flat array of length ``m·c·k``; ``replica_box[s·k + j]`` is the box
        holding the ``j``-th replica of stripe ``s``.
    scheme:
        Human-readable name of the scheme that produced the allocation.
    """

    catalog: Catalog
    population: BoxPopulation
    replicas_per_stripe: int
    replica_box: np.ndarray
    scheme: str = "custom"

    def __post_init__(self) -> None:
        expected = self.catalog.total_stripes * self.replicas_per_stripe
        replica_box = np.asarray(self.replica_box, dtype=np.int64)
        if replica_box.ndim != 1 or replica_box.size != expected:
            raise ValueError(
                f"replica_box must be a flat array of length m*c*k = {expected}, "
                f"got shape {replica_box.shape}"
            )
        if replica_box.size and (
            replica_box.min() < 0 or replica_box.max() >= self.population.n
        ):
            raise ValueError("replica_box references boxes outside the population")
        object.__setattr__(self, "replica_box", replica_box)
        # Pre-compute the box -> stripes CSR index.
        order = np.argsort(replica_box, kind="stable")
        sorted_boxes = replica_box[order]
        stripe_of_replica = order // self.replicas_per_stripe
        counts = np.bincount(sorted_boxes, minlength=self.population.n)
        offsets = np.zeros(self.population.n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        object.__setattr__(self, "_box_offsets", offsets)
        object.__setattr__(self, "_box_stripes", stripe_of_replica.astype(np.int64))

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def num_boxes(self) -> int:
        """Number of boxes ``n``."""
        return self.population.n

    @property
    def catalog_size(self) -> int:
        """Number of distinct videos ``m``."""
        return self.catalog.num_videos

    @property
    def num_stripes(self) -> int:
        """Number of distinct stripes ``m·c``."""
        return self.catalog.total_stripes

    @property
    def total_replicas(self) -> int:
        """Number of placed replicas ``k·m·c``."""
        return int(self.replica_box.size)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def boxes_with_stripe(self, stripe_id: StripeId) -> np.ndarray:
        """Boxes storing a replica of ``stripe_id`` (possibly with duplicates removed)."""
        stripe_id = int(stripe_id)
        if not 0 <= stripe_id < self.num_stripes:
            raise ValueError(f"stripe_id {stripe_id} out of range")
        k = self.replicas_per_stripe
        return np.unique(self.replica_box[stripe_id * k: (stripe_id + 1) * k])

    def replica_boxes_of_stripe(self, stripe_id: StripeId) -> np.ndarray:
        """The ``k`` replica holders of ``stripe_id`` (duplicates preserved)."""
        stripe_id = int(stripe_id)
        if not 0 <= stripe_id < self.num_stripes:
            raise ValueError(f"stripe_id {stripe_id} out of range")
        k = self.replicas_per_stripe
        return self.replica_box[stripe_id * k: (stripe_id + 1) * k].copy()

    def stripes_on_box(self, box_id: int) -> np.ndarray:
        """Stripes of which ``box_id`` stores at least one replica."""
        if not 0 <= box_id < self.num_boxes:
            raise ValueError(f"box_id {box_id} out of range")
        offsets = self._box_offsets  # type: ignore[attr-defined]
        stripes = self._box_stripes  # type: ignore[attr-defined]
        return np.unique(stripes[offsets[box_id]: offsets[box_id + 1]])

    def box_loads(self) -> np.ndarray:
        """Number of replicas stored on each box."""
        return np.bincount(self.replica_box, minlength=self.num_boxes).astype(np.int64)

    def stripe_sets_by_box(self) -> List[Set[int]]:
        """Per-box sets of stored stripe identifiers (for simulator setup)."""
        return [set(self.stripes_on_box(b).tolist()) for b in range(self.num_boxes)]

    # ------------------------------------------------------------------ #
    # Validation and statistics
    # ------------------------------------------------------------------ #
    def storage_slack(self) -> np.ndarray:
        """Per-box free slots: ``⌊d_b·c⌋ − load_b`` (negative means overflow)."""
        capacity = self.population.storage_slots(self.catalog.num_stripes_per_video)
        return capacity - self.box_loads()

    def overflowing_boxes(self) -> np.ndarray:
        """Indices of boxes whose storage capacity is exceeded."""
        return np.flatnonzero(self.storage_slack() < 0).astype(np.int64)

    def respects_storage(self) -> bool:
        """Whether no box stores more replicas than its capacity allows."""
        return bool(self.overflowing_boxes().size == 0)

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-box replica loads (1.0 = perfectly balanced)."""
        loads = self.box_loads().astype(np.float64)
        mean = loads.mean()
        if mean == 0:
            return 0.0
        return float(loads.max() / mean)

    def distinct_coverage(self) -> np.ndarray:
        """For each stripe, the number of *distinct* boxes holding it."""
        k = self.replicas_per_stripe
        grid = self.replica_box.reshape(self.num_stripes, k)
        # Count distinct entries row-wise.
        sorted_grid = np.sort(grid, axis=1)
        distinct = np.ones(self.num_stripes, dtype=np.int64)
        if k > 1:
            distinct += (sorted_grid[:, 1:] != sorted_grid[:, :-1]).sum(axis=1)
        return distinct

    def describe(self) -> Dict[str, float]:
        """Summary statistics used in experiment reports."""
        loads = self.box_loads()
        return {
            "scheme": self.scheme,
            "n": self.num_boxes,
            "m": self.catalog_size,
            "c": self.catalog.num_stripes_per_video,
            "k": self.replicas_per_stripe,
            "total_replicas": self.total_replicas,
            "max_load": int(loads.max()) if loads.size else 0,
            "mean_load": float(loads.mean()) if loads.size else 0.0,
            "load_imbalance": self.load_imbalance(),
            "respects_storage": self.respects_storage(),
            "min_distinct_coverage": int(self.distinct_coverage().min())
            if self.num_stripes
            else 0,
        }


# ---------------------------------------------------------------------- #
# Allocation schemes
# ---------------------------------------------------------------------- #
def _slot_owner_array(population: BoxPopulation, c: int) -> np.ndarray:
    """Array mapping each storage slot of the system to its owning box.

    Box ``b`` owns ``⌊d_b·c⌋`` consecutive slots (the paper's "the d·c
    first slots fall into the first box, the d·c next slots into the
    second box, and so on").
    """
    slots_per_box = population.storage_slots(c)
    return np.repeat(np.arange(population.n, dtype=np.int64), slots_per_box)


def random_permutation_allocation(
    catalog: Catalog,
    population: BoxPopulation,
    replicas_per_stripe: int,
    random_state: RandomState = None,
) -> Allocation:
    """Random permutation allocation (Section 2.1).

    The ``k·m·c`` replicas are assigned to the ``Σ_b ⌊d_b·c⌋`` storage
    slots through a uniformly random permutation; the slot index determines
    the owning box.  Raises :class:`AllocationError` when the system does
    not have enough storage slots for the requested replication.
    """
    k = check_positive_integer(replicas_per_stripe, "replicas_per_stripe")
    slot_owner = _slot_owner_array(population, catalog.num_stripes_per_video)
    total_replicas = catalog.total_stripes * k
    if total_replicas > slot_owner.size:
        raise AllocationError(
            f"not enough storage: {total_replicas} replicas requested but only "
            f"{slot_owner.size} slots available "
            f"(m={catalog.num_videos}, c={catalog.num_stripes_per_video}, k={k})"
        )
    gen = as_generator(random_state)
    chosen_slots = gen.permutation(slot_owner.size)[:total_replicas]
    replica_box = slot_owner[chosen_slots]
    return Allocation(
        catalog=catalog,
        population=population,
        replicas_per_stripe=k,
        replica_box=replica_box,
        scheme="permutation",
    )


def random_independent_allocation(
    catalog: Catalog,
    population: BoxPopulation,
    replicas_per_stripe: int,
    random_state: RandomState = None,
    on_full: str = "redraw",
    max_redraws: int = 1000,
) -> Allocation:
    """Random independent allocation (Section 2.1).

    Each replica independently selects a box with probability proportional
    to the box storage capacity.  The paper stops the process as soon as a
    replica falls into a completely filled-up box; in practice three
    policies are useful and selectable through ``on_full``:

    * ``"fail"``  — raise :class:`AllocationError` (the paper's literal reading);
    * ``"redraw"`` — redraw the box until a non-full one is found (default);
    * ``"ignore"`` — keep the placement even if it overflows the box, so
      that the *unbalanced-load* phenomenon the paper warns about
      (requiring ``c = Ω(log n)``) can be measured directly.
    """
    k = check_positive_integer(replicas_per_stripe, "replicas_per_stripe")
    if on_full not in ("fail", "redraw", "ignore"):
        raise ValueError(f"on_full must be 'fail', 'redraw' or 'ignore', got {on_full!r}")
    c = catalog.num_stripes_per_video
    capacities = population.storage_slots(c)
    total_replicas = catalog.total_stripes * k
    if on_full != "ignore" and total_replicas > int(capacities.sum()):
        raise AllocationError(
            f"not enough storage: {total_replicas} replicas requested but only "
            f"{int(capacities.sum())} slots available"
        )
    weights = population.storages.astype(np.float64)
    if weights.sum() <= 0:
        raise AllocationError("population has no storage capacity")
    probs = weights / weights.sum()
    gen = as_generator(random_state)

    replica_box = gen.choice(population.n, size=total_replicas, replace=True, p=probs)
    if on_full == "ignore":
        return Allocation(catalog, population, k, replica_box, scheme="independent")

    loads = np.zeros(population.n, dtype=np.int64)
    out = np.empty(total_replicas, dtype=np.int64)
    for i in range(total_replicas):
        box = int(replica_box[i])
        if loads[box] >= capacities[box]:
            if on_full == "fail":
                raise AllocationError(
                    f"replica {i} fell into full box {box} "
                    f"(load {loads[box]} / capacity {capacities[box]})"
                )
            redraws = 0
            while loads[box] >= capacities[box]:
                box = int(gen.choice(population.n, p=probs))
                redraws += 1
                if redraws > max_redraws:
                    raise AllocationError(
                        f"exceeded {max_redraws} redraws while placing replica {i}; "
                        "storage is too tight for independent allocation"
                    )
        out[i] = box
        loads[box] += 1
    return Allocation(catalog, population, k, out, scheme="independent")


def round_robin_allocation(
    catalog: Catalog,
    population: BoxPopulation,
    replicas_per_stripe: int,
    offset: int = 0,
) -> Allocation:
    """Deterministic round-robin allocation.

    Places replica ``j`` of stripe ``s`` on box ``(s·k + j + offset) mod n``,
    skipping boxes whose storage is already full.  Not analysed by the
    paper; provided as a deterministic control for tests and as a
    structured baseline in the allocation-balance experiment.
    """
    k = check_positive_integer(replicas_per_stripe, "replicas_per_stripe")
    c = catalog.num_stripes_per_video
    capacities = population.storage_slots(c)
    total_replicas = catalog.total_stripes * k
    if total_replicas > int(capacities.sum()):
        raise AllocationError(
            f"not enough storage: {total_replicas} replicas requested but only "
            f"{int(capacities.sum())} slots available"
        )
    loads = np.zeros(population.n, dtype=np.int64)
    out = np.empty(total_replicas, dtype=np.int64)
    cursor = offset % population.n
    for i in range(total_replicas):
        attempts = 0
        while loads[cursor] >= capacities[cursor]:
            cursor = (cursor + 1) % population.n
            attempts += 1
            if attempts > population.n:
                raise AllocationError("no box with free storage found")
        out[i] = cursor
        loads[cursor] += 1
        cursor = (cursor + 1) % population.n
    return Allocation(catalog, population, k, out, scheme="round_robin")
