"""Videos, stripes and catalogs.

The paper's model assumes every video has the same duration ``T`` (in
rounds) and the same unit bitrate, and is encoded into ``c`` *stripes* of
rate ``1/c`` each: stripe ``i`` of a video is the sub-stream made of the
packets whose number is congruent to ``i`` modulo ``c``.  Viewing a video
requires downloading its ``c`` stripes simultaneously.

The *minimal chunk size* of the system is ``ℓ = 1/c``: a box never stores
a smaller fraction of a video than one full stripe.  One *chunk* in the
sense of the analysis is one time round worth of one stripe; a position in
a stripe is therefore an integer offset in ``[0, T)``.

This module defines the identifiers and the :class:`Catalog` container
used by allocations, schedulers and the simulator.  Stripes are globally
numbered ``video_id * c + stripe_index`` so that allocation tables are
flat integer arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.validation import (
    check_non_negative_integer,
    check_positive_integer,
)

__all__ = ["StripeId", "Video", "Stripe", "Catalog"]


#: A stripe is identified globally by ``video_id * c + stripe_index``.
StripeId = int


@dataclass(frozen=True)
class Video:
    """A video of the catalog.

    Attributes
    ----------
    video_id:
        Index of the video in the catalog, ``0 ≤ video_id < m``.
    num_stripes:
        Number of stripes ``c`` the video is encoded into.
    duration:
        Duration ``T`` of the video in rounds.
    """

    video_id: int
    num_stripes: int
    duration: int

    def __post_init__(self) -> None:
        check_non_negative_integer(self.video_id, "video_id")
        check_positive_integer(self.num_stripes, "num_stripes")
        check_positive_integer(self.duration, "duration")

    @property
    def stripe_ids(self) -> Tuple[StripeId, ...]:
        """Global identifiers of the stripes of this video."""
        base = self.video_id * self.num_stripes
        return tuple(range(base, base + self.num_stripes))

    def stripe(self, index: int) -> "Stripe":
        """Return the ``index``-th stripe of this video (``0 ≤ index < c``)."""
        index = check_non_negative_integer(index, "index")
        if index >= self.num_stripes:
            raise ValueError(
                f"stripe index {index} out of range for video with "
                f"{self.num_stripes} stripes"
            )
        return Stripe(
            stripe_id=self.video_id * self.num_stripes + index,
            video_id=self.video_id,
            index=index,
            rate=1.0 / self.num_stripes,
            duration=self.duration,
        )

    @property
    def stripes(self) -> Tuple["Stripe", ...]:
        """All ``c`` stripes of this video."""
        return tuple(self.stripe(i) for i in range(self.num_stripes))


@dataclass(frozen=True)
class Stripe:
    """One stripe of a video.

    A stripe carries ``1/c`` of the video bitrate.  Its data at *position*
    ``p`` (an integer round offset ``0 ≤ p < T``) is the set of packets of
    round ``p`` whose index is congruent to :attr:`index` modulo ``c``.
    """

    stripe_id: StripeId
    video_id: int
    index: int
    rate: float
    duration: int

    def position_at(self, request_time: int, current_time: int) -> int:
        """Playback position needed at ``current_time + 1``.

        A request issued at time ``t_i`` needs, at time ``t``, the data at
        position ``t − t_i`` in the stripe (Section 2.2).
        """
        if current_time < request_time:
            raise ValueError(
                f"current_time ({current_time}) must be at least request_time "
                f"({request_time})"
            )
        return current_time - request_time

    def is_finished(self, request_time: int, current_time: int) -> bool:
        """Whether playback of this stripe has completed by ``current_time``."""
        return self.position_at(request_time, current_time) >= self.duration


class Catalog:
    """The set of ``m`` distinct videos stored in the system.

    All videos share the same stripe count ``c`` and duration ``T``, per
    the model of Section 1.1.  The catalog provides constant-time mapping
    between videos and global stripe identifiers.
    """

    def __init__(self, num_videos: int, num_stripes: int, duration: int = 120):
        self._m = check_positive_integer(num_videos, "num_videos")
        self._c = check_positive_integer(num_stripes, "num_stripes")
        self._duration = check_positive_integer(duration, "duration")

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def num_videos(self) -> int:
        """Catalog size ``m``."""
        return self._m

    @property
    def num_stripes_per_video(self) -> int:
        """Stripes per video ``c``."""
        return self._c

    @property
    def duration(self) -> int:
        """Video duration ``T`` in rounds."""
        return self._duration

    @property
    def total_stripes(self) -> int:
        """Total number of distinct stripes, ``m·c``."""
        return self._m * self._c

    @property
    def chunk_size(self) -> float:
        """Minimal chunk size ``ℓ = 1/c``."""
        return 1.0 / self._c

    def __len__(self) -> int:
        return self._m

    def __iter__(self) -> Iterator[Video]:
        for vid in range(self._m):
            yield self.video(vid)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def video(self, video_id: int) -> Video:
        """Return the :class:`Video` with index ``video_id``."""
        video_id = check_non_negative_integer(video_id, "video_id")
        if video_id >= self._m:
            raise ValueError(f"video_id {video_id} out of range for catalog of size {self._m}")
        return Video(video_id=video_id, num_stripes=self._c, duration=self._duration)

    def stripe(self, stripe_id: StripeId) -> Stripe:
        """Return the :class:`Stripe` with global identifier ``stripe_id``."""
        stripe_id = check_non_negative_integer(stripe_id, "stripe_id")
        if stripe_id >= self.total_stripes:
            raise ValueError(
                f"stripe_id {stripe_id} out of range for catalog with "
                f"{self.total_stripes} stripes"
            )
        video_id, index = divmod(stripe_id, self._c)
        return Stripe(
            stripe_id=stripe_id,
            video_id=video_id,
            index=index,
            rate=1.0 / self._c,
            duration=self._duration,
        )

    def stripe_id(self, video_id: int, stripe_index: int) -> StripeId:
        """Global identifier of stripe ``stripe_index`` of video ``video_id``."""
        video_id = check_non_negative_integer(video_id, "video_id")
        stripe_index = check_non_negative_integer(stripe_index, "stripe_index")
        if video_id >= self._m:
            raise ValueError(f"video_id {video_id} out of range for catalog of size {self._m}")
        if stripe_index >= self._c:
            raise ValueError(
                f"stripe_index {stripe_index} out of range for c={self._c}"
            )
        return video_id * self._c + stripe_index

    def video_of_stripe(self, stripe_id: StripeId) -> int:
        """Video identifier owning global stripe ``stripe_id``."""
        stripe_id = check_non_negative_integer(stripe_id, "stripe_id")
        if stripe_id >= self.total_stripes:
            raise ValueError(
                f"stripe_id {stripe_id} out of range for catalog with "
                f"{self.total_stripes} stripes"
            )
        return stripe_id // self._c

    def stripe_index_of(self, stripe_id: StripeId) -> int:
        """Stripe index within its video (``stripe_id mod c``)."""
        check_non_negative_integer(stripe_id, "stripe_id")
        return stripe_id % self._c

    def stripes_of_video(self, video_id: int) -> np.ndarray:
        """Global stripe identifiers of video ``video_id`` as an array."""
        video_id = check_non_negative_integer(video_id, "video_id")
        if video_id >= self._m:
            raise ValueError(f"video_id {video_id} out of range for catalog of size {self._m}")
        base = video_id * self._c
        return np.arange(base, base + self._c, dtype=np.int64)

    def stripe_ids_of_videos(self, video_ids: Sequence[int]) -> np.ndarray:
        """Global stripe identifiers of a collection of videos (flattened)."""
        vids = np.asarray(video_ids, dtype=np.int64)
        if vids.size and (vids.min() < 0 or vids.max() >= self._m):
            raise ValueError("video_ids out of range")
        return (vids[:, None] * self._c + np.arange(self._c, dtype=np.int64)).reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Catalog(m={self._m}, c={self._c}, T={self._duration}, "
            f"stripes={self.total_stripes})"
        )


def split_round_robin(num_packets: int, num_stripes: int) -> List[np.ndarray]:
    """Split packet indices ``0..num_packets-1`` into ``c`` round-robin stripes.

    This is the simple encoding described in Section 1.1: stripe ``i`` is
    made of the packets with number congruent to ``i`` modulo ``c``.  The
    function is mostly illustrative (the simulator never materializes
    packets) but is exercised by tests to pin down the encoding convention.
    """
    num_packets = check_non_negative_integer(num_packets, "num_packets")
    num_stripes = check_positive_integer(num_stripes, "num_stripes")
    packets = np.arange(num_packets, dtype=np.int64)
    return [packets[packets % num_stripes == i] for i in range(num_stripes)]
