"""The negative result: ``u < 1`` forces a constant catalog (Section 1.3).

The argument of the paper is constructive and this module makes it
executable:

* with minimal chunk size ``ℓ``, a box ``b`` stores data of at most
  ``d_b/ℓ`` videos, so if the catalog exceeds ``d_max/ℓ`` then *every* box
  misses at least one video entirely;
* the adversary then lets every box demand a video it stores nothing of;
  the aggregate download requirement is ``n`` (every box plays a unit-rate
  video served entirely by others) while the aggregate upload is
  ``u·n < n`` — the demand sequence cannot be satisfied;
* hence any ``u < 1`` system that must resist adversarial demands has
  catalog size at most ``d_max/ℓ = O(1)``.

The functions here compute the catalog cap, construct the adversarial
demand (one per box) against a concrete allocation, and quantify the
bandwidth shortfall, which experiment E2 measures against the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.preloading import Demand
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "catalog_upper_bound_below_threshold",
    "missing_videos_per_box",
    "adversarial_missing_video_demands",
    "bandwidth_shortfall",
    "NegativeResultWitness",
    "build_negative_witness",
]


def catalog_upper_bound_below_threshold(d_max: float, chunk_size: float) -> float:
    """Catalog cap ``m ≤ d_max/ℓ`` for a system with ``u < 1``.

    ``d_max`` is the largest per-box storage and ``ℓ`` the minimal chunk
    size (``1/c`` when whole stripes are stored).  The bound is constant
    whenever ``d_max = O(1)`` and ``ℓ = Ω(1)``.
    """
    d_max = check_positive(d_max, "d_max")
    chunk_size = check_in_range(chunk_size, "chunk_size", 0.0, 1.0, inclusive_low=False)
    return d_max / chunk_size


def missing_videos_per_box(allocation: Allocation) -> List[np.ndarray]:
    """For each box, the videos of which it stores *no* stripe at all.

    These are the videos the adversary may ask the box to play so that all
    of the box's playback must be uploaded by other boxes.
    """
    c = allocation.catalog.num_stripes_per_video
    m = allocation.catalog_size
    all_videos = np.arange(m, dtype=np.int64)
    missing: List[np.ndarray] = []
    for box_id in range(allocation.num_boxes):
        stored_stripes = allocation.stripes_on_box(box_id)
        stored_videos = np.unique(stored_stripes // c) if stored_stripes.size else np.empty(
            0, dtype=np.int64
        )
        missing.append(np.setdiff1d(all_videos, stored_videos, assume_unique=True))
    return missing


def adversarial_missing_video_demands(
    allocation: Allocation, time: int = 0, spread: bool = True
) -> List[Demand]:
    """One demand per box for a video the box stores nothing of.

    Returns the adversarial demand list (boxes that store data of every
    video are skipped — such boxes cannot be attacked this way).  With
    ``spread=True`` the adversary additionally spreads its choices across
    the missing videos (round-robin over each box's missing set) so the
    demand profile does not collapse onto a single video; this keeps the
    attack valid while making it harder to serve from playback caches.
    """
    missing = missing_videos_per_box(allocation)
    demands: List[Demand] = []
    for box_id, candidates in enumerate(missing):
        if candidates.size == 0:
            continue
        index = box_id % candidates.size if spread else 0
        demands.append(Demand(time=time, box_id=box_id, video_id=int(candidates[index])))
    return demands


def bandwidth_shortfall(num_active_boxes: int, average_upload: float) -> float:
    """Aggregate shortfall ``n_active·(1 − u)`` when every active box plays remote data.

    Positive when ``u < 1``: the aggregated download rate ``n_active``
    exceeds the aggregated upload rate ``u·n_active``.
    """
    if num_active_boxes < 0:
        raise ValueError("num_active_boxes must be non-negative")
    if average_upload < 0:
        raise ValueError("average_upload must be non-negative")
    return num_active_boxes * (1.0 - average_upload)


@dataclass(frozen=True)
class NegativeResultWitness:
    """A concrete witness of the ``u < 1`` impossibility for one allocation.

    Attributes
    ----------
    catalog_size:
        Catalog size ``m`` of the attacked allocation.
    catalog_cap:
        The bound ``d_max/ℓ``; an attack exists whenever
        ``catalog_size > catalog_cap`` is *not* required — an attack exists
        as soon as every box misses some video, which the constructor
        checks directly.
    attackable_boxes:
        Number of boxes that miss at least one video entirely.
    demands:
        The adversarial demand list (one per attackable box).
    aggregate_download:
        Total download rate required by the demands (= number of demands).
    aggregate_upload:
        Total upload capacity of the population.
    infeasible:
        Whether the demands provably exceed the aggregate upload
        (``aggregate_download > aggregate_upload``).
    """

    catalog_size: int
    catalog_cap: float
    attackable_boxes: int
    demands: Tuple[Demand, ...]
    aggregate_download: float
    aggregate_upload: float
    infeasible: bool

    def describe(self) -> Dict[str, float]:
        """Flat dictionary view for reports."""
        return {
            "catalog_size": self.catalog_size,
            "catalog_cap": self.catalog_cap,
            "attackable_boxes": self.attackable_boxes,
            "aggregate_download": self.aggregate_download,
            "aggregate_upload": self.aggregate_upload,
            "infeasible": self.infeasible,
        }


def build_negative_witness(allocation: Allocation, time: int = 0) -> NegativeResultWitness:
    """Construct the adversarial witness of the negative result for ``allocation``.

    The witness demands are *valid* for any allocation; they are *winning*
    (``infeasible=True``) exactly when the aggregate upload of the
    population is below the number of attackable boxes — which the paper's
    argument guarantees when ``u < 1`` and every box misses a video
    (``m > d_max/ℓ``).
    """
    population = allocation.population
    chunk = allocation.catalog.chunk_size
    cap = catalog_upper_bound_below_threshold(population.max_storage, chunk)
    demands = adversarial_missing_video_demands(allocation, time=time)
    aggregate_download = float(len(demands))
    aggregate_upload = population.total_upload
    return NegativeResultWitness(
        catalog_size=allocation.catalog_size,
        catalog_cap=cap,
        attackable_boxes=len(demands),
        demands=tuple(demands),
        aggregate_download=aggregate_download,
        aggregate_upload=aggregate_upload,
        infeasible=aggregate_download > aggregate_upload + 1e-9,
    )
