"""Heterogeneous systems: balance conditions, compensation and relaying (Section 4).

In a heterogeneous system the difficult case is a crowd of *poor* boxes
(upload below a threshold ``u* > 1``) all playing the same video: they
cannot replicate the data among themselves.  The paper's solution:

* **upload compensation** — every poor box ``b`` (``u_b < u*``) is paired
  with a rich box ``r(b)`` on which an upload capacity of
  ``u* + 1 − 2·u_b`` is statically reserved; a rich box ``a`` may back
  several poor boxes as long as
  ``u_a ≥ u* + Σ_{b : r(b)=a} (u* + 1 − 2·u_b)``;
* **storage balance** — ``2 ≤ d_b/u_b ≤ d/u*`` for every box, so that
  relay caching (the relay keeps a copy of every stripe it forwards) costs
  at most half of the relay's storage;
* **relayed request strategy** — a poor box issues its preloading request
  through ``r(b)`` and receives the stripes forwarded over the reserved
  upload; it requests directly only ``c_b = ⌊c·u_b − 4µ⁴⌋`` of the
  remaining stripes.  On the doubled time scale this reduces to the
  homogeneous strategy with growth bound ``µ²``.

This module implements the balance predicates, a greedy compensation
planner (first-fit decreasing on the rich boxes), the per-box reserved
upload/storage accounting, and the relayed preloading scheduler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.matching import StripeRequest
from repro.core.parameters import BoxPopulation
from repro.core.preloading import Demand
from repro.core.video import Catalog
from repro.util.validation import (
    check_in_range,
    check_non_negative_integer,
    check_positive_integer,
)

__all__ = [
    "CompensationError",
    "CompensationPlan",
    "compute_compensation_plan",
    "is_upload_compensable",
    "is_balanced",
    "direct_stripe_budget",
    "RelayedPreloadingScheduler",
    "RELAYED_START_UP_DELAY_ROUNDS",
]

#: Start-up delay of the relayed strategy (the poor-box timeline spans
#: rounds t .. t+3 before every stripe flows, then playback begins).
RELAYED_START_UP_DELAY_ROUNDS = 5


class CompensationError(RuntimeError):
    """Raised when a population cannot be ``u*``-upload-compensated."""


@dataclass(frozen=True)
class CompensationPlan:
    """A ``u*``-upload-compensation: which rich box backs which poor box.

    Attributes
    ----------
    u_star:
        The upload threshold ``u*`` the plan compensates for.
    relay_of:
        ``relay_of[b]`` is the rich box backing poor box ``b``; ``-1`` for
        rich boxes (they need no relay).
    reserved_upload:
        ``reserved_upload[a]`` is the total upload reserved on box ``a``
        for the poor boxes it backs, ``Σ_{b : r(b)=a} (u* + 1 − 2·u_b)``.
    """

    u_star: float
    relay_of: np.ndarray
    reserved_upload: np.ndarray

    def __post_init__(self) -> None:
        relay = np.asarray(self.relay_of, dtype=np.int64)
        reserved = np.asarray(self.reserved_upload, dtype=np.float64)
        if relay.ndim != 1 or reserved.ndim != 1 or relay.size != reserved.size:
            raise ValueError("relay_of and reserved_upload must be 1-D arrays of equal length")
        object.__setattr__(self, "relay_of", relay)
        object.__setattr__(self, "reserved_upload", reserved)

    @property
    def num_boxes(self) -> int:
        """Number of boxes covered by the plan."""
        return int(self.relay_of.size)

    def relay(self, box_id: int) -> Optional[int]:
        """The relay ``r(b)`` of poor box ``box_id`` (``None`` for rich boxes)."""
        value = int(self.relay_of[box_id])
        return None if value < 0 else value

    def backed_boxes(self, relay_id: int) -> np.ndarray:
        """Poor boxes backed by ``relay_id``."""
        return np.flatnonzero(self.relay_of == relay_id).astype(np.int64)

    def is_poor(self, box_id: int) -> bool:
        """Whether ``box_id`` is a poor box under this plan."""
        return int(self.relay_of[box_id]) >= 0

    def residual_uploads(self, population: BoxPopulation) -> np.ndarray:
        """Per-box upload remaining after subtracting the reserved capacity."""
        return population.uploads - self.reserved_upload


def is_upload_compensable(population: BoxPopulation, u_star: float) -> bool:
    """Whether a compensation plan exists (checked constructively)."""
    try:
        compute_compensation_plan(population, u_star)
        return True
    except CompensationError:
        return False


def compute_compensation_plan(
    population: BoxPopulation, u_star: float
) -> CompensationPlan:
    """Compute a ``u*``-upload-compensation by first-fit-decreasing packing.

    Each poor box ``b`` needs a reservation of ``u* + 1 − 2·u_b`` on some
    rich box ``a``, subject to ``u_a ≥ u* + Σ reservations on a``.  Poor
    boxes are processed by decreasing need and placed on the rich box with
    the largest remaining headroom (best-fit on remaining capacity), which
    succeeds whenever a perfect packing is "reasonably" possible; a
    :class:`CompensationError` carries the diagnostic when it is not.
    """
    u_star = check_in_range(u_star, "u_star", 1.0, math.inf, inclusive_low=False)
    uploads = population.uploads
    poor = population.poor_boxes(u_star)
    rich = population.rich_boxes(u_star)
    relay_of = np.full(population.n, -1, dtype=np.int64)
    reserved = np.zeros(population.n, dtype=np.float64)
    if poor.size == 0:
        return CompensationPlan(u_star=u_star, relay_of=relay_of, reserved_upload=reserved)
    if rich.size == 0:
        raise CompensationError(
            f"no box has upload ≥ u* = {u_star}: cannot compensate "
            f"{poor.size} poor boxes"
        )
    # Headroom of a rich box a: u_a − u* (reservations must keep u_a ≥ u* + reserved).
    headroom = uploads[rich] - u_star
    needs = u_star + 1.0 - 2.0 * uploads[poor]
    # A poor box with u_b ≥ (u*+1)/2 needs a non-positive reservation; it
    # still gets a relay (the strategy routes its preload through r(b)) but
    # consumes no headroom.
    order = np.argsort(-needs)
    for poor_idx in order:
        b = int(poor[poor_idx])
        need = max(float(needs[poor_idx]), 0.0)
        candidate_order = np.argsort(-headroom)
        placed = False
        for cand in candidate_order:
            if headroom[cand] + 1e-12 >= need:
                a = int(rich[cand])
                relay_of[b] = a
                reserved[a] += need
                headroom[cand] -= need
                placed = True
                break
        if not placed:
            raise CompensationError(
                f"cannot reserve {need:.3f} upload for poor box {b}: "
                f"maximum remaining rich-box headroom is {float(headroom.max()):.3f} "
                f"(u* = {u_star}, Δ(u*) = {population.upload_deficit(u_star):.3f}, "
                f"n = {population.n})"
            )
    return CompensationPlan(u_star=u_star, relay_of=relay_of, reserved_upload=reserved)


def is_balanced(population: BoxPopulation, u_star: float) -> bool:
    """Whether the population is ``u*``-balanced (storage-balanced + compensable)."""
    return population.is_storage_balanced(u_star) and is_upload_compensable(
        population, u_star
    )


def direct_stripe_budget(upload: float, c: int, mu: float) -> int:
    """``c_b = ⌊c·u_b − 4µ⁴⌋`` — stripes a poor box requests directly (≥ 0).

    The remaining ``c − 1 − c_b`` stripes are requested through the relay.
    ``c_b = 0`` when ``u_b ≤ 2µ⁴/c`` (the paper's convention, subsumed by
    clamping at zero).
    """
    c = check_positive_integer(c, "c")
    mu = check_in_range(mu, "mu", 1.0, math.inf)
    if upload < 0:
        raise ValueError(f"upload must be non-negative, got {upload}")
    budget = int(math.floor(c * upload - 4.0 * mu**4 + 1e-9))
    return max(budget, 0)


class RelayedPreloadingScheduler:
    """The relayed request strategy of Section 4.

    Timeline for a poor box ``b`` demanding a video in ``[t−1, t[``
    (relay ``a = r(b)``):

    * ``t``   — ``a`` issues the preloading request for ``b``'s preload
      stripe (a regular request, counted against the system);
    * ``t+1`` — ``a`` forwards that stripe to ``b`` over the statically
      reserved upload (not a request);
    * ``t+2`` — ``b`` directly requests ``c_b = ⌊c·u_b − 4µ⁴⌋`` of the
      remaining stripes;
    * ``t+3`` — ``a`` requests the remaining ``c − 1 − c_b`` stripes
      (postponed requests) and forwards them to ``b`` over the reserved
      upload, caching every stripe it forwards.

    Rich boxes follow the homogeneous strategy on the doubled time scale:
    preload at ``t``, postponed requests at ``t+2``.
    """

    def __init__(
        self,
        catalog: Catalog,
        population: BoxPopulation,
        plan: CompensationPlan,
        mu: float,
    ):
        self._catalog = catalog
        self._population = population
        self._plan = plan
        self._mu = check_in_range(mu, "mu", 1.0, math.inf)
        self._entry_counter: Dict[int, int] = {}
        self._pending: Dict[int, List[StripeRequest]] = {}
        #: (relay box, stripe) pairs that must be marked as relay-cached
        #: when the corresponding forward happens, keyed by round.
        self._relay_cache_events: Dict[int, List[Tuple[int, int]]] = {}
        self._scheduled: List[Demand] = []

    @property
    def catalog(self) -> Catalog:
        """The catalog requests are generated against."""
        return self._catalog

    @property
    def plan(self) -> CompensationPlan:
        """The compensation plan providing the relay mapping."""
        return self._plan

    @property
    def start_up_delay(self) -> int:
        """Worst-case start-up delay (poor box) in rounds."""
        return RELAYED_START_UP_DELAY_ROUNDS

    def swarm_entry_count(self, video_id: int) -> int:
        """Number of boxes that entered the swarm of ``video_id`` so far."""
        return self._entry_counter.get(int(video_id), 0)

    def on_demand(self, demand: Demand) -> List[StripeRequest]:
        """Process a demand; return the requests to issue at ``demand.time``."""
        video_id = demand.video_id
        box_id = demand.box_id
        c = self._catalog.num_stripes_per_video
        entry_index = self._entry_counter.get(video_id, 0)
        self._entry_counter[video_id] = entry_index + 1
        self._scheduled.append(demand)
        preload_index = entry_index % c
        preload_stripe = self._catalog.stripe_id(video_id, preload_index)
        other_stripes = [
            self._catalog.stripe_id(video_id, idx) for idx in range(c) if idx != preload_index
        ]

        relay = self._plan.relay(box_id)
        if relay is None:
            # Rich box: homogeneous strategy on the doubled time scale.
            immediate = [
                StripeRequest(
                    stripe_id=preload_stripe,
                    request_time=demand.time,
                    box_id=box_id,
                    is_preload=True,
                )
            ]
            postponed = [
                StripeRequest(
                    stripe_id=stripe_id,
                    request_time=demand.time + 2,
                    box_id=box_id,
                    is_preload=False,
                )
                for stripe_id in other_stripes
            ]
            if postponed:
                self._pending.setdefault(demand.time + 2, []).extend(postponed)
            return immediate

        # Poor box: relay issues the preload request on its behalf.
        immediate = [
            StripeRequest(
                stripe_id=preload_stripe,
                request_time=demand.time,
                box_id=relay,
                is_preload=True,
            )
        ]
        # The relay caches the preload stripe when it forwards it (t+1).
        self._relay_cache_events.setdefault(demand.time + 1, []).append(
            (relay, preload_stripe)
        )
        upload_b = float(self._population.uploads[box_id])
        c_b = min(direct_stripe_budget(upload_b, c, self._mu), len(other_stripes))
        direct = [
            StripeRequest(
                stripe_id=stripe_id,
                request_time=demand.time + 2,
                box_id=box_id,
                is_preload=False,
            )
            for stripe_id in other_stripes[:c_b]
        ]
        via_relay = [
            StripeRequest(
                stripe_id=stripe_id,
                request_time=demand.time + 3,
                box_id=relay,
                is_preload=False,
            )
            for stripe_id in other_stripes[c_b:]
        ]
        if direct:
            self._pending.setdefault(demand.time + 2, []).extend(direct)
        if via_relay:
            self._pending.setdefault(demand.time + 3, []).extend(via_relay)
            self._relay_cache_events.setdefault(demand.time + 3, []).extend(
                (relay, stripe_id) for stripe_id in other_stripes[c_b:]
            )
        return immediate

    def requests_due(self, time: int) -> List[StripeRequest]:
        """Pop the requests queued for round ``time``."""
        check_non_negative_integer(time, "time")
        return self._pending.pop(time, [])

    def relay_cache_events_due(self, time: int) -> List[Tuple[int, int]]:
        """Pop the ``(relay box, stripe)`` cache events for round ``time``."""
        check_non_negative_integer(time, "time")
        return self._relay_cache_events.pop(time, [])

    @property
    def demands_seen(self) -> Tuple[Demand, ...]:
        """All demands processed so far."""
        return tuple(self._scheduled)

    def reset(self) -> None:
        """Clear all counters and queued requests."""
        self._entry_counter.clear()
        self._pending.clear()
        self._relay_cache_events.clear()
        self._scheduled.clear()
