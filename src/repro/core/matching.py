"""Connection matching: requests, possession index and Lemma 1 feasibility.

At every round ``t`` the set of *stripe requests* not yet wired,
``Y = {(s_1, t_1, b_1), …, (s_p, t_p, b_p)}``, must be matched against the
boxes that possess the corresponding data so that each box ``b`` serves at
most ``⌊u_b·c⌋`` stripes (Section 2.2).  Wiring connections according to
such a matching serves every request at round ``t+1``, since each stripe
has rate ``1/c``.

This module provides:

* :class:`StripeRequest` / :class:`RequestSet` — the request multiset ``Y``;
* :class:`PossessionIndex` — the "who possesses what" relation ``B(·)``,
  combining the static allocation with playback caches and relay caches;
* :class:`ConnectionMatcher` — builds the bipartite graph ``G`` from ``Y``
  to the boxes and solves the connection matching through max flow;
* :func:`check_feasibility_hall` — the direct (exponential) form of
  Lemma 1's condition ``∀X ⊆ Y : U_{B(X)} ≥ |X|/c``, used on small
  instances to validate the flow-based answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.video import StripeId
from repro.flow.bipartite import BMatchingResult, FLOW_SOLVERS, solve_b_matching
from repro.flow.hopcroft_karp import (
    AugmentationBudgetExceeded,
    hopcroft_karp_matching,
    repair_matching,
)
from repro.util.validation import check_non_negative_integer, check_positive_integer

__all__ = [
    "StripeRequest",
    "RequestSet",
    "ArrayRequestSet",
    "MatchDelta",
    "NEVER_EXPIRES",
    "PossessionIndex",
    "ConnectionMatching",
    "ConnectionMatcher",
    "SortKeyOverflowError",
    "check_feasibility_hall",
]

#: Edge-expiry sentinel for edges that never age out (static replicas and
#: relay caches).  Playback-cache edges expire after ``entry_time + T``.
NEVER_EXPIRES: int = int(np.iinfo(np.int64).max)


@dataclass(frozen=True, order=True)
class StripeRequest:
    """A request ``(s_i, t_i, b_i)`` for stripe ``s_i`` made by box ``b_i`` at time ``t_i``."""

    stripe_id: int
    request_time: int
    box_id: int
    #: Whether this is a preloading request (vs a postponed one); only used
    #: for reporting, the matching treats both identically.
    is_preload: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        check_non_negative_integer(self.stripe_id, "stripe_id")
        check_non_negative_integer(self.request_time, "request_time")
        check_non_negative_integer(self.box_id, "box_id")


class RequestSet:
    """The multiset ``Y`` of stripe requests pending at a given round."""

    def __init__(self, requests: Iterable[StripeRequest] = ()):
        self._requests: List[StripeRequest] = list(requests)

    def add(self, request: StripeRequest) -> None:
        """Append a request to the multiset."""
        self._requests.append(request)

    def extend(self, requests: Iterable[StripeRequest]) -> None:
        """Append several requests."""
        self._requests.extend(requests)

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self):
        return iter(self._requests)

    def __getitem__(self, index: int) -> StripeRequest:
        return self._requests[index]

    @property
    def requests(self) -> Tuple[StripeRequest, ...]:
        """The requests as an immutable tuple."""
        return tuple(self._requests)

    def stripe_multiset(self) -> List[int]:
        """The multiset ``S(Y)`` of requested stripe identifiers."""
        return [r.stripe_id for r in self._requests]

    def distinct_stripes(self) -> Set[int]:
        """The set of pairwise distinct requested stripes."""
        return {r.stripe_id for r in self._requests}

    def by_video(self, num_stripes_per_video: int) -> Dict[int, List[StripeRequest]]:
        """Group requests by the video their stripe belongs to."""
        check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
        groups: Dict[int, List[StripeRequest]] = {}
        for request in self._requests:
            groups.setdefault(request.stripe_id // num_stripes_per_video, []).append(request)
        return groups

    def __repr__(self) -> str:  # pragma: no cover
        return f"RequestSet(size={len(self._requests)}, distinct={len(self.distinct_stripes())})"


_EMPTY_INT64 = np.empty(0, dtype=np.int64)

#: Cache-block clip for the repair greedy's delta gather: per row, only
#: the newest this-many playback-cache edges are materialized (plus all
#: static/relay edges).  Heuristic only — exact searches use full rows.
_GREEDY_MAX_CACHE_EDGES = 48

#: Bits reserved for the time component of the download-log view's
#: cached ``(stripe, time)`` composite keys — good for 2M rounds.
_KEY_SHIFT = 21

#: Largest stripe id whose shifted key still fits int64: the cached
#: encoding spends ``_KEY_SHIFT`` bits on time, leaving 42 for stripes.
_MAX_KEYABLE_STRIPE = (1 << (63 - _KEY_SHIFT)) - 1


def _stripes_keyable(stripes: np.ndarray) -> bool:
    """True when every stripe id's shifted composite key fits int64."""
    return stripes.size == 0 or int(stripes.max()) <= _MAX_KEYABLE_STRIPE


class SortKeyOverflowError(OverflowError):
    """A packed ``(stripe, time)`` sort key would exceed the int64 range.

    Raised instead of letting NumPy wrap silently: a wrapped key breaks
    the per-stripe monotonicity the cache-window ``searchsorted`` relies
    on, turning overflow into wrong (not just failed) matchings.  Seeing
    this error means the stripe-id universe outgrew the composite-key
    encoding — widen ``_KEY_SHIFT``'s complement by moving to a wider key
    dtype, or shrink the id space.
    """


@dataclass(frozen=True)
class MatchDelta:
    """The inter-round change of the active request multiset.

    Produced by the engine each round and handed to
    :meth:`ConnectionMatcher.match`: the new request set equals the
    previous one filtered by ``keep_mask`` (order preserved) followed by
    ``num_new`` appended arrivals.  ``keep_mask`` is ``None`` when no
    request expired.  Capacity changes (churn, faults, joins) need no
    explicit feed — the matcher compares its own load bookkeeping against
    the capacities of the current round.
    """

    #: Boolean mask over the *previous* round's requests (``None`` = all kept).
    keep_mask: Optional[np.ndarray]
    #: Number of requests appended after the survivors.
    num_new: int


class ArrayRequestSet(RequestSet):
    """A :class:`RequestSet` view over struct-of-arrays request fields.

    The engine's hot path keeps requests as parallel NumPy arrays (stripe,
    request time, box, preload flag) and only materializes
    :class:`StripeRequest` objects when an observer, a trace record or a
    witness actually needs them.  All :class:`RequestSet` queries work; the
    multiset is immutable (``add``/``extend`` raise), since the arrays are
    shared with the engine's bookkeeping.
    """

    def __init__(
        self,
        stripe_ids: np.ndarray,
        request_times: np.ndarray,
        box_ids: np.ndarray,
        preload_flags: Optional[np.ndarray] = None,
    ):
        self._stripes = np.asarray(stripe_ids, dtype=np.int64)
        self._times = np.asarray(request_times, dtype=np.int64)
        self._boxes = np.asarray(box_ids, dtype=np.int64)
        if self._stripes.shape != self._times.shape or self._stripes.shape != self._boxes.shape:
            raise ValueError("request field arrays must have identical shapes")
        if preload_flags is None:
            preload_flags = np.zeros(self._stripes.size, dtype=bool)
        self._preload = np.asarray(preload_flags, dtype=bool)
        self._materialized: Optional[List[StripeRequest]] = None

    # The base-class helpers read ``self._requests``; materialize lazily.
    @property
    def _requests(self) -> List[StripeRequest]:
        if self._materialized is None:
            self._materialized = [
                StripeRequest(
                    stripe_id=int(s), request_time=int(t), box_id=int(b), is_preload=bool(p)
                )
                for s, t, b, p in zip(
                    self._stripes.tolist(),
                    self._times.tolist(),
                    self._boxes.tolist(),
                    self._preload.tolist(),
                )
            ]
        return self._materialized

    @property
    def stripe_id_array(self) -> np.ndarray:
        """Per-request stripe identifiers (shared, do not mutate)."""
        return self._stripes

    @property
    def request_time_array(self) -> np.ndarray:
        """Per-request issue times (shared, do not mutate)."""
        return self._times

    @property
    def box_id_array(self) -> np.ndarray:
        """Per-request requesting boxes (shared, do not mutate)."""
        return self._boxes

    def add(self, request: StripeRequest) -> None:
        raise TypeError("ArrayRequestSet is immutable")

    def extend(self, requests: Iterable[StripeRequest]) -> None:
        raise TypeError("ArrayRequestSet is immutable")

    def __len__(self) -> int:
        return int(self._stripes.size)

    def __getitem__(self, index: int) -> StripeRequest:
        if self._materialized is not None:
            return self._materialized[index]
        # Single-element access (witness extraction) without materializing
        # the whole multiset.
        if isinstance(index, (int, np.integer)):
            i = int(index)
            return StripeRequest(
                stripe_id=int(self._stripes[i]),
                request_time=int(self._times[i]),
                box_id=int(self._boxes[i]),
                is_preload=bool(self._preload[i]),
            )
        return self._requests[index]

    def stripe_multiset(self) -> List[int]:
        return self._stripes.tolist()

    def distinct_stripes(self) -> Set[int]:
        return set(self._stripes.tolist())


class _DownloadLog:
    """Global (time-ordered) playback-cache log, struct-of-arrays.

    Every ``record_download`` appends one ``(stripe, box, time)`` entry;
    eviction advances a head offset in O(expired) because the engine
    appends in non-decreasing time order.  Adjacency queries go through a
    per-generation *sorted view* (stable-sorted by stripe, hence sorted by
    ``(stripe, time, arrival)``), which turns the whole round's
    playback-cache gather into a pair of ``searchsorted`` calls.
    Out-of-order appends (exercised by tests, never by the simulator) flip
    a flag; eviction then compacts and re-sorts the live segment by time,
    matching the old per-stripe ring-buffer semantics.
    """

    __slots__ = (
        "stripes",
        "boxes",
        "times",
        "head",
        "tail",
        "sorted",
        "_view_stripes",
        "_view_boxes",
        "_view_times",
        "_view_stale",
        "_append_total",
        "_view_append_total",
        "_evict_horizon",
        "_view_keys",
    )

    def __init__(self):
        self.stripes = np.empty(64, dtype=np.int64)
        self.boxes = np.empty(64, dtype=np.int64)
        self.times = np.empty(64, dtype=np.int64)
        self.head = 0
        self.tail = 0
        self.sorted = True
        self._view_stripes: np.ndarray = _EMPTY_INT64
        self._view_boxes: np.ndarray = _EMPTY_INT64
        self._view_times: np.ndarray = _EMPTY_INT64
        self._view_stale = True
        # Incremental-view bookkeeping: total entries ever appended, the
        # total as of the last view build (-1 = view unusable as a merge
        # base), and the strictest eviction horizon since that build.
        self._append_total = 0
        self._view_append_total = -1
        self._evict_horizon: Optional[int] = None
        self._view_keys: Optional[np.ndarray] = _EMPTY_INT64

    def __len__(self) -> int:
        return self.tail - self.head

    def __getstate__(self):
        live = slice(self.head, self.tail)
        return (
            self.stripes[live].copy(),
            self.boxes[live].copy(),
            self.times[live].copy(),
            self.sorted,
        )

    def __setstate__(self, state):
        stripes, boxes, times, is_sorted = state
        self.stripes, self.boxes, self.times = stripes, boxes, times
        self.head, self.tail = 0, stripes.size
        self.sorted = is_sorted
        self._view_stripes = _EMPTY_INT64
        self._view_boxes = _EMPTY_INT64
        self._view_times = _EMPTY_INT64
        self._view_stale = True
        self._append_total = int(stripes.size)
        self._view_append_total = -1
        self._evict_horizon = None
        self._view_keys = _EMPTY_INT64

    def append(self, stripe: int, box: int, time: int) -> None:
        if self.tail == self.stripes.size:
            self._grow()
        if self.tail > self.head and time < self.times[self.tail - 1]:
            self.sorted = False
        self.stripes[self.tail] = stripe
        self.boxes[self.tail] = box
        self.times[self.tail] = time
        self.tail += 1
        self._append_total += 1
        self._view_stale = True

    def extend(self, stripes: np.ndarray, boxes: np.ndarray, time: int) -> None:
        """Append a block of entries sharing one time (the engine's round)."""
        count = int(stripes.size)
        if count == 0:
            return
        while self.tail + count > self.stripes.size:
            self._grow()
        if self.tail > self.head and time < self.times[self.tail - 1]:
            self.sorted = False
        lo, hi = self.tail, self.tail + count
        self.stripes[lo:hi] = stripes
        self.boxes[lo:hi] = boxes
        self.times[lo:hi] = time
        self.tail = hi
        self._append_total += count
        self._view_stale = True

    def _grow(self) -> None:
        live = self.tail - self.head
        if self.head > 0 and live <= self.stripes.size // 2:
            # Enough slack at the head: compact instead of reallocating.
            for arr in (self.stripes, self.boxes, self.times):
                arr[:live] = arr[self.head: self.tail]
        else:
            new_size = max(64, 2 * self.stripes.size)
            for name in ("stripes", "boxes", "times"):
                old = getattr(self, name)
                new = np.empty(new_size, dtype=np.int64)
                new[:live] = old[self.head: self.tail]
                setattr(self, name, new)
        self.head, self.tail = 0, live

    def evict_before(self, horizon: int) -> None:
        """Drop every live entry with time < ``horizon``."""
        if self.head == self.tail:
            return
        if self.sorted:
            live_times = self.times[self.head: self.tail]
            advance = int(np.searchsorted(live_times, horizon, side="left"))
            if advance:
                self.head += advance
                self._view_stale = True
                if self._evict_horizon is None or horizon > self._evict_horizon:
                    self._evict_horizon = horizon
            if self.head > 4096 and self.head > (self.tail - self.head):
                self._grow()  # reclaim the dead prefix
        else:
            live = slice(self.head, self.tail)
            times = self.times[live]
            order = np.argsort(times, kind="stable")
            keep = order[times[order] >= horizon]
            kept = keep.size
            self.stripes[:kept] = self.stripes[live][keep]
            self.boxes[:kept] = self.boxes[live][keep]
            self.times[:kept] = self.times[live][keep]
            self.head, self.tail = 0, kept
            self.sorted = True
            self._view_stale = True
            self._view_append_total = -1  # compaction breaks the merge base

    def sorted_view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live entries stable-sorted by stripe: ``(stripes, times, boxes)``.

        Within a stripe the order is by time then arrival — exactly the
        order the old per-stripe ring buffers exposed.
        """
        if self._view_stale:
            if not self._patch_view_incremental():
                live = slice(self.head, self.tail)
                stripes = self.stripes[live]
                if self.sorted:
                    order = np.argsort(stripes, kind="stable")
                else:
                    by_time = np.argsort(self.times[live], kind="stable")
                    by_stripe = np.argsort(stripes[by_time], kind="stable")
                    order = by_time[by_stripe]
                self._view_stripes = stripes[order]
                self._view_times = self.times[live][order]
                self._view_boxes = self.boxes[live][order]
                if self._times_keyable() and _stripes_keyable(self._view_stripes):
                    self._view_keys = (
                        (self._view_stripes << _KEY_SHIFT) + self._view_times
                    )
                else:
                    self._view_keys = None
            self._view_append_total = self._append_total
            self._evict_horizon = None
            self._view_stale = False
        return self._view_stripes, self._view_times, self._view_boxes

    def _times_keyable(self) -> bool:
        """True when live times fit the fixed composite-key encoding.

        Stripe magnitude is checked separately (:func:`_stripes_keyable`)
        at the two key-build sites, so oversized stripe universes fall
        back to the dynamic-scale keys instead of wrapping int64.
        """
        if self.head == self.tail:
            return True
        if not self.sorted:
            return False
        return (
            int(self.times[self.head]) >= 0
            and int(self.times[self.tail - 1]) < (1 << _KEY_SHIFT)
        )

    def view_keys(self) -> Optional[np.ndarray]:
        """``(stripe << _KEY_SHIFT) + time`` per sorted-view entry, cached.

        ``None`` when the live times fall outside ``[0, 2**_KEY_SHIFT)``
        (never in simulator runs) — callers then build their own keys.
        """
        self.sorted_view()
        return self._view_keys

    def _patch_view_incremental(self) -> bool:
        """Rebuild the sorted view from the previous one plus the delta.

        Sound only while the log stays time-sorted: head evictions map to
        a time filter on the cached view, and the entries appended since
        the last build sit at the tail with times no earlier than any
        cached entry, so one ``searchsorted`` places each new entry after
        its stripe's existing run.  Returns ``False`` (caller does a full
        rebuild) whenever the cached view cannot be proven to match the
        live segment exactly.
        """
        if not self.sorted or self._view_append_total < 0:
            return False
        new_k = self._append_total - self._view_append_total
        live_n = self.tail - self.head
        if new_k < 0 or new_k > live_n:
            return False
        old_s, old_t, old_b = self._view_stripes, self._view_times, self._view_boxes
        old_k = self._view_keys
        if self._evict_horizon is not None:
            keep = old_t >= self._evict_horizon
            old_s, old_t, old_b = old_s[keep], old_t[keep], old_b[keep]
            if old_k is not None:
                old_k = old_k[keep]
        if old_s.size + new_k != live_n:
            return False
        if new_k == 0:
            self._view_stripes, self._view_times, self._view_boxes = old_s, old_t, old_b
            self._view_keys = old_k
            return True
        lo = self.tail - new_k
        order = np.argsort(self.stripes[lo: self.tail], kind="stable")
        add_s = self.stripes[lo: self.tail][order]
        add_t = self.times[lo: self.tail][order]
        add_b = self.boxes[lo: self.tail][order]
        idx = np.searchsorted(old_s, add_s, side="right")
        idx += np.arange(new_k, dtype=np.int64)
        merged_s = np.empty(live_n, dtype=np.int64)
        merged_t = np.empty(live_n, dtype=np.int64)
        merged_b = np.empty(live_n, dtype=np.int64)
        old_slots = np.ones(live_n, dtype=bool)
        old_slots[idx] = False
        merged_s[idx] = add_s
        merged_t[idx] = add_t
        merged_b[idx] = add_b
        merged_s[old_slots] = old_s
        merged_t[old_slots] = old_t
        merged_b[old_slots] = old_b
        self._view_stripes = merged_s
        self._view_times = merged_t
        self._view_boxes = merged_b
        if old_k is not None and self._times_keyable() and _stripes_keyable(add_s):
            merged_k = np.empty(live_n, dtype=np.int64)
            merged_k[idx] = (add_s << _KEY_SHIFT) + add_t
            merged_k[old_slots] = old_k
            self._view_keys = merged_k
        else:
            self._view_keys = None
        return True

    def live_stripes(self) -> np.ndarray:
        """Stripe column of the live segment (unsorted, may repeat)."""
        return self.stripes[self.head: self.tail]

    def live_boxes(self) -> np.ndarray:
        """Box column of the live segment (unsorted, may repeat)."""
        return self.boxes[self.head: self.tail]


class PossessionIndex:
    """The relation "box ``b`` possesses the data needed by request ``x``".

    A box possesses the data needed by request ``(s, t_i, b_i)`` at the
    current round ``t`` when any of the following holds (Section 2.2 and
    the relay extension of Section 4):

    * it statically stores a replica of ``s`` (random allocation);
    * it caches ``s`` as the relay of a poor box;
    * it itself requested ``s`` at some ``t_j`` with ``t − T ≤ t_j < t_i``
      (playback cache: it is further ahead in the same stripe).

    The static stripe→boxes relation is precomputed once from the
    allocation as a CSR (``indptr``/``indices``) index; the dynamic caches
    live in one global struct-of-arrays download log (O(expired)
    eviction, whole-round batched queries).  The batched
    :meth:`adjacency_for` emits the whole round's bipartite adjacency as
    CSR arrays, which is what the Hopcroft–Karp matching kernel consumes.
    """

    def __init__(self, allocation: Allocation, cache_window: int):
        self._allocation = allocation
        self._window = check_positive_integer(cache_window, "cache_window")
        # Static stripe -> sorted distinct holder boxes, in CSR form.
        self._rebuild_static()
        # Global struct-of-arrays log of (stripe, box, time) downloads.
        self._log = _DownloadLog()
        # stripe_id -> set of boxes relay-caching it (Section 4).
        self._relays: Dict[int, Set[int]] = {}
        self._relay_arrays: Dict[int, np.ndarray] = {}

    @property
    def allocation(self) -> Allocation:
        """The underlying static allocation."""
        return self._allocation

    @property
    def cache_window(self) -> int:
        """Playback-cache window ``T`` in rounds."""
        return self._window

    def _rebuild_static(self) -> None:
        allocation = self._allocation
        k = allocation.replicas_per_stripe
        num_stripes = allocation.num_stripes
        if num_stripes and k:
            grid = np.sort(allocation.replica_box.reshape(num_stripes, k), axis=1)
            keep = np.ones_like(grid, dtype=bool)
            if k > 1:
                keep[:, 1:] = grid[:, 1:] != grid[:, :-1]
            counts = keep.sum(axis=1)
            self._static_indptr = np.zeros(num_stripes + 1, dtype=np.int64)
            np.cumsum(counts, out=self._static_indptr[1:])
            self._static_boxes = grid[keep].astype(np.int64)
        else:
            self._static_indptr = np.zeros(num_stripes + 1, dtype=np.int64)
            self._static_boxes = _EMPTY_INT64

    def set_allocation(self, allocation: Allocation) -> None:
        """Swap the allocation reference without rebuilding the static index.

        Only valid when the replica placement is unchanged (e.g. the
        population grew around the same ``replica_box`` array); use
        :meth:`refresh_allocation` after placements changed.
        """
        if allocation.replica_box is not self._allocation.replica_box and not (
            allocation.replica_box.shape == self._allocation.replica_box.shape
            and np.array_equal(allocation.replica_box, self._allocation.replica_box)
        ):
            raise ValueError(
                "set_allocation requires an identical replica placement; "
                "use refresh_allocation for changed placements"
            )
        self._allocation = allocation

    def refresh_allocation(self, allocation: Allocation) -> None:
        """Adopt a new allocation, rebuilding the static stripe→boxes index.

        The dynamic state — playback-cache swarms, eviction timeline and
        relay caches — is preserved, which is what the live ``add_videos``
        reconfiguration needs: existing downloads keep serving while the
        static index grows.
        """
        self._allocation = allocation
        self._rebuild_static()

    # ------------------------------------------------------------------ #
    # Dynamic state maintenance
    # ------------------------------------------------------------------ #
    def record_download(self, stripe_id: StripeId, box_id: int, time: int) -> None:
        """Record that ``box_id`` requested/downloads ``stripe_id`` starting at ``time``."""
        self._log.append(int(stripe_id), int(box_id), int(time))

    def record_downloads(
        self, stripe_ids: np.ndarray, box_ids: np.ndarray, time: int
    ) -> None:
        """Record a block of downloads all starting at round ``time`` (hot path)."""
        self._log.extend(
            np.asarray(stripe_ids, dtype=np.int64),
            np.asarray(box_ids, dtype=np.int64),
            int(time),
        )

    def record_relay_cache(self, stripe_id: StripeId, box_id: int) -> None:
        """Record that ``box_id`` relay-caches ``stripe_id`` for a poor box."""
        stripe_id = int(stripe_id)
        self._relays.setdefault(stripe_id, set()).add(int(box_id))
        self._relay_arrays.pop(stripe_id, None)

    def evict_before(self, current_time: int) -> None:
        """Drop cache entries older than ``current_time − T``."""
        self._log.evict_before(current_time - self._window)

    # ------------------------------------------------------------------ #
    # Possession queries
    # ------------------------------------------------------------------ #
    def static_servers(self, stripe_id: StripeId) -> np.ndarray:
        """Sorted distinct boxes statically holding ``stripe_id`` (CSR slice)."""
        stripe_id = int(stripe_id)
        return self._static_boxes[
            self._static_indptr[stripe_id]: self._static_indptr[stripe_id + 1]
        ]

    def _cache_slice(
        self, stripe_id: int, request_time: int, current_time: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Playback-cache servers and their entry times for one request."""
        if not len(self._log):
            return _EMPTY_INT64, _EMPTY_INT64
        stripes, times, boxes = self._log.sorted_view()
        stripe_id = int(stripe_id)
        lo = int(np.searchsorted(stripes, stripe_id, side="left"))
        hi = int(np.searchsorted(stripes, stripe_id, side="right"))
        if lo == hi:
            return _EMPTY_INT64, _EMPTY_INT64
        horizon = current_time - self._window
        segment = times[lo:hi]
        a = int(np.searchsorted(segment, horizon, side="left"))
        b = int(np.searchsorted(segment, request_time, side="left"))
        return boxes[lo + a: lo + b], segment[a:b]

    def _cache_boxes_array(
        self, stripe_id: int, request_time: int, current_time: int
    ) -> np.ndarray:
        """Playback-cache servers as an array slice (may contain duplicates)."""
        return self._cache_slice(stripe_id, request_time, current_time)[0]

    def _relay_array(self, stripe_id: int) -> np.ndarray:
        relays = self._relays.get(stripe_id)
        if not relays:
            return _EMPTY_INT64
        cached = self._relay_arrays.get(stripe_id)
        if cached is None or cached.size != len(relays):
            cached = np.fromiter(relays, dtype=np.int64, count=len(relays))
            self._relay_arrays[stripe_id] = cached
        return cached

    def cache_servers(
        self, stripe_id: StripeId, request_time: int, current_time: int
    ) -> Set[int]:
        """Boxes able to serve ``stripe_id`` from their playback cache."""
        return {
            int(b)
            for b in self._cache_boxes_array(int(stripe_id), request_time, current_time)
        }

    def servers_for(self, request: StripeRequest, current_time: int) -> Set[int]:
        """The neighbourhood ``B(x)`` of a request in the bipartite graph ``G``."""
        servers: Set[int] = set(self.static_servers(request.stripe_id).tolist())
        servers |= self._relays.get(int(request.stripe_id), set())
        servers |= self.cache_servers(request.stripe_id, request.request_time, current_time)
        return servers

    def _cache_windows(
        self, stripes: np.ndarray, times: np.ndarray, current_time: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-request playback-cache windows into the log's sorted view.

        Returns ``(sorted_times, sorted_boxes, win_lo, win_hi)`` where
        ``[win_lo[i], win_hi[i])`` slices request ``i``'s cache window —
        entries of its stripe with time in ``[current_time − T,
        request_time)``.  Uses the view's cached composite keys when the
        involved times fit the fixed encoding; otherwise (exotic
        test-only inputs) builds one-shot keys with a dynamic scale.
        """
        sorted_stripes, sorted_times, sorted_boxes = self._log.sorted_view()
        keys = self._log.view_keys()
        if (
            keys is not None
            and times.size
            and int(times.min()) >= 0
            and int(times.max()) < (1 << _KEY_SHIFT)
            and _stripes_keyable(stripes)
        ):
            lo = max(current_time - self._window, 0)
            shifted = stripes << _KEY_SHIFT
            win_lo = np.searchsorted(keys, shifted + lo, side="left")
            win_hi = np.searchsorted(keys, shifted + times, side="left")
        else:
            # Shift times to be non-negative so the composite keys are
            # monotone per stripe even for exotic (test-only) inputs.
            base = min(int(sorted_times.min()), 0)
            span = max(
                int(sorted_times.max()),
                int(times.max()) if times.size else 0,
                current_time - self._window,
            )
            scale = span - base + 2
            max_stripe = int(sorted_stripes.max()) if sorted_stripes.size else 0
            if times.size:
                max_stripe = max(max_stripe, int(stripes.max()))
            if max_stripe > (np.iinfo(np.int64).max - (span - base)) // scale:
                raise SortKeyOverflowError(
                    f"cannot pack (stripe, time) sort keys: max stripe id "
                    f"{max_stripe} with time span {span - base} overflows "
                    f"int64 under the dynamic scale {scale}; shrink the "
                    "stripe-id universe or widen the key dtype"
                )
            keys = sorted_stripes * scale + (sorted_times - base)
            lo = max(current_time - self._window - base, 0)
            win_lo = np.searchsorted(keys, stripes * scale + lo, side="left")
            win_hi = np.searchsorted(
                keys, stripes * scale + (times - base), side="left"
            )
        return sorted_times, sorted_boxes, win_lo, win_hi

    def adjacency_for(
        self,
        requests: Sequence[StripeRequest],
        current_time: int,
        exclude_self: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """CSR adjacency (requests → candidate server boxes) for one round.

        Row ``i`` lists the boxes that possess the data of ``requests[i]``
        — excluding the requesting box itself unless ``exclude_self`` is
        disabled.  Rows may contain duplicates (a box can hold a stripe
        statically *and* cache it); the matching kernel tolerates them.
        The output feeds
        :func:`repro.flow.hopcroft_karp.hopcroft_karp_matching` directly.
        """
        num = len(requests)
        if num == 0:
            return np.zeros(1, dtype=np.int64), _EMPTY_INT64
        # Subclasses predating the batched API may override the set-based
        # ``servers_for``/``cache_servers`` only; honour their overrides
        # through the (slower) set-driven fallback.
        set_override = type(self).servers_for is not PossessionIndex.servers_for or (
            type(self).cache_servers is not PossessionIndex.cache_servers
            and type(self)._cache_boxes_array is PossessionIndex._cache_boxes_array
        )
        if set_override:
            return self._adjacency_from_sets(requests, current_time, exclude_self)

        if isinstance(requests, ArrayRequestSet):
            stripes = requests.stripe_id_array
            boxes = requests.box_id_array
            times = requests.request_time_array
        else:
            stripes = np.fromiter(
                (r.stripe_id for r in requests), dtype=np.int64, count=num
            )
            boxes = np.fromiter((r.box_id for r in requests), dtype=np.int64, count=num)
            times = np.fromiter(
                (r.request_time for r in requests), dtype=np.int64, count=num
            )
        # Static holders, gathered for all requests at once: row i is the
        # CSR slice of its stripe, materialized through one fancy index.
        row_starts = self._static_indptr[stripes]
        lens = self._static_indptr[stripes + 1] - row_starts
        total = int(lens.sum())
        offsets = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], lens)
            + np.repeat(row_starts, lens)
        )
        all_vals = self._static_boxes[gather]
        all_rows = np.repeat(np.arange(num, dtype=np.int64), lens)

        # Dynamic additions (playback caches, relays).  An overridden cache
        # hook may draw on state outside the base download log, so it must
        # be consulted request by request; the default path gathers the
        # whole round's playback-cache windows with two searchsorted calls
        # on the stripe-sorted log (composite ``stripe·K + time`` keys).
        cache_hook_overridden = (
            type(self)._cache_boxes_array is not PossessionIndex._cache_boxes_array
        )
        if len(self._log) or self._relays or cache_hook_overridden:
            extra_vals: List[np.ndarray] = []
            extra_rows: List[np.ndarray] = []
            if cache_hook_overridden:
                for i, request in enumerate(requests):
                    window = self._cache_boxes_array(
                        int(stripes[i]), request.request_time, current_time
                    )
                    if window.size:
                        extra_vals.append(window)
                        extra_rows.append(np.full(window.size, i, dtype=np.int64))
            elif len(self._log):
                sorted_times, sorted_boxes, win_lo, win_hi = self._cache_windows(
                    stripes, times, current_time
                )
                # A request issued before the horizon has an inverted
                # (empty) window: clip, as the old slice-based path did.
                counts_cache = np.maximum(win_hi - win_lo, 0)
                total_cache = int(counts_cache.sum())
                if total_cache:
                    cache_offsets = np.zeros(num + 1, dtype=np.int64)
                    np.cumsum(counts_cache, out=cache_offsets[1:])
                    gather_cache = (
                        np.arange(total_cache, dtype=np.int64)
                        - np.repeat(cache_offsets[:-1], counts_cache)
                        + np.repeat(win_lo, counts_cache)
                    )
                    cache_vals = sorted_boxes[gather_cache]
                    if not self._relays:
                        # Common case (static + caches only): both blocks
                        # are already row-major, so place them positionally
                        # instead of paying a stable sort over all edges.
                        row_counts = lens + counts_cache
                        indptr_merged = np.zeros(num + 1, dtype=np.int64)
                        np.cumsum(row_counts, out=indptr_merged[1:])
                        merged = np.empty(total + total_cache, dtype=np.int64)
                        merged[
                            np.repeat(indptr_merged[:-1], lens)
                            + (gather - np.repeat(row_starts, lens))
                        ] = all_vals
                        merged[
                            np.repeat(indptr_merged[:-1] + lens, counts_cache)
                            + (gather_cache - np.repeat(win_lo, counts_cache))
                        ] = cache_vals
                        all_vals = merged
                        all_rows = np.repeat(
                            np.arange(num, dtype=np.int64), row_counts
                        )
                        extra_vals = []
                    else:
                        extra_vals.append(cache_vals)
                        extra_rows.append(
                            np.repeat(np.arange(num, dtype=np.int64), counts_cache)
                        )
            if self._relays:
                relay_stripes = np.fromiter(
                    self._relays.keys(), dtype=np.int64, count=len(self._relays)
                )
                for i in np.flatnonzero(np.isin(stripes, relay_stripes)).tolist():
                    relay = self._relay_array(int(stripes[i]))
                    if relay.size:
                        extra_vals.append(relay)
                        extra_rows.append(np.full(relay.size, i, dtype=np.int64))
            if extra_vals:
                all_vals = np.concatenate([all_vals] + extra_vals)
                all_rows = np.concatenate([all_rows] + extra_rows)
                order = np.argsort(all_rows, kind="stable")
                all_vals = all_vals[order]
                all_rows = all_rows[order]

        if exclude_self:
            mask = all_vals != boxes[all_rows]
            if not mask.all():
                all_vals = all_vals[mask]
                all_rows = all_rows[mask]
        counts = np.bincount(all_rows, minlength=num)
        indptr = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, all_vals

    def _adjacency_from_sets(
        self,
        requests: Sequence[StripeRequest],
        current_time: int,
        exclude_self: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Compatibility adjacency builder driven by :meth:`servers_for`."""
        rows: List[np.ndarray] = []
        indptr = np.zeros(len(requests) + 1, dtype=np.int64)
        for i, request in enumerate(requests):
            servers = self.servers_for(request, current_time)
            if exclude_self:
                servers.discard(request.box_id)
            row = np.fromiter(servers, dtype=np.int64, count=len(servers))
            rows.append(row)
            indptr[i + 1] = indptr[i] + row.size
        indices = np.concatenate(rows) if rows else _EMPTY_INT64
        return indptr, indices

    def row_with_expiry(
        self,
        stripe_id: int,
        box_id: int,
        request_time: int,
        current_time: int,
        exclude_self: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One request's candidate boxes plus per-edge expiry rounds.

        The lazily materialized row the incremental repair augments
        through: parallel int64 arrays of candidate boxes and the last
        round each edge stays valid (:data:`NEVER_EXPIRES` for static
        and relay edges, ``entry_time + T`` for playback-cache edges).
        """
        stripe_id = int(stripe_id)
        static = self.static_servers(stripe_id)
        parts = [static]
        exp_parts = [np.full(static.size, NEVER_EXPIRES, dtype=np.int64)]
        cache_boxes, cache_times = self._cache_slice(
            stripe_id, request_time, current_time
        )
        if cache_boxes.size:
            parts.append(cache_boxes)
            exp_parts.append(cache_times + self._window)
        if self._relays:
            relay = self._relay_array(stripe_id)
            if relay.size:
                parts.append(relay)
                exp_parts.append(
                    np.full(relay.size, NEVER_EXPIRES, dtype=np.int64)
                )
        if len(parts) == 1:
            boxes_arr, expiry_arr = parts[0], exp_parts[0]
        else:
            boxes_arr = np.concatenate(parts)
            expiry_arr = np.concatenate(exp_parts)
        if exclude_self:
            mask = boxes_arr != box_id
            if not mask.all():
                boxes_arr = boxes_arr[mask]
                expiry_arr = expiry_arr[mask]
        return boxes_arr, expiry_arr

    def adjacency_delta_for(
        self,
        requests: Sequence[StripeRequest],
        current_time: int,
        rows: Optional[np.ndarray] = None,
        exclude_self: bool = True,
        max_cache_edges: Optional[int] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR adjacency restricted to ``rows``, with per-edge expiries.

        The incremental round path never re-gathers the full instance:
        pairs carried over from the previous round's CSR stay valid until
        their recorded expiry, so only the *delta rows* (arrivals plus
        requests whose pair was retired) need fresh adjacency.  ``rows``
        selects those request indices (``None`` = all of them); the result
        is ``(indptr, indices, expiry)`` over ``len(rows)`` rows, where
        ``expiry[e]`` is the last round edge ``e`` remains valid
        (:data:`NEVER_EXPIRES` for static/relay edges, ``entry_time + T``
        for playback-cache edges).

        ``max_cache_edges`` clips every row's playback-cache block to its
        *newest* that-many entries (popular stripes accumulate thousands
        of cachers per window; the newest expire last, so the kept pairs
        survive longest).  Clipped rows are **incomplete** — valid for
        heuristic passes like the repair greedy, never for an exact
        solve.
        """
        if isinstance(requests, ArrayRequestSet):
            stripes = requests.stripe_id_array
            boxes = requests.box_id_array
            times = requests.request_time_array
        else:
            num_all = len(requests)
            stripes = np.fromiter(
                (r.stripe_id for r in requests), dtype=np.int64, count=num_all
            )
            boxes = np.fromiter(
                (r.box_id for r in requests), dtype=np.int64, count=num_all
            )
            times = np.fromiter(
                (r.request_time for r in requests), dtype=np.int64, count=num_all
            )
        if rows is not None:
            rows = np.asarray(rows, dtype=np.int64)
            stripes = stripes[rows]
            boxes = boxes[rows]
            times = times[rows]
        num = int(stripes.size)
        if num == 0:
            return np.zeros(1, dtype=np.int64), _EMPTY_INT64, _EMPTY_INT64

        # Static block: one fancy-index gather over the stripe CSR.
        row_starts = self._static_indptr[stripes]
        lens = self._static_indptr[stripes + 1] - row_starts
        total = int(lens.sum())
        offsets = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        gather = (
            np.arange(total, dtype=np.int64)
            - np.repeat(offsets[:-1], lens)
            + np.repeat(row_starts, lens)
        )
        all_vals = self._static_boxes[gather]
        all_rows = np.repeat(np.arange(num, dtype=np.int64), lens)
        all_expiry = np.full(total, NEVER_EXPIRES, dtype=np.int64)

        extra_vals: List[np.ndarray] = []
        extra_rows: List[np.ndarray] = []
        extra_expiry: List[np.ndarray] = []
        if len(self._log):
            sorted_times, sorted_boxes, win_lo, win_hi = self._cache_windows(
                stripes, times, current_time
            )
            if max_cache_edges is not None:
                win_lo = np.maximum(win_lo, win_hi - max_cache_edges)
            counts_cache = np.maximum(win_hi - win_lo, 0)
            total_cache = int(counts_cache.sum())
            if total_cache:
                cache_offsets = np.zeros(num + 1, dtype=np.int64)
                np.cumsum(counts_cache, out=cache_offsets[1:])
                gather_cache = (
                    np.arange(total_cache, dtype=np.int64)
                    - np.repeat(cache_offsets[:-1], counts_cache)
                    + np.repeat(win_lo, counts_cache)
                )
                cache_vals = sorted_boxes[gather_cache]
                cache_expiry = sorted_times[gather_cache] + self._window
                if not self._relays:
                    # Static + caches only: positional merge, no edge sort.
                    row_counts = lens + counts_cache
                    indptr_merged = np.zeros(num + 1, dtype=np.int64)
                    np.cumsum(row_counts, out=indptr_merged[1:])
                    merged = np.empty(total + total_cache, dtype=np.int64)
                    merged_expiry = np.empty(total + total_cache, dtype=np.int64)
                    static_pos = (
                        np.repeat(indptr_merged[:-1], lens)
                        + (gather - np.repeat(row_starts, lens))
                    )
                    cache_pos = (
                        np.repeat(indptr_merged[:-1] + lens, counts_cache)
                        + (gather_cache - np.repeat(win_lo, counts_cache))
                    )
                    merged[static_pos] = all_vals
                    merged[cache_pos] = cache_vals
                    merged_expiry[static_pos] = all_expiry
                    merged_expiry[cache_pos] = cache_expiry
                    all_vals = merged
                    all_expiry = merged_expiry
                    all_rows = np.repeat(np.arange(num, dtype=np.int64), row_counts)
                else:
                    extra_vals.append(cache_vals)
                    extra_rows.append(
                        np.repeat(np.arange(num, dtype=np.int64), counts_cache)
                    )
                    extra_expiry.append(cache_expiry)
        if self._relays:
            relay_stripes = np.fromiter(
                self._relays.keys(), dtype=np.int64, count=len(self._relays)
            )
            for i in np.flatnonzero(np.isin(stripes, relay_stripes)).tolist():
                relay = self._relay_array(int(stripes[i]))
                if relay.size:
                    extra_vals.append(relay)
                    extra_rows.append(np.full(relay.size, i, dtype=np.int64))
                    extra_expiry.append(
                        np.full(relay.size, NEVER_EXPIRES, dtype=np.int64)
                    )
        if extra_vals:
            all_vals = np.concatenate([all_vals] + extra_vals)
            all_rows = np.concatenate([all_rows] + extra_rows)
            all_expiry = np.concatenate([all_expiry] + extra_expiry)
            order = np.argsort(all_rows, kind="stable")
            all_vals = all_vals[order]
            all_rows = all_rows[order]
            all_expiry = all_expiry[order]

        if exclude_self:
            mask = all_vals != boxes[all_rows]
            if not mask.all():
                all_vals = all_vals[mask]
                all_rows = all_rows[mask]
                all_expiry = all_expiry[mask]
        counts = np.bincount(all_rows, minlength=num)
        indptr = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, all_vals, all_expiry

    def swarm_size(self, video_id: int, num_stripes_per_video: int) -> int:
        """Number of distinct boxes currently downloading any stripe of a video."""
        base = video_id * num_stripes_per_video
        stripes = self._log.live_stripes()
        if not stripes.size:
            return 0
        mask = (stripes >= base) & (stripes < base + num_stripes_per_video)
        if not mask.any():
            return 0
        return int(np.unique(self._log.live_boxes()[mask]).size)


@dataclass(frozen=True)
class ConnectionMatching:
    """Result of wiring the requests of one round.

    Attributes
    ----------
    feasible:
        Whether every request could be assigned a server.
    assignment:
        For each request (in the order of the request set), the box serving
        it, or ``-1`` when infeasible and left unmatched.
    matched:
        Number of matched requests.
    request_set:
        The request multiset that was matched.
    obstruction_witness:
        When infeasible, indices (into the request set) of a subset ``X``
        violating the Lemma 1 condition ``U_{B(X)} ≥ |X|/c``.
    box_load:
        Per-box number of stripes served under the returned assignment.
    capacities:
        Effective per-box capacities the matching was solved against
        (upload slots minus any ``busy_slots``, clipped at zero) — the
        exact right-hand side of the solved instance, reused by the
        differential solver oracle.
    degraded:
        ``True`` when the primary solver ran out of its augmentation
        budget and the round was re-solved by the Dinic fallback.  The
        matching is still a maximum matching of the same instance; the
        flag only records that the fast path gave up.
    repair_fallback:
        ``True`` when the incremental repair path exceeded its search
        budget and the round was re-solved by the full Hopcroft–Karp
        kernel.  Like ``degraded``, a pure provenance flag: the matching
        itself is identical to what the repair would have produced.
    """

    feasible: bool
    assignment: np.ndarray
    matched: int
    request_set: RequestSet
    obstruction_witness: Optional[Tuple[int, ...]]
    box_load: np.ndarray
    capacities: np.ndarray
    degraded: bool = False
    repair_fallback: bool = False


class ConnectionMatcher:
    """Builds the bipartite graph ``G`` and solves the connection matching.

    Parameters
    ----------
    upload_slots:
        Per-box number of stripes uploadable per round, ``⌊u_b·c⌋``,
        possibly already reduced by statically reserved relay capacity
        (Section 4).
    solver:
        ``"hopcroft_karp"`` (default) matches directly on the CSR
        adjacency emitted by :meth:`PossessionIndex.adjacency_for`;
        ``"dinic"``, ``"push_relabel"`` and ``"edmonds_karp"`` keep the
        original edge-list → max-flow reduction and serve as oracles in
        cross-validation tests and benchmarks.
    augmentation_budget:
        Optional per-round cap on the Hopcroft–Karp kernel's
        augmenting-path searches.  When the kernel exceeds it the round
        is transparently re-solved with the Dinic fallback and the
        returned matching carries ``degraded=True`` — graceful
        degradation instead of an unbounded solve.  Ignored by the
        max-flow solvers (they have no augmentation budget).
    """

    def __init__(
        self,
        upload_slots: Sequence[int],
        solver: str = "hopcroft_karp",
        augmentation_budget: Optional[int] = None,
    ):
        slots = np.asarray(upload_slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size == 0:
            raise ValueError("upload_slots must be a non-empty 1-D sequence")
        if np.any(slots < 0):
            raise ValueError("upload_slots must be non-negative")
        if solver != "hopcroft_karp" and solver not in FLOW_SOLVERS:
            known = ", ".join(["hopcroft_karp"] + sorted(FLOW_SOLVERS))
            raise ValueError(f"solver must be one of {known}, got {solver!r}")
        self._slots = slots
        self._solver = solver
        self._augmentation_budget: Optional[int] = None
        self.set_augmentation_budget(augmentation_budget)
        # Incremental round state: per previous-round request, the last
        # round its matched pair stays valid (meaningless where unmatched).
        # ``None`` means "no usable state" — the next delta round runs the
        # full kernel once and rebuilds it.
        self._pair_expiry: Optional[np.ndarray] = None
        self._partial_repair: Optional[np.ndarray] = None
        self._repair_search_budget: Optional[int] = None
        self._repair_rounds = 0

    @property
    def upload_slots(self) -> np.ndarray:
        """Per-box stripe-upload capacity used for the matching."""
        return self._slots

    @property
    def solver(self) -> str:
        """Name of the matching kernel in use."""
        return self._solver

    @property
    def augmentation_budget(self) -> Optional[int]:
        """Current per-round augmentation budget (``None`` = unlimited)."""
        return self._augmentation_budget

    def set_augmentation_budget(self, budget: Optional[int]) -> None:
        """Set (or clear, with ``None``) the per-round augmentation budget."""
        if budget is not None:
            budget = int(budget)
            if budget < 0:
                raise ValueError("augmentation_budget must be non-negative")
        self._augmentation_budget = budget

    @property
    def repair_search_budget(self) -> Optional[int]:
        """Search cap of the incremental repair (``None`` = size heuristic)."""
        return getattr(self, "_repair_search_budget", None)

    def set_repair_search_budget(self, budget: Optional[int]) -> None:
        """Cap the incremental repair's augmenting-path searches.

        When a round's repair would exceed the cap it re-runs the full
        Hopcroft–Karp kernel instead (counted via
        :attr:`ConnectionMatching.repair_fallback`).  ``None`` restores
        the default ``max(256, 2·⌈√n⌉)`` heuristic.
        """
        if budget is not None:
            budget = int(budget)
            if budget < 0:
                raise ValueError("repair_search_budget must be non-negative")
        self._repair_search_budget = budget

    @property
    def repair_rounds(self) -> int:
        """Rounds solved entirely by the incremental repair (no full kernel)."""
        return getattr(self, "_repair_rounds", 0)

    def reset_incremental_state(self) -> None:
        """Drop the incremental pair bookkeeping (next round solves cold)."""
        self._pair_expiry = None
        self._partial_repair = None

    def update_upload_slots(self, upload_slots: Sequence[int]) -> None:
        """Replace the per-box capacities (live capacity reconfiguration).

        The new vector may be longer than the old one (boxes joined) but
        never shorter; it takes effect from the next :meth:`match` call.
        """
        slots = np.asarray(upload_slots, dtype=np.int64)
        if slots.ndim != 1 or slots.size < self._slots.size:
            raise ValueError(
                "upload_slots must be a 1-D sequence at least as long as the "
                f"current population ({self._slots.size})"
            )
        if np.any(slots < 0):
            raise ValueError("upload_slots must be non-negative")
        self._slots = slots

    def match(
        self,
        requests: RequestSet,
        possession: PossessionIndex,
        current_time: int,
        busy_slots: Optional[Sequence[int]] = None,
        warm_start: Optional[Sequence[int]] = None,
        delta: Optional[MatchDelta] = None,
    ) -> ConnectionMatching:
        """Wire the requests of round ``current_time``.

        ``busy_slots`` optionally gives, per box, the number of upload
        slots already consumed by connections carried over from previous
        rounds (ongoing stripe transfers); they are subtracted from the
        capacity available to new requests.

        ``warm_start`` optionally seeds the matching with a previous
        round's request→box assignment (``-1`` = unmatched).  Stale pairs
        (departed boxes, evicted caches, exhausted capacity) are dropped
        during validation, so the result is always a maximum matching of
        the *current* instance; only the solve gets cheaper.  Ignored by
        the max-flow oracle solvers.

        ``delta`` additionally describes how the request set evolved from
        the previous ``match`` call (see :class:`MatchDelta`) and enables
        the incremental path: instead of re-gathering the full adjacency,
        the matcher retires only the pairs invalidated by the delta
        (expired cache edges, over-capacity boxes) and repairs the small
        deficit against delta-only adjacency rows.  A repaired-to-perfect
        matching is maximum by construction; any other outcome falls back
        to the full kernel, so results are bit-compatible with the
        non-incremental path.  Requires ``warm_start``, the default
        Hopcroft–Karp solver, an unset ``augmentation_budget`` (budgeted
        rounds must charge the classic kernel so degradation fires
        identically) and an unsubclassed :class:`PossessionIndex`.
        """
        n = self._slots.size
        capacities = self._slots.copy()
        if busy_slots is not None:
            busy = np.asarray(busy_slots, dtype=np.int64)
            if busy.shape != capacities.shape:
                raise ValueError("busy_slots must have one entry per box")
            if np.any(busy < 0):
                raise ValueError("busy_slots must be non-negative")
            capacities = np.maximum(capacities - busy, 0)

        num_requests = len(requests)
        if not num_requests:
            if self._solver not in FLOW_SOLVERS:
                self._pair_expiry = _EMPTY_INT64
            return ConnectionMatching(
                feasible=True,
                assignment=np.empty(0, dtype=np.int64),
                matched=0,
                request_set=requests,
                obstruction_witness=None,
                box_load=np.zeros(n, dtype=np.int64),
                capacities=capacities,
            )

        degraded = False
        repair_fallback = False
        if self._solver in FLOW_SOLVERS:
            request_list = list(requests)
            edges: List[Tuple[int, int]] = []
            for idx, request in enumerate(request_list):
                for box in possession.servers_for(request, current_time):
                    if box == request.box_id:
                        # A box never serves its own request: it needs the data.
                        continue
                    edges.append((idx, int(box)))
            result: BMatchingResult = solve_b_matching(
                num_left=num_requests,
                num_right=n,
                edges=edges,
                right_capacities=capacities.tolist(),
                method=self._solver,
            )
            assignment = result.assignment
            feasible, matched = result.feasible, result.matched
            witness = result.unsatisfied_witness
        else:
            if warm_start is not None and len(warm_start) != num_requests:
                raise ValueError("warm_start must have one entry per request")
            # The incremental path needs the exact base-class edge
            # semantics (subclasses may override possession hooks) and a
            # budget-free round: when a budget is set, the classic kernel
            # must do the searching so AugmentationBudgetExceeded →
            # degraded fires exactly as without the incremental layer.
            incremental_ctx = (
                delta is not None
                and warm_start is not None
                and self._augmentation_budget is None
                and type(possession) is PossessionIndex
            )
            repaired: Optional[Tuple[np.ndarray, np.ndarray]] = None
            warm_seed = warm_start
            if incremental_ctx:
                try:
                    repaired = self._try_repair(
                        requests, possession, current_time, capacities,
                        warm_start, delta,
                    )
                except AugmentationBudgetExceeded:
                    repair_fallback = True
                if repaired is None and self._partial_repair is not None:
                    # The partially repaired assignment only holds valid
                    # pairs within capacity — a strictly better warm seed.
                    warm_seed = self._partial_repair
            else:
                self._pair_expiry = None
            if repaired is not None:
                assignment, pair_expiry = repaired
                feasible, matched, witness = True, num_requests, None
                self._pair_expiry = pair_expiry
                self._repair_rounds = getattr(self, "_repair_rounds", 0) + 1
            else:
                if incremental_ctx:
                    indptr, indices, edge_expiry = possession.adjacency_delta_for(
                        requests, current_time
                    )
                else:
                    indptr, indices = possession.adjacency_for(
                        requests, current_time
                    )
                    edge_expiry = None
                try:
                    hk = hopcroft_karp_matching(
                        num_left=num_requests,
                        num_right=n,
                        indptr=indptr,
                        indices=indices,
                        right_capacities=capacities,
                        initial_assignment=warm_seed,
                        augmentation_budget=self._augmentation_budget,
                    )
                    assignment = hk.assignment
                    feasible, matched = hk.feasible, hk.matched
                    witness = hk.unsatisfied_witness
                except AugmentationBudgetExceeded:
                    # Graceful degradation: re-solve the identical instance
                    # (same CSR adjacency, same capacities) with the Dinic
                    # max-flow kernel.  Maximum-matching cardinality is
                    # solver-independent, so feasibility and per-round metrics
                    # are unchanged; only the degraded flag records the event.
                    edges = [
                        (i, int(indices[e]))
                        for i in range(num_requests)
                        for e in range(int(indptr[i]), int(indptr[i + 1]))
                    ]
                    fallback: BMatchingResult = solve_b_matching(
                        num_left=num_requests,
                        num_right=n,
                        edges=edges,
                        right_capacities=capacities.tolist(),
                        method="dinic",
                    )
                    assignment = fallback.assignment
                    feasible, matched = fallback.feasible, fallback.matched
                    witness = fallback.unsatisfied_witness
                    degraded = True
                if edge_expiry is not None:
                    self._pair_expiry = self._pair_expiry_from_csr(
                        assignment, indptr, indices, edge_expiry
                    )

        served = assignment[assignment >= 0]
        box_load = np.bincount(served, minlength=n).astype(np.int64)
        return ConnectionMatching(
            feasible=feasible,
            assignment=assignment,
            matched=matched,
            request_set=requests,
            obstruction_witness=witness,
            box_load=box_load,
            capacities=capacities,
            degraded=degraded,
            repair_fallback=repair_fallback,
        )

    # ------------------------------------------------------------------ #
    # Incremental round path
    # ------------------------------------------------------------------ #
    def _pair_expiry_from_csr(
        self,
        assignment: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_expiry: np.ndarray,
    ) -> np.ndarray:
        """Per-request expiry of the matched pair, from a full expiry CSR.

        Duplicate ``(request, box)`` edges (static holder that also
        caches) take the *latest* expiry — exactly the round after which
        the classic validation would drop the pair.
        """
        num = assignment.size
        pair_expiry = np.full(num, -1, dtype=np.int64)
        if num and indices.size:
            rows_of = np.repeat(
                np.arange(num, dtype=np.int64), np.diff(indptr)
            )
            hit = indices == assignment[rows_of]
            if hit.any():
                np.maximum.at(pair_expiry, rows_of[hit], edge_expiry[hit])
        return pair_expiry

    def _try_repair(
        self,
        requests: RequestSet,
        possession: PossessionIndex,
        current_time: int,
        capacities: np.ndarray,
        warm_start: Sequence[int],
        delta: MatchDelta,
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Attempt the incremental repair of one round.

        Returns ``(assignment, pair_expiry)`` when the delta was repaired
        to a perfect — hence maximum — matching, ``None`` when the round
        must run the full kernel (no usable state, or some request has no
        augmenting path, i.e. the round is infeasible and needs the
        kernel's Hall witness).  Raises
        :class:`~repro.flow.hopcroft_karp.AugmentationBudgetExceeded`
        when the repair search budget runs out; the caller counts that as
        a *repair fallback* and re-solves with the full kernel.
        """
        self._partial_repair: Optional[np.ndarray] = None
        pair_expiry_prev = getattr(self, "_pair_expiry", None)
        if pair_expiry_prev is None:
            return None
        num_requests = len(requests)
        num_new = int(delta.num_new)
        num_survivors = num_requests - num_new
        if num_survivors < 0:
            return None
        keep = delta.keep_mask
        if keep is not None:
            if (
                keep.size != pair_expiry_prev.size
                or int(keep.sum()) != num_survivors
            ):
                return None
            pair_expiry_prev = pair_expiry_prev[keep]
        elif pair_expiry_prev.size != num_survivors:
            return None

        warm = np.asarray(warm_start, dtype=np.int64)
        n = capacities.size
        assignment = warm.copy()
        pair_expiry = np.empty(num_requests, dtype=np.int64)
        pair_expiry[:num_survivors] = pair_expiry_prev
        pair_expiry[num_survivors:] = -1

        # Retire pairs whose backing cache edge aged out of the window.
        active = assignment >= 0
        stale = active & (pair_expiry < current_time)
        if stale.any():
            assignment[stale] = -1
            active &= ~stale
        # Retire pairs on boxes whose capacity dropped below their load
        # (churn outages, fault brownouts/crashes, busy slots) — keeping,
        # per box, the first ``cap`` pairs in request order, mirroring the
        # classic warm validation.
        load = np.bincount(
            assignment[active], minlength=n
        ).astype(np.int64)
        over = load > capacities
        if over.any():
            # Mask lookup instead of np.isin: assignment == -1 reads the
            # last slot of ``over``, which the active filter discards.
            affected = np.flatnonzero(active & over[assignment])
            order = np.argsort(assignment[affected], kind="stable")
            aff_sorted = affected[order]
            ab = assignment[aff_sorted]
            new_group = np.empty(ab.size, dtype=bool)
            new_group[0] = True
            new_group[1:] = ab[1:] != ab[:-1]
            group_start = np.flatnonzero(new_group)
            group_id = np.cumsum(new_group) - 1
            rank = np.arange(ab.size, dtype=np.int64) - group_start[group_id]
            drop = aff_sorted[rank >= capacities[ab]]
            assignment[drop] = -1
            load = np.bincount(
                assignment[assignment >= 0], minlength=n
            ).astype(np.int64)

        deficit = np.flatnonzero(assignment < 0)
        if not deficit.size:
            return assignment, pair_expiry

        # Fresh adjacency for the delta rows only, then a vectorized
        # multi-pass greedy against the residual capacities.  The cache
        # blocks are clipped (greedy is a heuristic filler — leftovers go
        # to the exact search): popular-stripe rows would otherwise carry
        # thousands of cache edges and dominate the gather.
        indptr_d, indices_d, expiry_d = possession.adjacency_delta_for(
            requests, current_time, rows=deficit,
            max_cache_edges=_GREEDY_MAX_CACHE_EDGES,
        )
        residual = capacities - load
        ptr = indptr_d[:-1].copy()
        ends = indptr_d[1:]
        unresolved = np.arange(deficit.size, dtype=np.int64)
        leftovers: List[np.ndarray] = []
        while unresolved.size:
            has_edge = ptr[unresolved] < ends[unresolved]
            if not has_edge.all():
                leftovers.append(unresolved[~has_edge])
                unresolved = unresolved[has_edge]
                if not unresolved.size:
                    break
            cand = indices_d[ptr[unresolved]]
            order = np.argsort(cand.astype(np.int32), kind="stable")
            sc = cand[order]
            new_group = np.empty(sc.size, dtype=bool)
            new_group[0] = True
            new_group[1:] = sc[1:] != sc[:-1]
            group_start = np.flatnonzero(new_group)
            group_id = np.cumsum(new_group) - 1
            rank = np.arange(sc.size, dtype=np.int64) - group_start[group_id]
            ok = np.empty(sc.size, dtype=bool)
            ok[order] = rank < residual[sc]  # back to row order: stays sorted
            accepted = unresolved[ok]
            if accepted.size:
                acc_boxes = cand[ok]
                assignment[deficit[accepted]] = acc_boxes
                pair_expiry[deficit[accepted]] = expiry_d[ptr[accepted]]
                # Per-box acceptance counts straight from the group
                # structure: each group takes min(size, residual) rows —
                # an O(n)-boxes bincount per pass would dwarf the pass.
                group_sizes = np.empty(group_start.size, dtype=np.int64)
                group_sizes[:-1] = group_start[1:] - group_start[:-1]
                group_sizes[-1] = sc.size - group_start[-1]
                group_boxes = sc[group_start]
                residual[group_boxes] -= np.minimum(
                    group_sizes, residual[group_boxes]
                )
            rejected = unresolved[~ok]
            ptr[rejected] += 1
            # Fast-forward rejected rows past runs of saturated boxes:
            # residual never grows within a round, so such edges can
            # never be taken and an argsort pass each is wasted on them.
            check = rejected
            while check.size:
                check = check[ptr[check] < ends[check]]
                if not check.size:
                    break
                check = check[residual[indices_d[ptr[check]]] <= 0]
                ptr[check] += 1
            unresolved = rejected

        budget = getattr(self, "_repair_search_budget", None)
        if budget is None:
            budget = max(256, 2 * math.isqrt(num_requests), num_requests // 64)
        if leftovers:
            remaining = deficit[np.sort(np.concatenate(leftovers))]
        else:
            remaining = _EMPTY_INT64
        if not remaining.size:
            return assignment, pair_expiry
        if remaining.size > budget:
            self._partial_repair = assignment
            raise AugmentationBudgetExceeded(
                f"incremental repair budget of {budget} searches exhausted "
                f"with a deficit of {remaining.size}"
            )

        # Exhaustive augmentation for the stragglers, over lazily
        # materialized rows.  Each flipped pair records its edge expiry.
        if isinstance(requests, ArrayRequestSet):
            stripes = requests.stripe_id_array
            boxes = requests.box_id_array
            times = requests.request_time_array
        else:
            stripes = np.fromiter(
                (r.stripe_id for r in requests), dtype=np.int64, count=num_requests
            )
            boxes = np.fromiter(
                (r.box_id for r in requests), dtype=np.int64, count=num_requests
            )
            times = np.fromiter(
                (r.request_time for r in requests), dtype=np.int64,
                count=num_requests,
            )
        row_cache: Dict[int, Tuple[np.ndarray, List[int], List[int]]] = {}

        def get_row(i: int) -> Tuple[np.ndarray, List[int], List[int]]:
            row = row_cache.get(i)
            if row is None:
                arr, exp = possession.row_with_expiry(
                    int(stripes[i]), int(boxes[i]), int(times[i]), current_time
                )
                row = row_cache[i] = (arr, arr.tolist(), exp.tolist())
            return row

        load = capacities - residual
        complete = repair_matching(
            num_requests,
            n,
            get_row,
            capacities,
            assignment,
            load,
            pair_expiry,
            remaining.tolist(),
            search_budget=budget,
        )
        if not complete:
            # Some request has no augmenting path: the round is infeasible
            # and the full kernel must run for the Hall witness.  Not a
            # budget event — the partial matching still seeds the kernel.
            self._partial_repair = assignment
            return None
        return assignment, pair_expiry


def check_feasibility_hall(
    requests: RequestSet,
    possession: PossessionIndex,
    uploads: Sequence[float],
    num_stripes_per_video: int,
    current_time: int,
    max_subset_size: Optional[int] = None,
) -> Tuple[bool, Optional[Tuple[int, ...]]]:
    """Direct check of Lemma 1: ``∀ X ⊆ Y, U_{B(X)} ≥ |X|/c``.

    Exhaustive over subsets of the request set (exponential); only usable
    on small instances, where it serves as an oracle for the flow-based
    matcher.  Returns ``(feasible, witness)`` where ``witness`` is a
    violating subset of request indices (or ``None``).
    """
    uploads_arr = np.asarray(uploads, dtype=np.float64)
    request_list = list(requests)
    c = check_positive_integer(num_stripes_per_video, "num_stripes_per_video")
    neighbourhoods: List[Set[int]] = []
    for request in request_list:
        servers = possession.servers_for(request, current_time)
        servers.discard(request.box_id)
        neighbourhoods.append(servers)
    limit = len(request_list) if max_subset_size is None else min(
        max_subset_size, len(request_list)
    )
    for size in range(1, limit + 1):
        for subset in combinations(range(len(request_list)), size):
            neighbourhood: Set[int] = set()
            for idx in subset:
                neighbourhood |= neighbourhoods[idx]
            capacity = float(uploads_arr[list(neighbourhood)].sum()) if neighbourhood else 0.0
            if capacity + 1e-12 < size / c:
                return False, subset
    return True, None
